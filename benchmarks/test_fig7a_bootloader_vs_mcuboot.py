"""Fig. 7a: UpKit bootloader vs. mcuboot (Zephyr, tinycrypt, nRF52840).

Paper: UpKit's bootloader needs 1600 B less flash and 716 B less RAM
than mcuboot, with both configured for ECDSA/secp256r1 + SHA-256.
"""

from __future__ import annotations

from repro.baselines import mcuboot_build
from repro.crypto import TINYCRYPT
from repro.footprint import bootloader_build
from repro.platform import ZEPHYR


def test_fig7a_bootloader_vs_mcuboot(benchmark, report):
    def build_both():
        return bootloader_build(ZEPHYR, TINYCRYPT), mcuboot_build()

    upkit, mcuboot = benchmark(build_both)

    report(
        "fig7a", "Fig. 7a: bootloader footprint, UpKit vs. mcuboot "
        "(Zephyr + tinycrypt)",
        ("build", "flash", "ram"),
        [
            ("upkit-bootloader", upkit.flash, upkit.ram),
            ("mcuboot", mcuboot.flash, mcuboot.ram),
            ("delta (mcuboot - upkit)", mcuboot.flash - upkit.flash,
             mcuboot.ram - upkit.ram),
            ("paper delta", 1600, 716),
        ],
    )

    assert mcuboot.flash - upkit.flash == 1600
    assert mcuboot.ram - upkit.ram == 716
    # UpKit wins on both axes despite the extra double-signature check.
    assert upkit.flash < mcuboot.flash
    assert upkit.ram < mcuboot.ram
