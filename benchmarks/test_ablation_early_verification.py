"""Ablation: agent-side (early) verification — UpKit's headline claim.

The Fig. 1 baseline architecture (mcumgr + mcuboot) verifies only in
the bootloader, so an invalid update costs a full download, flash
writes, and a reboot before being rejected.  UpKit's agent-side checks
reject a tampered manifest after ~200 bytes, and a tampered payload
before any reboot.

This bench delivers the same tampered updates to both architectures
and compares wasted time, energy, bytes over the air, and reboots.
"""

from __future__ import annotations

from repro.baselines import McubootBootloader, McumgrAgent
from repro.net import ManifestTamperer, PayloadBitFlipper
from repro.sim import Testbed

IMAGE_SIZE = 64 * 1024


def make_bed(firmware_gen, baseline: bool):
    base = firmware_gen.firmware(IMAGE_SIZE, image_id=50)
    bed = Testbed.create(slot_configuration="b", slot_size=128 * 1024,
                         initial_firmware=base,
                         supports_differential=False)
    if baseline:
        device = bed.device
        device.agent = McumgrAgent(device.profile, device.layout)
        device.bootloader = McubootBootloader(
            device.profile, device.layout, bed.anchors, device.backend)
    bed.release(firmware_gen.firmware(IMAGE_SIZE, image_id=51), 2)
    return bed


def deliver_tampered(bed, interceptor):
    return bed.push_update(interceptor=interceptor)


def test_ablation_early_verification(benchmark, report, firmware_gen):
    def run_all():
        out = {}
        for arch in ("upkit", "baseline"):
            for attack_name, attack in (
                ("bad-manifest", ManifestTamperer()),
                ("bad-payload", PayloadBitFlipper(flips=64)),
            ):
                bed = make_bed(firmware_gen, baseline=arch == "baseline")
                out[(arch, attack_name)] = deliver_tampered(bed, attack)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (arch, attack), outcome in sorted(results.items()):
        rows.append((
            arch, attack,
            "%.1f" % outcome.total_seconds,
            "%.0f" % outcome.total_energy_mj,
            outcome.bytes_over_air,
            "yes" if outcome.rebooted else "no",
            outcome.booted_version,
        ))
    report(
        "ablation_early_verification",
        "Ablation: cost of delivering an invalid update "
        "(agent-side verification vs. bootloader-only)",
        ("architecture", "attack", "time(s)", "energy(mJ)",
         "bytes-over-air", "rebooted", "running-version"),
        rows,
    )

    # Neither architecture ever runs tampered firmware.
    for outcome in results.values():
        assert outcome.booted_version == 1

    # Tampered manifest: UpKit aborts after the envelope, the baseline
    # downloads everything and reboots.
    upkit_m = results[("upkit", "bad-manifest")]
    base_m = results[("baseline", "bad-manifest")]
    assert upkit_m.bytes_over_air < 300
    assert base_m.bytes_over_air > IMAGE_SIZE
    assert not upkit_m.rebooted and base_m.rebooted
    assert upkit_m.total_energy_mj < base_m.total_energy_mj / 5
    assert upkit_m.total_seconds < base_m.total_seconds / 10

    # Tampered payload: both download, but only the baseline reboots.
    upkit_p = results[("upkit", "bad-payload")]
    base_p = results[("baseline", "bad-payload")]
    assert not upkit_p.rebooted and base_p.rebooted
    assert upkit_p.total_seconds < base_p.total_seconds
