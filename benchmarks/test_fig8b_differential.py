"""Fig. 8b: impact of differential updates on total update time.

Paper (pull approach): compared with a full-image update, differential
updates cut the overall update time by up to 66% for an OS version
change (e.g. Zephyr v1.2 → v1.3) and up to 82% for an application
functionality change (~1000 bytes of difference).  The time is saved
exclusively in the propagation phase — verification and loading still
operate on the full reconstructed image.
"""

from __future__ import annotations

from repro.platform import NRF52840, ZEPHYR
from repro.sim import Testbed

IMAGE_SIZE = 100 * 1024
PAPER_REDUCTIONS = {"os-change": 0.66, "app-change": 0.82}


def run_case(firmware_gen, case: str):
    base = firmware_gen.firmware(IMAGE_SIZE, image_id=30)
    if case == "os-change":
        new = firmware_gen.os_version_change(base, revision=2)
    else:
        new = firmware_gen.app_functionality_change(base,
                                                    changed_bytes=1000,
                                                    revision=2)
    results = {}
    for mode, differential in (("full", False), ("delta", True)):
        bed = Testbed.create(
            board=NRF52840, os_profile=ZEPHYR,
            slot_configuration="a",        # A/B: loading phase constant
            slot_size=256 * 1024,
            initial_firmware=base,
            supports_differential=differential,
        )
        bed.release(new, 2)
        outcome = bed.pull_update()
        assert outcome.success and outcome.booted_version == 2
        results[mode] = outcome
    return results


def test_fig8b_differential_updates(benchmark, report, firmware_gen):
    def run_all():
        return {case: run_case(firmware_gen, case)
                for case in ("os-change", "app-change")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    reductions = {}
    for case, outcomes in results.items():
        full = outcomes["full"]
        delta = outcomes["delta"]
        reduction = 1 - delta.total_seconds / full.total_seconds
        reductions[case] = reduction
        rows.append((
            case,
            "%.1f" % full.total_seconds,
            "%.1f" % delta.total_seconds,
            "%.0f%%" % (100 * reduction),
            "%.0f%%" % (100 * PAPER_REDUCTIONS[case]),
            delta.bytes_over_air,
            full.bytes_over_air,
        ))
    report(
        "fig8b", "Fig. 8b: differential vs. full-image update time "
        "(pull, 100 kB image, A/B slots)",
        ("case", "full(s)", "delta(s)", "reduction", "paper",
         "delta-bytes", "full-bytes"),
        rows,
    )

    # -- shape assertions --------------------------------------------------
    for case, outcomes in results.items():
        full = outcomes["full"]
        delta = outcomes["delta"]
        # Differential always wins, and the saving is in propagation.
        assert delta.total_seconds < full.total_seconds
        assert (delta.phases["propagation"]
                < 0.5 * full.phases["propagation"])
        # Verification + loading are NOT reduced (full image is verified
        # and loaded either way).
        assert delta.phases["verification"] == \
            __import__("pytest").approx(full.phases["verification"],
                                        rel=0.2)
        assert delta.phases["loading"] == \
            __import__("pytest").approx(full.phases["loading"], rel=0.2)

    # The app change saves more than the OS change; both are large.
    assert reductions["app-change"] > reductions["os-change"]
    assert 0.50 < reductions["os-change"] < 0.85
    assert 0.75 < reductions["app-change"] < 0.97
