"""Table II: memory footprint of UpKit's update agent.

Paper: pull approach — Contiki smallest (64%/17% less flash and
73%/36% less RAM than Zephyr/RIOT); push (BLE) on Zephyr far smaller
than pull on Zephyr, because only the BLE stack is linked instead of
the full IPv6 + CoAP stack.  On average only 23.5% of the agent's code
is platform-specific.
"""

from __future__ import annotations

import pytest

from repro.footprint import PAPER_TABLE2, agent_build, table2_rows
from repro.platform import ZEPHYR


def test_table2_agent_footprint(benchmark, report):
    rows = benchmark(table2_rows)

    table = []
    for approach, os_name, flash, ram in rows:
        paper_flash, paper_ram = PAPER_TABLE2[(os_name, approach)]
        table.append((approach, os_name, paper_flash, flash,
                      paper_ram, ram))
    report(
        "table2", "Table II: UpKit update-agent footprint (bytes)",
        ("approach", "os", "flash(paper)", "flash(repro)", "ram(paper)",
         "ram(repro)"),
        table,
    )

    by_key = {(approach, os_name): (flash, ram)
              for approach, os_name, flash, ram in rows}
    for key, (flash, ram) in by_key.items():
        approach, os_name = key
        assert (flash, ram) == PAPER_TABLE2[(os_name, approach)]

    # Contiki smallest pull build, by the paper's stated margins.
    zephyr_f, zephyr_r = by_key[("pull", "zephyr")]
    riot_f, riot_r = by_key[("pull", "riot")]
    contiki_f, contiki_r = by_key[("pull", "contiki")]
    assert 1 - contiki_f / zephyr_f == pytest.approx(0.64, abs=0.02)
    assert 1 - contiki_f / riot_f == pytest.approx(0.17, abs=0.02)
    assert 1 - contiki_r / zephyr_r == pytest.approx(0.73, abs=0.02)
    assert 1 - contiki_r / riot_r == pytest.approx(0.36, abs=0.03)

    # Push ≪ pull on Zephyr (BLE stack only).
    push_f, push_r = by_key[("push", "zephyr")]
    assert push_f < zephyr_f / 2
    assert push_r < zephyr_r / 3

    # Pipeline/memory module costs the paper quotes (Sect. VI-A).
    build = agent_build(ZEPHYR, "pull")
    assert build.component("upkit-pipeline").flash == 1632
    assert build.component("upkit-pipeline").ram == 2137
    assert build.component("upkit-memory").flash == 2024
