"""Fig. 7b: UpKit pull agent vs. LwM2M (Zephyr, nRF52840).

Paper: UpKit needs 4.8 kB less flash and 2.4 kB less RAM than the
LwM2M client with all non-update services disabled.
"""

from __future__ import annotations

from repro.baselines import lwm2m_build
from repro.footprint import agent_build
from repro.platform import ZEPHYR


def test_fig7b_pull_vs_lwm2m(benchmark, report):
    def build_both():
        return agent_build(ZEPHYR, "pull"), lwm2m_build()

    upkit, lwm2m = benchmark(build_both)

    report(
        "fig7b", "Fig. 7b: pull-agent footprint, UpKit vs. LwM2M (Zephyr)",
        ("build", "flash", "ram"),
        [
            ("upkit-agent (pull)", upkit.flash, upkit.ram),
            ("lwm2m", lwm2m.flash, lwm2m.ram),
            ("delta (lwm2m - upkit)", lwm2m.flash - upkit.flash,
             lwm2m.ram - upkit.ram),
            ("paper delta", 4800, 2400),
        ],
    )

    assert lwm2m.flash - upkit.flash == 4800
    assert lwm2m.ram - upkit.ram == 2400
    assert upkit.flash < lwm2m.flash
    assert upkit.ram < lwm2m.ram
