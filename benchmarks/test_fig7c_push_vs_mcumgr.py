"""Fig. 7c: UpKit push agent vs. mcumgr (Zephyr, nRF52840).

Paper: UpKit needs 426 B *less* flash but 1200 B *more* RAM than
mcumgr (fs/log/OS-management features disabled) — despite adding
differential updates and full signature validation, which mcumgr
lacks entirely.
"""

from __future__ import annotations

from repro.baselines import mcumgr_build
from repro.footprint import agent_build
from repro.platform import ZEPHYR


def test_fig7c_push_vs_mcumgr(benchmark, report):
    def build_both():
        return agent_build(ZEPHYR, "push"), mcumgr_build()

    upkit, mcumgr = benchmark(build_both)

    report(
        "fig7c", "Fig. 7c: push-agent footprint, UpKit vs. mcumgr (Zephyr)",
        ("build", "flash", "ram"),
        [
            ("upkit-agent (push)", upkit.flash, upkit.ram),
            ("mcumgr", mcumgr.flash, mcumgr.ram),
            ("delta (mcumgr - upkit)", mcumgr.flash - upkit.flash,
             mcumgr.ram - upkit.ram),
            ("paper delta", 426, -1200),
        ],
    )

    assert mcumgr.flash - upkit.flash == 426   # UpKit smaller in flash
    assert upkit.ram - mcumgr.ram == 1200      # but pays RAM (lzss buffer)


def test_fig7c_ram_cost_is_the_pipeline(benchmark, report):
    """The RAM UpKit pays over mcumgr is less than the pipeline's own
    RAM (the lzss window) — i.e. the verification machinery itself is
    RAM-neutral; differential-update support is what costs memory."""
    upkit = benchmark(agent_build, ZEPHYR, "push")
    upkit_no_diff = agent_build(ZEPHYR, "push", differential=False)
    mcumgr = mcumgr_build()
    report(
        "fig7c_ablation",
        "Fig. 7c ablation: where UpKit's extra RAM goes",
        ("build", "flash", "ram"),
        [
            ("upkit (full)", upkit.flash, upkit.ram),
            ("upkit (no differential)", upkit_no_diff.flash,
             upkit_no_diff.ram),
            ("mcumgr", mcumgr.flash, mcumgr.ram),
        ],
    )
    assert upkit.ram - mcumgr.ram <= upkit.component("upkit-pipeline").ram
    assert upkit_no_diff.ram < mcumgr.ram
