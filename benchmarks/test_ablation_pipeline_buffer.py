"""Ablation: pipeline buffer size vs. flash-write cost.

The paper (Sect. IV-C): "Matching the buffer size with the flash
sector size results in faster writes and fewer flash erasures."  The
buffer stage batches pipeline output, amortising the per-program-
operation overhead of the flash controller.  This bench installs the
same 64 kB image with buffer sizes from 32 B to the 4 KiB sector size
and reports program-operation counts and flash busy time.
"""

from __future__ import annotations

from repro.platform import NRF52840, ZEPHYR
from repro.sim import Testbed

IMAGE_SIZE = 64 * 1024
BUFFER_SIZES = (32, 256, 1024, 4096)


def run_with_buffer(firmware_gen, buffer_size: int):
    base = firmware_gen.firmware(IMAGE_SIZE, image_id=70)
    bed = Testbed.create(
        board=NRF52840, os_profile=ZEPHYR,
        slot_configuration="a", slot_size=128 * 1024,
        initial_firmware=base, supports_differential=False,
    )
    bed.device.agent.pipeline_buffer_size = buffer_size
    # Flash time must be visible for this ablation, not hidden behind
    # the radio.
    bed.device.flash_overlaps_radio = False
    bed.release(firmware_gen.firmware(IMAGE_SIZE, image_id=71), 2)
    internal = bed.device.layout.get("a").flash
    before_writes = internal.stats.write_calls
    outcome = bed.push_update()
    assert outcome.success
    flash_ma = bed.device.board.flash_write_ma
    flash_seconds = bed.device.meter.charge_mc("flash") / flash_ma
    return {
        "write_calls": internal.stats.write_calls - before_writes,
        "pages_erased": internal.stats.pages_erased,
        "propagation": outcome.phases["propagation"],
        "flash_seconds": flash_seconds,
    }


def test_ablation_pipeline_buffer(benchmark, report, firmware_gen):
    def run_all():
        return {size: run_with_buffer(firmware_gen, size)
                for size in BUFFER_SIZES}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [(size,
             results[size]["write_calls"],
             results[size]["pages_erased"],
             "%.2f" % results[size]["flash_seconds"],
             "%.2f" % results[size]["propagation"])
            for size in BUFFER_SIZES]
    report(
        "ablation_pipeline_buffer",
        "Ablation: pipeline buffer size vs. flash cost (64 kB image, "
        "4 KiB sectors)",
        ("buffer(B)", "program-ops", "pages-erased", "flash-time(s)",
         "propagation(s)"),
        rows,
    )

    # Program-operation count drops monotonically with buffer size...
    ops = [results[size]["write_calls"] for size in BUFFER_SIZES]
    assert ops == sorted(ops, reverse=True)
    # ...by roughly the buffer-size ratio.
    assert ops[0] > ops[-1] * 32
    # Flash busy time drops substantially with the sector-sized buffer.
    flash_times = [results[size]["flash_seconds"] for size in BUFFER_SIZES]
    assert flash_times[0] > flash_times[-1] * 1.10
    # Total propagation time is fastest with the sector-sized buffer
    # (the radio dominates, so the edge is small but consistent).
    times = [results[size]["propagation"] for size in BUFFER_SIZES]
    assert times[-1] == min(times)
