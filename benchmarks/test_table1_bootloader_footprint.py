"""Table I: memory footprint of UpKit's bootloader.

Paper: flash is comparable across OSes for a given crypto library;
Zephyr needs ~15% less flash but ~20% more RAM (run-time stack);
TinyDTLS builds are ~1.1 kB smaller than tinycrypt builds; the
CryptoAuthLib+ATECC508 build is ~10% smaller than Contiki+TinyDTLS;
~91% of the bootloader code is platform-independent.
"""

from __future__ import annotations

from repro.footprint import PAPER_TABLE1, bootloader_build, table1_rows
from repro.crypto import TINYDTLS
from repro.platform import CONTIKI, RIOT, ZEPHYR


def test_table1_bootloader_footprint(benchmark, report):
    rows = benchmark(table1_rows)

    table = []
    for os_name, crypto, flash, ram in rows:
        paper_flash, paper_ram = PAPER_TABLE1[(os_name, crypto)]
        table.append((
            os_name, crypto,
            paper_flash, flash, "%+.2f%%" % (100 * (flash - paper_flash)
                                             / paper_flash),
            paper_ram, ram,
        ))
    report(
        "table1", "Table I: UpKit bootloader footprint (bytes)",
        ("os", "crypto-lib", "flash(paper)", "flash(repro)", "dev",
         "ram(paper)", "ram(repro)"),
        table,
    )

    # Shape assertions.
    by_key = {(os_name, crypto): (flash, ram)
              for os_name, crypto, flash, ram in rows}
    for (os_name, crypto), (flash, ram) in by_key.items():
        paper_flash, paper_ram = PAPER_TABLE1[(os_name, crypto)]
        assert abs(flash - paper_flash) / paper_flash < 0.005
        assert ram == paper_ram

    # Zephyr: least flash, most RAM.
    assert by_key[("zephyr", "tinydtls")][0] < by_key[("riot",
                                                       "tinydtls")][0]
    assert by_key[("zephyr", "tinydtls")][1] > by_key[("contiki",
                                                       "tinydtls")][1]
    # TinyDTLS < tinycrypt by ~1.1 kB.
    delta = (by_key[("contiki", "tinycrypt")][0]
             - by_key[("contiki", "tinydtls")][0])
    assert 1000 < delta < 1200
    # CryptoAuthLib saves ~10% vs Contiki+TinyDTLS.
    saving = 1 - (by_key[("contiki", "cryptoauthlib")][0]
                  / by_key[("contiki", "tinydtls")][0])
    assert 0.07 < saving < 0.12

    # Portability: the bulk of every bootloader build is OS-independent.
    for os_profile in (ZEPHYR, RIOT, CONTIKI):
        build = bootloader_build(os_profile, TINYDTLS)
        assert build.platform_independent_fraction > 0.80
