"""Fleet-scale fast-path benchmark (``perf`` marker; not tier-1).

Runs the :mod:`repro.tools.bench` harness at the acceptance scale —
a 50-device campaign — and writes ``BENCH_fleet.json`` at the repo
root so subsequent PRs can track the performance trajectory.  The
headline claim: the fast crypto engine plus the parallel wave executor
deliver at least a 5x end-to-end campaign speedup over the seed path
(reference engine, serial executor) while producing the identical
:class:`~repro.fleet.campaign.CampaignReport`.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_fleet.py -m perf

or via the CLI (same harness, no pytest)::

    PYTHONPATH=src python -m repro.tools.cli bench
"""

from __future__ import annotations

import os

import pytest

from repro.tools import bench

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_fleet.json")

DEVICES = 50
MIN_CAMPAIGN_SPEEDUP = 5.0
MIN_PROCESS_IO_SPEEDUP = 2.0


def test_fleet_fast_path_speedup():
    results = bench.run_all(device_count=DEVICES)
    bench.write_results(results, BENCH_PATH)
    print("\n" + bench.format_summary(results))
    print("wrote %s" % BENCH_PATH)

    campaign = results["campaign"]
    # Identical outcomes are a precondition for the speedup to count.
    assert campaign["reports_identical"] is True
    assert campaign["devices"] == DEVICES
    assert campaign["speedup"] >= MIN_CAMPAIGN_SPEEDUP

    # The I/O profile: pooled executors must overlap host RTTs.  The
    # process pool is the acceptance headline — at least 2x over serial
    # with byte-identical reports.
    campaign_io = results["campaign_io"]
    assert campaign_io["reports_identical"] is True
    assert campaign_io["process_speedup"] >= MIN_PROCESS_IO_SPEEDUP
    assert campaign_io["thread_speedup"] >= MIN_PROCESS_IO_SPEEDUP

    # The primitives behind the end-to-end number.
    assert results["sha256"]["speedup"] > 10
    assert results["ecdsa_verify"]["speedup"] > 1.5
