"""Fig. 8c: A/B updates vs. static boot — loading-phase time.

Paper: A/B updates cut the loading phase by 92% compared to a static
boot, because the bootloader jumps to the newest valid slot instead of
copying/swapping the image into the single bootable slot.  The saving
is independent of the transport (push or pull).
"""

from __future__ import annotations

from repro.platform import NRF52840, ZEPHYR
from repro.sim import Testbed

IMAGE_SIZE = 100 * 1024
PAPER_REDUCTION = 0.92


def run_case(firmware_gen, slot_configuration: str, approach: str):
    base = firmware_gen.firmware(IMAGE_SIZE, image_id=40)
    new = firmware_gen.firmware(IMAGE_SIZE, image_id=41)
    bed = Testbed.create(
        board=NRF52840, os_profile=ZEPHYR,
        slot_configuration=slot_configuration,
        slot_size=256 * 1024,
        initial_firmware=base,
        supports_differential=False,
    )
    bed.release(new, 2)
    outcome = (bed.push_update() if approach == "push"
               else bed.pull_update())
    assert outcome.success and outcome.booted_version == 2
    return outcome


def test_fig8c_ab_vs_static_loading(benchmark, report, firmware_gen):
    def run_all():
        return {
            (approach, config): run_case(firmware_gen, config, approach)
            for approach in ("push", "pull")
            for config in ("a", "b")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    reductions = {}
    for approach in ("push", "pull"):
        static = results[(approach, "b")]
        ab = results[(approach, "a")]
        reduction = 1 - ab.phases["loading"] / static.phases["loading"]
        reductions[approach] = reduction
        rows.append((
            approach,
            "%.2f" % static.phases["loading"],
            "%.2f" % ab.phases["loading"],
            "%.0f%%" % (100 * reduction),
            "%.0f%%" % (100 * PAPER_REDUCTION),
        ))
    report(
        "fig8c", "Fig. 8c: loading-phase time, static vs. A/B "
        "(100 kB image)",
        ("approach", "static(s)", "A/B(s)", "reduction", "paper"),
        rows,
    )

    for approach in ("push", "pull"):
        static = results[(approach, "b")]
        ab = results[(approach, "a")]
        # A/B slashes loading time by a large factor.
        assert 0.70 < reductions[approach] <= 0.97
        # The A/B result never swapped; the static one did.
        boot_ab = ab.phases["loading"]
        assert boot_ab < 2.5  # reboot + one verification, no copy

    # The reduction is transport-independent (same loading both ways).
    assert abs(reductions["push"] - reductions["pull"]) < 0.05

    # Propagation is unaffected by the slot mode.
    import pytest
    assert results[("push", "a")].phases["propagation"] == pytest.approx(
        results[("push", "b")].phases["propagation"], rel=0.02)
