"""Fig. 8a: time to complete a 100 kB full-image update, push vs. pull.

Paper (nRF52840 + Zephyr, static slots): push 61.5 s total, pull
69.1 s; propagation dominates (47.7 s / 41.7 s); verification is
1.78% / 1.72% of the total; loading is 20.6% / 37.9% — larger for
pull because the installed pull build is far bigger (Table II), so
the bootloader swaps more sectors.

Reproduction setup: the device initially runs an image of the Table II
build size for its approach (81 918 B push / 218 472 B pull) and
receives a 100 kB full image.  The bootloader swaps
``max(old, new)`` extents, reproducing the loading asymmetry.
"""

from __future__ import annotations

from repro.platform import NRF52840, ZEPHYR
from repro.sim import Testbed

NEW_IMAGE = 100 * 1024
PUSH_BUILD = 81918    # Table II: Zephyr push build
PULL_BUILD = 218472   # Table II: Zephyr pull build

PAPER = {
    "push": {"total": 61.5, "propagation": 47.7, "verification": 0.0178,
             "loading": 0.206},
    "pull": {"total": 69.1, "propagation": 41.7, "verification": 0.0172,
             "loading": 0.379},
}


def run_one(firmware_gen, approach: str):
    initial_size = PUSH_BUILD if approach == "push" else PULL_BUILD
    initial = firmware_gen.firmware(initial_size, image_id=10)
    bed = Testbed.create(
        board=NRF52840, os_profile=ZEPHYR,
        slot_configuration="b",            # static slots: swap on install
        slot_size=256 * 1024,
        initial_firmware=initial,
        supports_differential=False,       # full-image update, as in Fig. 8a
    )
    bed.release(firmware_gen.firmware(NEW_IMAGE, image_id=20), 2)
    outcome = (bed.push_update() if approach == "push"
               else bed.pull_update())
    assert outcome.success and outcome.booted_version == 2
    return outcome


def test_fig8a_push_vs_pull(benchmark, report, firmware_gen):
    def run_both():
        return run_one(firmware_gen, "push"), run_one(firmware_gen, "pull")

    push, pull = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for name, outcome in (("push", push), ("pull", pull)):
        paper = PAPER[name]
        phases = outcome.phases
        total = outcome.total_seconds
        rows.append((
            name,
            "%.1f" % paper["total"], "%.1f" % total,
            "%.1f" % paper["propagation"],
            "%.1f" % phases.get("propagation", 0.0),
            "%.2f%%" % (100 * paper["verification"]),
            "%.2f%%" % (100 * phases.get("verification", 0.0) / total),
            "%.1f%%" % (100 * paper["loading"]),
            "%.1f%%" % (100 * phases.get("loading", 0.0) / total),
        ))
    report(
        "fig8a", "Fig. 8a: 100 kB full-image update, push vs. pull "
        "(nRF52840 + Zephyr, static slots)",
        ("approach", "total(p)", "total(r)", "prop(p)", "prop(r)",
         "verif(p)", "verif(r)", "load(p)", "load(r)"),
        rows,
    )

    # -- shape assertions -------------------------------------------------
    # Push completes faster overall.
    assert push.total_seconds < pull.total_seconds
    # Absolute totals land within 25% of the paper's.
    assert abs(push.total_seconds - 61.5) / 61.5 < 0.25
    assert abs(pull.total_seconds - 69.1) / 69.1 < 0.25

    for name, outcome in (("push", push), ("pull", pull)):
        phases = outcome.phases
        total = outcome.total_seconds
        # Propagation dominates.
        assert phases["propagation"] / total > 0.6
        # Propagation times match the paper closely (link calibration).
        assert abs(phases["propagation"] - PAPER[name]["propagation"]) \
            / PAPER[name]["propagation"] < 0.05
        # Verification is a tiny, ~2% slice.
        assert 0.005 < phases["verification"] / total < 0.04

    # Pull's loading phase is the heavier one (bigger image to swap),
    # both absolutely and as a fraction.
    assert pull.phases["loading"] > 1.5 * push.phases["loading"]
    assert (pull.phases["loading"] / pull.total_seconds
            > push.phases["loading"] / push.total_seconds)
