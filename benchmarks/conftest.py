"""Shared helpers for the evaluation benchmarks.

Every file here regenerates one table or figure of the UpKit paper
(or an ablation DESIGN.md calls out).  Each benchmark prints the
paper-style rows (paper value vs. this reproduction) and asserts the
*shape* claims — who wins, by roughly what factor — per the
reproduction rubric.  Results are also written to
``benchmarks/results/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import os
from typing import Iterable

import pytest

from repro.footprint import format_table
from repro.workload import FirmwareGenerator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def firmware_gen() -> FirmwareGenerator:
    return FirmwareGenerator(seed=b"upkit-benchmarks")


@pytest.fixture()
def report(results_dir):
    """Print a result table and persist it under benchmarks/results/."""

    def _report(name: str, title: str, header: Iterable[str],
                rows: Iterable[Iterable[object]]) -> str:
        text = "%s\n%s\n" % (title, format_table(header, rows))
        print("\n" + text)
        path = os.path.join(results_dir, "%s.txt" % name)
        with open(path, "w") as fh:
            fh.write(text)
        return text

    return _report


def pct(value: float) -> str:
    return "%.1f%%" % (100.0 * value)
