"""Ablation: cryptographic backends (TinyDTLS / tinycrypt / ATECC508).

Sect. V/VI: the crypto library is swappable behind the security
interface.  TinyDTLS gives the smallest flash among the software
implementations; tinycrypt verifies slightly faster; CryptoAuthLib
offloads ECDSA verification to the ATECC508 HSM — less flash, less
verification time, and keys that a compromised firmware cannot
replace.
"""

from __future__ import annotations

from repro.crypto import CRYPTOAUTHLIB, TINYCRYPT, TINYDTLS
from repro.footprint import bootloader_build
from repro.platform import CC2650, CONTIKI
from repro.sim import Testbed

IMAGE_SIZE = 32 * 1024
BACKENDS = ("tinydtls", "tinycrypt", "cryptoauthlib")
PROFILES = {"tinydtls": TINYDTLS, "tinycrypt": TINYCRYPT,
            "cryptoauthlib": CRYPTOAUTHLIB}


def run_with_backend(firmware_gen, name: str):
    base = firmware_gen.firmware(IMAGE_SIZE, image_id=80)
    bed = Testbed.create(
        board=CC2650, os_profile=CONTIKI, crypto_library=name,
        slot_configuration="b", slot_size=64 * 1024,
        initial_firmware=base, supports_differential=False,
    )
    bed.release(firmware_gen.firmware(IMAGE_SIZE, image_id=81), 2)
    outcome = bed.pull_update()
    assert outcome.success
    return outcome


def test_ablation_crypto_backends(benchmark, report, firmware_gen):
    def run_all():
        return {name: run_with_backend(firmware_gen, name)
                for name in BACKENDS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in BACKENDS:
        outcome = results[name]
        build = bootloader_build(CONTIKI, PROFILES[name])
        rows.append((
            name,
            "%.2f" % outcome.phases["verification"],
            "%.1f" % outcome.energy_mj.get("crypto", 0.0),
            build.flash,
            build.ram,
        ))
    report(
        "ablation_crypto_backends",
        "Ablation: crypto backends on CC2650 + Contiki (32 kB update)",
        ("backend", "agent-verify(s)", "crypto-energy(mJ)",
         "boot-flash(B)", "boot-ram(B)"),
        rows,
    )

    # HSM verification is by far the fastest and the smallest build.
    hsm = results["cryptoauthlib"]
    for software in ("tinydtls", "tinycrypt"):
        assert (hsm.phases["verification"]
                < results[software].phases["verification"])
    assert (bootloader_build(CONTIKI, CRYPTOAUTHLIB).flash
            < bootloader_build(CONTIKI, TINYDTLS).flash
            < bootloader_build(CONTIKI, TINYCRYPT).flash)

    # All three backends install the identical firmware.
    versions = {results[name].booted_version for name in BACKENDS}
    assert versions == {2}
