"""Supplementary: per-component energy and battery impact.

Not a numbered figure, but the paper's through-line — "maximizing the
energy-efficiency of the solution" — quantified: where each update
strategy spends its millijoules, and what a yearly cadence costs in
battery life.  Regression-guards the energy orderings every other
result relies on (delta < full, early rejection ≪ full failure,
A/B loading < static loading).
"""

from __future__ import annotations

from repro.analysis import BatteryModel, UpdatePlan, compare_plans
from repro.net import ManifestTamperer
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 100 * 1024


def run_strategy(gen, *, differential: bool, slots: str,
                 transport: str, interceptor=None):
    base = gen.firmware(IMAGE_SIZE, image_id=90)
    bed = Testbed.create(initial_firmware=base, slot_size=256 * 1024,
                         slot_configuration=slots,
                         supports_differential=differential)
    bed.release(gen.os_version_change(base, revision=2), 2)
    outcome = (bed.push_update(interceptor=interceptor)
               if transport == "push"
               else bed.pull_update(interceptor=interceptor))
    return outcome


def test_energy_breakdown(benchmark, report, firmware_gen):
    def run_all():
        return {
            "delta/ab/push": run_strategy(
                firmware_gen, differential=True, slots="a",
                transport="push"),
            "delta/ab/pull": run_strategy(
                firmware_gen, differential=True, slots="a",
                transport="pull"),
            "full/ab/push": run_strategy(
                firmware_gen, differential=False, slots="a",
                transport="push"),
            "full/static/push": run_strategy(
                firmware_gen, differential=False, slots="b",
                transport="push"),
            "rejected-manifest": run_strategy(
                firmware_gen, differential=False, slots="a",
                transport="push", interceptor=ManifestTamperer()),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, outcome in results.items():
        rows.append((
            name,
            "ok" if outcome.success else "rejected",
            "%.0f" % outcome.total_energy_mj,
            "%.0f" % outcome.energy_mj.get("radio_rx", 0),
            "%.0f" % outcome.energy_mj.get("flash", 0),
            "%.0f" % outcome.energy_mj.get("crypto", 0),
            "%.0f" % outcome.energy_mj.get("cpu", 0),
        ))
    report(
        "energy_breakdown",
        "Supplementary: per-component energy of one 100 kB update (mJ)",
        ("strategy", "result", "total", "radio-rx", "flash", "crypto",
         "cpu"),
        rows,
    )

    # Orderings the paper's efficiency story implies.
    assert (results["delta/ab/push"].total_energy_mj
            < results["full/ab/push"].total_energy_mj / 2)
    assert (results["full/ab/push"].total_energy_mj
            < results["full/static/push"].total_energy_mj)
    assert (results["rejected-manifest"].total_energy_mj
            < results["full/ab/push"].total_energy_mj / 5)
    # Radio dominates every successful full update.
    full = results["full/ab/push"]
    assert full.energy_mj["radio_rx"] > full.total_energy_mj * 0.5

    # Battery framing: a monthly cadence of each strategy.
    battery = BatteryModel()
    plans = [UpdatePlan.from_outcome(name, outcome, 12)
             for name, outcome in results.items() if outcome.success]
    comparison = compare_plans(battery, sleep_ua=10.0, plans=plans)
    assert comparison[0]["name"].startswith("delta")
    report(
        "energy_battery",
        "Supplementary: battery lifetime at 12 updates/year "
        "(1500 mAh @ 3 V, 10 uA sleep)",
        ("strategy", "mJ/update", "lifetime (years)"),
        [(row["name"], "%.0f" % row["energy_per_update_mj"],
          "%.2f" % row["lifetime_years"]) for row in comparison],
    )
