"""Ablation: the double signature / device token (freshness).

The attack of Sect. II: an adversary holds a *validly signed but
outdated* image (captured earlier, or published with a known
vulnerability) and replays it.  A single-signature chain (mcumgr +
mcuboot, no downgrade prevention) installs the downgrade; UpKit's
update-server signature over the device token makes every image
single-use, so the replay dies at VERIFY_MANIFEST.
"""

from __future__ import annotations

from repro.baselines import McubootBootloader, McumgrAgent
from repro.core import DeviceToken, FeedStatus, UpdateError
from repro.sim import Testbed

IMAGE_SIZE = 48 * 1024
DEVICE_ID = 0x11223344


def run_replay(firmware_gen, baseline: bool):
    base = firmware_gen.firmware(IMAGE_SIZE, image_id=60)
    bed = Testbed.create(slot_configuration="b", slot_size=96 * 1024,
                         initial_firmware=base,
                         supports_differential=False)
    if baseline:
        device = bed.device
        device.agent = McumgrAgent(device.profile, device.layout)
        device.bootloader = McubootBootloader(
            device.profile, device.layout, bed.anchors, device.backend)

    # The attacker captures a legitimately signed v1 image.
    captured = bed.server.prepare_update(
        DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0))

    # The device is meanwhile updated to v2 (the fixed firmware).
    bed.release(firmware_gen.firmware(IMAGE_SIZE, image_id=61), 2)
    assert bed.push_update().booted_version == 2

    # Replay the captured old image.
    agent = bed.device.agent
    agent.request_token()
    rejected_at_agent = False
    try:
        status = agent.feed(captured.pack())
    except UpdateError:
        rejected_at_agent = True
        status = None
    if status is FeedStatus.FIRMWARE_COMPLETE:
        result = bed.device.reboot()
        final_version = result.version
    else:
        agent.cancel()
        final_version = bed.device.bootloader.boot().version
    return {
        "rejected_at_agent": rejected_at_agent,
        "final_version": final_version,
    }


def test_ablation_double_signature(benchmark, report, firmware_gen):
    def run_both():
        return (run_replay(firmware_gen, baseline=False),
                run_replay(firmware_gen, baseline=True))

    upkit, baseline = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report(
        "ablation_double_signature",
        "Ablation: replay of a validly-signed OLD image "
        "(freshness / downgrade protection)",
        ("architecture", "rejected at agent", "version after attack"),
        [
            ("upkit (double signature)",
             "yes" if upkit["rejected_at_agent"] else "no",
             upkit["final_version"]),
            ("mcumgr+mcuboot (single signature)",
             "yes" if baseline["rejected_at_agent"] else "no",
             baseline["final_version"]),
        ],
    )

    # UpKit refuses the replay immediately and stays on v2.
    assert upkit["rejected_at_agent"]
    assert upkit["final_version"] == 2
    # The single-signature chain installs the downgrade to v1.
    assert not baseline["rejected_at_agent"]
    assert baseline["final_version"] == 1
