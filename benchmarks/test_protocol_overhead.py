"""Supplementary: wire overhead of each transport protocol.

The paper's propagation times subsume protocol overhead; this bench
makes it visible.  One identical ~8 kB delta update is delivered
through each protocol stack the repository implements — ATT/GATT
(push), CoAP blockwise (pull), and SMP-over-SLIP serial (the mcumgr
baseline's native stack) — and the bytes-on-wire vs. image-bytes ratio
is reported.
"""

from __future__ import annotations

from repro.baselines import McubootBootloader, McumgrAgent, \
    SmpImageServer, smp_upload
from repro.core import DeviceToken
from repro.net import BleGattPushSession, CoapPullSession
from repro.net.serial import slip_encode
from repro.baselines.smp import (
    CMD_UPLOAD,
    GROUP_IMAGE,
    OP_WRITE,
    SmpHeader,
    encode_frame,
)
from repro.sim import Testbed
from repro.workload import FirmwareGenerator

IMAGE_SIZE = 16 * 1024
DEVICE_ID = 0x11223344


def make_bed(firmware_gen, baseline=False):
    base = firmware_gen.firmware(IMAGE_SIZE, image_id=60)
    bed = Testbed.create(initial_firmware=base,
                         slot_configuration="b" if baseline else "a",
                         slot_size=64 * 1024)
    if baseline:
        device = bed.device
        device.agent = McumgrAgent(device.profile, device.layout)
        device.bootloader = McubootBootloader(
            device.profile, device.layout, bed.anchors, device.backend)
    bed.release(firmware_gen.os_version_change(base, revision=2), 2)
    return bed


def run_ble(firmware_gen):
    bed = make_bed(firmware_gen)
    outcome = BleGattPushSession(bed.device, bed.server).run()
    assert outcome.success
    return outcome.messages, outcome.bytes_on_wire, bed


def run_coap(firmware_gen):
    bed = make_bed(firmware_gen)
    outcome = CoapPullSession(bed.device, bed.server).run()
    assert outcome.success
    return outcome.messages, outcome.bytes_on_wire, bed


def run_smp_slip(firmware_gen):
    bed = make_bed(firmware_gen, baseline=True)
    image = bed.server.prepare_update(
        DeviceToken(device_id=DEVICE_ID, nonce=0, current_version=0))
    server = SmpImageServer(bed.device.agent)
    stats = {"messages": 0, "bytes": 0}

    def meter(request, response):
        stats["messages"] += 2
        stats["bytes"] += len(slip_encode(request)) + len(response)

    ok = smp_upload(server, image.pack(), chunk_size=128,
                    on_exchange=meter)
    assert ok
    assert bed.device.reboot().version == 2
    return stats["messages"], stats["bytes"], bed


def payload_bytes(bed) -> int:
    """Image bytes the device's agent actually consumed this update."""
    stats = bed.device.agent.stats
    return stats.manifest_bytes + stats.payload_bytes


def test_protocol_overhead(benchmark, report, firmware_gen):
    def run_all():
        return {
            "ble-gatt (push)": run_ble(firmware_gen),
            "coap-blockwise (pull)": run_coap(firmware_gen),
            "smp-over-slip (serial)": run_smp_slip(firmware_gen),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    overheads = {}
    for name, (messages, bytes_on_wire, bed) in results.items():
        delivered = payload_bytes(bed)
        overhead = bytes_on_wire / delivered - 1
        overheads[name] = overhead
        rows.append((name, messages, bytes_on_wire, delivered,
                     "%.0f%%" % (100 * overhead)))
    report(
        "protocol_overhead",
        "Supplementary: wire overhead per protocol stack "
        "(~8 kB delta / 16 kB image)",
        ("stack", "messages", "bytes-on-wire", "image-bytes",
         "overhead"),
        rows,
    )

    # Every stack delivers; overhead is non-negative and bounded.
    for name, overhead in overheads.items():
        assert 0.0 <= overhead < 3.0, name
    # CoAP's per-block option/header cost exceeds ATT's 3-byte header
    # at these block sizes.
    assert overheads["ble-gatt (push)"] < overheads["coap-blockwise (pull)"]
