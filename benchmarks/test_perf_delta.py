"""Delta-generation fast-path benchmark (``perf`` marker; not tier-1).

Times the vectorised bsdiff + LZSS pipeline against the preserved
pure-Python reference path on the acceptance-scale firmware pair and
writes ``BENCH_delta.json`` at the repo root.  The headline claim: at
least a 3x generation speedup with byte-identical patch and delta
output (the harness itself raises if the outputs diverge or fail to
round-trip).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_delta.py -m perf

or via the CLI (same harness, no pytest)::

    PYTHONPATH=src python -m repro.tools.cli bench --delta-out BENCH_delta.json
"""

from __future__ import annotations

import os

import pytest

from repro.tools import bench
from repro.tools.report import validate_file

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_delta.json")

IMAGE_SIZE = 96 * 1024
MIN_DELTA_SPEEDUP = 3.0


def test_delta_fast_path_speedup():
    results = bench.run_delta(image_size=IMAGE_SIZE)
    bench.write_delta_results(results, BENCH_PATH)
    print("\n" + bench.format_delta_summary(results))
    print("wrote %s" % BENCH_PATH)
    assert validate_file(BENCH_PATH) == []

    fastpath = results["delta_fastpath"]
    assert fastpath["byte_identical"] is True
    assert fastpath["firmware_bytes"] == IMAGE_SIZE
    assert fastpath["speedup"] >= MIN_DELTA_SPEEDUP
