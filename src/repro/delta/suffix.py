"""Suffix-array construction for bsdiff.

bsdiff's match search needs a suffix array over the *old* firmware.
The construction runs on the update server (not the constrained
device), so asymptotics matter more than RAM: we use prefix doubling —
O(n log^2 n) comparisons — vectorised with numpy when available, with a
pure-Python fallback so the library works without it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence

try:  # numpy is optional; the fallback is exercised in tests
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

__all__ = [
    "build_suffix_array",
    "longest_match",
    "longest_match_at",
    "SuffixIndex",
]


def build_suffix_array(data: bytes) -> List[int]:
    """Return the suffix array of ``data`` (indices of sorted suffixes)."""
    if not data:
        return []
    if _np is not None and len(data) > 64:
        return _build_numpy(data)
    return _build_python(data)


def _build_numpy(data: bytes) -> List[int]:
    n = len(data)
    # Seed the doubling loop with 8-symbol ranks instead of single-byte
    # ranks: pack bytes i..i+3 and i+4..i+7 into two 36-bit keys (9 bits
    # per symbol; symbols are byte+1 with 0 as the past-the-end
    # sentinel, so short suffixes order below any real byte — the same
    # semantics as the -1 sentinel in the doubling loop).  One lexsort
    # replaces the first three doubling rounds, and on high-entropy
    # firmware data the 8-byte ranks are almost all unique already, so
    # the loop usually terminates after a round or two.
    v = _np.zeros(n + 8, dtype=_np.int64)
    v[:n] = _np.frombuffer(data, dtype=_np.uint8).astype(_np.int64) + 1
    w_hi = (v[0:n] << 27) | (v[1:n + 1] << 18) | (v[2:n + 2] << 9) | v[3:n + 3]
    w_lo = (v[4:n + 4] << 27) | (v[5:n + 5] << 18) | (v[6:n + 6] << 9) | v[7:n + 7]
    sa = _np.lexsort((w_lo, w_hi))
    sorted_hi = w_hi[sa]
    sorted_lo = w_lo[sa]
    # `boundary[i]`: sa[i] starts a new k-symbol group.  Ranks are the
    # *group-start position* rather than a dense 0..n-1 numbering —
    # order-preserving and equal exactly within a group, which is all
    # the pair comparisons need, and it stays consistent when only part
    # of the array is re-ranked below.
    boundary = _np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = (
        (sorted_hi[1:] != sorted_hi[:-1])
        | (sorted_lo[1:] != sorted_lo[:-1])
    )
    idxs = _np.arange(n, dtype=_np.int64)
    rank = _np.empty(n, dtype=_np.int64)
    rank[sa] = _np.maximum.accumulate(_np.where(boundary, idxs, 0))
    k = 8
    while k < n:
        # A suffix is *tied* when its group still has more than one
        # member; groups are contiguous in sa, so only those slots need
        # re-sorting — by (group, rank of the suffix k further on).
        # Repeated firmware regions leave a few percent of suffixes
        # tied after the 8-byte seed, so each round sorts a small
        # subset instead of the whole array.
        tied = ~(boundary & _np.append(boundary[1:], True))
        tied_pos = _np.nonzero(tied)[0]
        if tied_pos.size == 0:
            break
        sub = sa[tied_pos]
        shifted = sub + k
        second = _np.full(sub.shape, -1, dtype=_np.int64)
        valid = shifted < n
        second[valid] = rank[shifted[valid]]
        group = rank[sub]
        order = _np.lexsort((second, group))
        sa[tied_pos] = sub[order]
        group_sorted = group[order]
        second_sorted = second[order]
        # New boundaries within the tied slots: a slot starts a group
        # unless it continues the previous tied slot's group with an
        # equal second key.  (Tied groups are contiguous, so adjacent
        # tied_pos entries in the same group differ by exactly 1.)
        new_boundary = _np.empty(tied_pos.shape, dtype=bool)
        new_boundary[0] = True
        same_group = (
            (tied_pos[1:] == tied_pos[:-1] + 1)
            & (group_sorted[1:] == group_sorted[:-1])
        )
        new_boundary[1:] = ~(
            same_group & (second_sorted[1:] == second_sorted[:-1]))
        boundary[tied_pos] = new_boundary
        rank[sa] = _np.maximum.accumulate(_np.where(boundary, idxs, 0))
        k <<= 1
    return sa.tolist()


def _build_python(data: bytes) -> List[int]:
    n = len(data)
    rank: List[int] = list(data)
    sa = sorted(range(n), key=lambda i: rank[i])
    k = 1
    while k < n:
        def key(i: int) -> tuple:
            nxt = rank[i + k] if i + k < n else -1
            return (rank[i], nxt)

        sa.sort(key=key)
        new_rank = [0] * n
        for idx in range(1, n):
            prev, cur = sa[idx - 1], sa[idx]
            new_rank[cur] = new_rank[prev] + (1 if key(cur) != key(prev) else 0)
        rank = new_rank
        if rank[sa[-1]] == n - 1:
            break
        k <<= 1
    return sa


def longest_match(
    old: bytes, suffix_array: Sequence[int], target: bytes
) -> "tuple[int, int]":
    """Longest common prefix between ``target`` and any suffix of ``old``.

    Returns ``(position_in_old, length)``; ``length`` is 0 when no byte
    matches.  Binary search over the suffix array, exactly as bsdiff's
    ``search`` routine.
    """
    return longest_match_at(old, suffix_array, target, 0, len(target))


def longest_match_at(
    old: bytes, suffix_array: Sequence[int], new: bytes,
    scan: int, cap: int
) -> "tuple[int, int]":
    """:func:`longest_match` against ``new[scan:scan + cap]``, zero-copy.

    ``diff`` calls the match search once per scan position; slicing the
    target out of ``new`` each time copied the whole comparison window
    (up to 4 KiB) tens of thousands of times per image pair.  This
    variant compares in place.  Lexicographic order is decided from the
    common-prefix length instead of materialising either side, so the
    binary search does no slicing at all; the result is identical.
    """
    bound = min(cap, len(new) - scan)
    if not old or bound <= 0:
        return (0, 0)

    target = new[scan:scan + bound]
    first = target[0]
    lo, hi = 0, len(suffix_array)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        start = suffix_array[mid]
        # Bounded prefix comparison: suffixes whose first `bound` bytes tie
        # with the target already achieve the maximum possible LCP, so the
        # tie-breaking order does not affect the result.  Most probes
        # resolve on the first byte; only near-ties pay the C-level
        # slice comparison.
        head = old[start]
        if head != first:
            le = head < first
        else:
            le = old[start:start + bound] <= target
        if le:
            lo = mid
        else:
            hi = mid

    best_pos = suffix_array[lo]
    best_len = _lcp_bounded(old, best_pos, new, scan,
                            min(bound, len(old) - best_pos))
    if hi < len(suffix_array):
        cand = suffix_array[hi]
        cand_len = _lcp_bounded(old, cand, new, scan,
                                min(bound, len(old) - cand))
        if cand_len > best_len:
            best_pos, best_len = cand, cand_len
    return (best_pos, best_len)


class SuffixIndex:
    """Suffix array plus a two-byte prefix index for fast match search.

    The plain binary search walks ~log2(n) Python-level iterations per
    probe, and ``diff`` probes once per scan position — tens of
    thousands of times per image pair.  Keying each suffix by its first
    two bytes (``first * 257 + second + 1``; the ``+1`` keeps the
    sentinel for one-byte suffixes below every real second byte, and
    257 keeps it from colliding with ``(first - 1, 0xFF)``) lets two
    C-level ``bisect`` calls narrow the search to the handful of
    suffixes sharing the target's two-byte prefix.

    The classic search converges to ``lo = max(K, 0)`` where ``K`` is
    the last suffix ordered ``<=`` the target, then scores ``sa[lo]``
    and ``sa[lo + 1]``.  :meth:`search` computes the same ``K`` through
    the bucket, so positions and lengths — and therefore patches — are
    byte-identical.

    With numpy available the bisects disappear entirely: the key list
    is non-decreasing (it follows suffix order), so one
    ``np.searchsorted`` over every possible two-byte key precomputes
    the bucket boundary table, and each probe becomes two O(1) list
    lookups (``bounds[key]`` / ``bounds[key + 1]``).
    """

    __slots__ = ("old", "sa", "_keys", "_bounds")

    def __init__(self, old: bytes):
        self.old = old
        self.sa = build_suffix_array(old)
        n = len(old)
        if _np is not None and n > 64:
            sa_np = _np.asarray(self.sa, dtype=_np.int64)
            data = _np.frombuffer(old, dtype=_np.uint8).astype(_np.int64)
            second = _np.full(n, -1, dtype=_np.int64)
            inner = sa_np < n - 1
            second[inner] = data[sa_np[inner] + 1]
            keys = data[sa_np] * 257 + second + 1
            self._keys: List[int] = keys.tolist()
            # Max key is 255*257 + 256 = 65791; the table needs
            # bounds[key + 1] and bounds[(first + 1) * 257] to resolve,
            # so cover [0, 65793).
            self._bounds: List[int] = _np.searchsorted(
                keys, _np.arange(256 * 257 + 2), side="left").tolist()
        else:
            self._keys = [
                old[pos] * 257
                + (old[pos + 1] + 1 if pos + 1 < n else 0)
                for pos in self.sa
            ]
            self._bounds = None

    def search(self, new: bytes, scan: int, cap: int) -> "tuple[int, int]":
        """Equivalent of :func:`longest_match_at` using the index."""
        old, sa, keys = self.old, self.sa, self._keys
        bounds = self._bounds
        bound = min(cap, len(new) - scan)
        if not old or bound <= 0:
            return (0, 0)

        first = new[scan]
        if bound == 1:
            # One-byte target: every suffix starting with `first`
            # compares <= it (the bounded slice is exactly b"first").
            if bounds is not None:
                last_le = bounds[(first + 1) * 257] - 1
            else:
                last_le = bisect_left(keys, (first + 1) * 257) - 1
        else:
            key = first * 257 + new[scan + 1] + 1
            if bounds is not None:
                b_lo = bounds[key]
                b_hi = bounds[key + 1]
            else:
                b_lo = bisect_left(keys, key)
                b_hi = bisect_right(keys, key, b_lo)
            if b_lo == b_hi:
                last_le = b_lo - 1
            else:
                target = new[scan:scan + bound]
                lo, hi = b_lo, b_hi
                while lo < hi:
                    mid = (lo + hi) // 2
                    start = sa[mid]
                    if old[start:start + bound] <= target:
                        lo = mid + 1
                    else:
                        hi = mid
                last_le = lo - 1

        lo = last_le if last_le > 0 else 0
        best_pos = sa[lo]
        best_len = 0
        if old[best_pos] == first:
            best_len = _lcp_bounded(old, best_pos, new, scan,
                                    min(bound, len(old) - best_pos))
        if lo + 1 < len(sa):
            cand = sa[lo + 1]
            if old[cand] == first:
                cand_len = _lcp_bounded(old, cand, new, scan,
                                        min(bound, len(old) - cand))
                if cand_len > best_len:
                    best_pos, best_len = cand, cand_len
        return (best_pos, best_len)


def _lcp_bounded(old: bytes, pos: int, new: bytes, start: int,
                 limit: int) -> int:
    """Common-prefix length of ``old[pos:]`` and ``new[start:]``, capped.

    Locates the first mismatch without a Python byte loop: XOR the two
    windows as big-endian integers — the highest set bit of the XOR
    pinpoints the first differing byte (``bit_length`` is C-level on
    arbitrary-size ints).  A 16-byte head tier keeps the common case
    (probes that mismatch within a few bytes) from converting whole
    4 KiB windows; the result matches the byte-wise original.
    """
    if limit <= 0 or old[pos] != new[start]:
        return 0
    head = limit if limit < 16 else 16
    a = old[pos:pos + head]
    b = new[start:start + head]
    if a != b:
        x = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
        return head - 1 - (x.bit_length() - 1) // 8
    if head == limit:
        return limit
    a = old[pos:pos + limit]
    b = new[start:start + limit]
    if a == b:
        return limit
    x = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    return limit - 1 - (x.bit_length() - 1) // 8
