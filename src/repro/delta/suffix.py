"""Suffix-array construction for bsdiff.

bsdiff's match search needs a suffix array over the *old* firmware.
The construction runs on the update server (not the constrained
device), so asymptotics matter more than RAM: we use prefix doubling —
O(n log^2 n) comparisons — vectorised with numpy when available, with a
pure-Python fallback so the library works without it.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # numpy is optional; the fallback is exercised in tests
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

__all__ = ["build_suffix_array", "longest_match"]


def build_suffix_array(data: bytes) -> List[int]:
    """Return the suffix array of ``data`` (indices of sorted suffixes)."""
    if not data:
        return []
    if _np is not None and len(data) > 64:
        return _build_numpy(data)
    return _build_python(data)


def _build_numpy(data: bytes) -> List[int]:
    n = len(data)
    rank = _np.frombuffer(data, dtype=_np.uint8).astype(_np.int64)
    sa = _np.argsort(rank, kind="stable")
    tmp = _np.empty(n, dtype=_np.int64)
    k = 1
    while k < n:
        # Rank pairs (rank[i], rank[i+k]); absent second component = -1.
        second = _np.full(n, -1, dtype=_np.int64)
        second[: n - k] = rank[k:]
        order = _np.lexsort((second, rank))
        # Recompute ranks after sorting by the pair key.
        sorted_first = rank[order]
        sorted_second = second[order]
        changed = _np.empty(n, dtype=_np.int64)
        changed[0] = 0
        changed[1:] = (
            (sorted_first[1:] != sorted_first[:-1])
            | (sorted_second[1:] != sorted_second[:-1])
        ).astype(_np.int64)
        new_rank_sorted = _np.cumsum(changed)
        tmp[order] = new_rank_sorted
        rank, tmp = tmp.copy(), tmp
        sa = order
        if rank[sa[-1]] == n - 1:
            break
        k <<= 1
    return sa.tolist()


def _build_python(data: bytes) -> List[int]:
    n = len(data)
    rank: List[int] = list(data)
    sa = sorted(range(n), key=lambda i: rank[i])
    k = 1
    while k < n:
        def key(i: int) -> tuple:
            nxt = rank[i + k] if i + k < n else -1
            return (rank[i], nxt)

        sa.sort(key=key)
        new_rank = [0] * n
        for idx in range(1, n):
            prev, cur = sa[idx - 1], sa[idx]
            new_rank[cur] = new_rank[prev] + (1 if key(cur) != key(prev) else 0)
        rank = new_rank
        if rank[sa[-1]] == n - 1:
            break
        k <<= 1
    return sa


def longest_match(
    old: bytes, suffix_array: Sequence[int], target: bytes
) -> "tuple[int, int]":
    """Longest common prefix between ``target`` and any suffix of ``old``.

    Returns ``(position_in_old, length)``; ``length`` is 0 when no byte
    matches.  Binary search over the suffix array, exactly as bsdiff's
    ``search`` routine.
    """
    if not old or not target:
        return (0, 0)

    bound = len(target)
    lo, hi = 0, len(suffix_array)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        start = suffix_array[mid]
        # Bounded prefix comparison: suffixes whose first `bound` bytes tie
        # with the target already achieve the maximum possible LCP, so the
        # tie-breaking order does not affect the result.
        if old[start:start + bound] <= target:
            lo = mid
        else:
            hi = mid

    best_pos, best_len = suffix_array[lo], _lcp(old, suffix_array[lo], target)
    if hi < len(suffix_array):
        cand = suffix_array[hi]
        cand_len = _lcp(old, cand, target)
        if cand_len > best_len:
            best_pos, best_len = cand, cand_len
    return (best_pos, best_len)


def _lcp(old: bytes, pos: int, target: bytes) -> int:
    limit = min(len(old) - pos, len(target))
    i = 0
    while i < limit and old[pos + i] == target[i]:
        i += 1
    return i
