"""Content-addressed artifact cache for update-preparation products.

The update server prepares several expensive per-release products —
bsdiff patches, LZSS-compressed deltas, ECDSA envelope signatures.  The
server's own LRU (:mod:`repro.core.server`) memoises by *version pair*,
which is exactly right within one server instance; this cache sits one
layer below and keys by *content*::

    key = sha256(old) ‖ sha256(new) ‖ params

so identical firmware bytes hit regardless of which campaign, server
instance, or version numbering produced them — re-running a 50-device
campaign, or standing up a second server over the same releases, pays
the bsdiff+LZSS cost exactly once.  ``params`` carries the product kind
and any generation parameters (e.g. ``b"bsdiff+lzss"``), giving each
product family its own key domain.

The cache is memory-bounded (LRU by stored payload bytes), thread-safe,
and pickle-friendly: process-pool workers carry a copy whose fresh
entries the parent merges back.  A ``max_bytes`` of 0 disables storage
entirely — every lookup misses and the producer runs, which the tests
use to prove campaign reports are byte-identical with and without the
cache.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = [
    "ArtifactCache",
    "ArtifactStats",
    "artifact_key",
    "DEFAULT_ARTIFACT_CACHE_BYTES",
    "shared_cache",
]

#: Default memory bound: enough for dozens of compressed firmware
#: deltas at the benchmark image sizes without letting a long release
#: chain grow the server without limit.
DEFAULT_ARTIFACT_CACHE_BYTES = 32 * 1024 * 1024


def artifact_key(old: bytes, new: bytes, params: bytes) -> bytes:
    """``sha256(old) ‖ sha256(new) ‖ params`` — the cache's content key.

    ``params`` is appended verbatim (not hashed): it is short, and
    keeping it readable makes cache introspection and key-domain
    separation obvious.
    """
    return (hashlib.sha256(old).digest()
            + hashlib.sha256(new).digest()
            + params)


@dataclass
class ArtifactStats:
    """Counters mirroring the server-stats style (JSON-ready)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stored_bytes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stored_bytes": self.stored_bytes,
        }


@dataclass
class _Entry:
    value: bytes
    cost: int = field(init=False)

    def __post_init__(self) -> None:
        self.cost = len(self.value)


class ArtifactCache:
    """Memory-bounded, content-addressed LRU over prepared artifacts."""

    def __init__(self,
                 max_bytes: int = DEFAULT_ARTIFACT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.max_bytes = max_bytes
        self.stats = ArtifactStats()
        self._entries: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- the core protocol -----------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """The cached artifact for ``key``, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def put(self, key: bytes, value: bytes) -> bytes:
        """Store ``value`` under ``key`` (evicting LRU past the bound)."""
        value = bytes(value)
        if not self.enabled or len(value) > self.max_bytes:
            return value
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.stored_bytes -= old.cost
            entry = _Entry(value)
            self._entries[key] = entry
            self.stats.stored_bytes += entry.cost
            while self.stats.stored_bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.stats.stored_bytes -= evicted.cost
                self.stats.evictions += 1
        return value

    def get_or_create(self, old: bytes, new: bytes, params: bytes,
                      producer: Callable[[], bytes]) -> bytes:
        """The artifact for ``(old, new, params)``, producing on miss.

        The producer runs *outside* the entry lock — concurrent misses
        on different keys proceed in parallel; concurrent misses on the
        same key may both produce, but products are deterministic so
        either result is correct and the second ``put`` is idempotent.
        """
        key = artifact_key(old, new, params)
        cached = self.get(key)
        if cached is not None:
            return cached
        return self.put(key, producer())

    # -- fleet plumbing --------------------------------------------------------

    def snapshot_keys(self) -> "set[bytes]":
        """Current key set (cheap; used to diff worker caches)."""
        with self._lock:
            return set(self._entries)

    def export_since(self, keys: "set[bytes]") -> Dict[bytes, bytes]:
        """Entries added since ``keys`` was snapshotted."""
        with self._lock:
            return {key: entry.value
                    for key, entry in self._entries.items()
                    if key not in keys}

    def merge(self, produced: Dict[bytes, bytes]) -> int:
        """Adopt artifacts produced elsewhere (e.g. a pool worker).

        Existing keys are left untouched — content addressing makes the
        values identical anyway, and skipping them preserves LRU order.
        Returns the number of newly adopted entries.
        """
        adopted = 0
        for key, value in produced.items():
            with self._lock:
                known = key in self._entries
            if not known:
                self.put(key, value)
                adopted += 1
        return adopted

    def merge_stats(self, other: ArtifactStats) -> None:
        """Fold a worker's hit/miss/eviction counts into this cache."""
        with self._lock:
            self.stats.hits += other.hits
            self.stats.misses += other.misses
            self.stats.evictions += other.evictions

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


_shared: Optional[ArtifactCache] = None
_shared_lock = threading.Lock()


def shared_cache() -> ArtifactCache:
    """The process-wide cache instance (created on first use).

    Servers default to a private cache so benchmark configurations stay
    independent; passing ``shared_cache()`` explicitly opts a server
    into cross-campaign artifact reuse.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = ArtifactCache()
        return _shared
