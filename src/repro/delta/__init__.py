"""Binary-delta substrate: bsdiff generation and streaming bspatch."""

from .artifacts import ArtifactCache, ArtifactStats, artifact_key, shared_cache
from .bsdiff import MAGIC, Control, PatchFormatError, diff, parse_patch
from .bspatch import StreamingPatcher
from .suffix import SuffixIndex, build_suffix_array, longest_match

__all__ = [
    "ArtifactCache",
    "ArtifactStats",
    "Control",
    "MAGIC",
    "PatchFormatError",
    "StreamingPatcher",
    "SuffixIndex",
    "artifact_key",
    "build_suffix_array",
    "diff",
    "longest_match",
    "parse_patch",
    "shared_cache",
]


def patch(old: bytes, patch_stream: bytes) -> bytes:
    """One-shot convenience: apply a full patch to ``old``."""
    patcher = StreamingPatcher(old)
    out = patcher.feed(patch_stream)
    patcher.finish()
    return out
