"""Binary-delta substrate: bsdiff generation and streaming bspatch."""

from .bsdiff import MAGIC, Control, PatchFormatError, diff, parse_patch
from .bspatch import StreamingPatcher
from .suffix import build_suffix_array, longest_match

__all__ = [
    "Control",
    "MAGIC",
    "PatchFormatError",
    "StreamingPatcher",
    "build_suffix_array",
    "diff",
    "longest_match",
    "parse_patch",
]


def patch(old: bytes, patch_stream: bytes) -> bytes:
    """One-shot convenience: apply a full patch to ``old``."""
    patcher = StreamingPatcher(old)
    out = patcher.feed(patch_stream)
    patcher.finish()
    return out
