"""bsdiff: binary delta generation (server side).

UpKit's update server derives a patch between the device's current
firmware and the new image (Sect. IV-C), using bsdiff because Stolikj
et al. [19] found it the best size/footprint trade-off for constrained
devices.

This is Colin Percival's algorithm: suffix-array match search over the
old file, with fuzzy match extension so that *approximately* matching
regions become small byte-wise differences (firmware recompiles shift
addresses by small deltas, so old and new bytes differ by a few bits in
otherwise-aligned regions).

**Wire format.**  The classic bsdiff4 container stores three separately
compressed blocks (control / diff / extra), which cannot be applied
until the whole patch is present.  UpKit applies patches *on-the-fly*
in a pipeline without buffering the patch, so we serialise records
interleaved instead::

    MAGIC "UPD1" | new_size (u32 BE) | record*
    record = add_len (u32) | copy_len (u32) | seek (i64) |
             add_len diff bytes | copy_len extra bytes

Each record is self-contained: ``add_len`` diff bytes are added
byte-wise to the old file at the current old-cursor, ``copy_len`` extra
bytes are emitted verbatim, then the old-cursor moves by ``seek``.
The stream is LZSS-compressed as a whole by the caller.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List

from .suffix import build_suffix_array, longest_match

__all__ = ["diff", "Control", "parse_patch", "PatchFormatError", "MAGIC"]

MAGIC = b"UPD1"
_HEADER = struct.Struct(">4sI")
_CONTROL = struct.Struct(">IIq")


class PatchFormatError(ValueError):
    """Raised when a patch stream is structurally invalid."""


@dataclass(frozen=True)
class Control:
    """One bsdiff control record."""

    add_len: int
    copy_len: int
    seek: int


def diff(old: bytes, new: bytes) -> bytes:
    """Produce an uncompressed interleaved patch turning ``old`` into ``new``."""
    old = bytes(old)
    new = bytes(new)
    sa = build_suffix_array(old)
    out = bytearray(_HEADER.pack(MAGIC, len(new)))

    scan = 0          # cursor in new
    last_scan = 0     # start of the region covered by the next record
    last_pos = 0      # matching position in old for last_scan
    pos = 0           # position in old of the current exact match
    match_len = 0

    n_new, n_old = len(new), len(old)

    while scan < n_new:
        old_score = 0
        scan += match_len
        scsc = scan
        while scan < n_new:
            # The match target is capped: very long identical regions are
            # simply split across successive records (24 B overhead each),
            # which keeps every suffix-array comparison cheap.
            pos, match_len = longest_match(old, sa, new[scan:scan + 4096])
            while scsc < scan + match_len:
                if (scsc + last_pos - last_scan < n_old
                        and old[scsc + last_pos - last_scan] == new[scsc]):
                    old_score += 1
                scsc += 1
            if (match_len == old_score and match_len != 0) or match_len > old_score + 8:
                break
            if (scan + last_pos - last_scan < n_old
                    and old[scan + last_pos - last_scan] == new[scan]):
                old_score -= 1
            scan += 1

        if match_len != old_score or scan == n_new:
            # Extend the previous region forward while it still pays off.
            length_f = 0
            s = 0
            sf = 0
            i = 0
            while last_scan + i < scan and last_pos + i < n_old:
                if old[last_pos + i] == new[last_scan + i]:
                    s += 1
                i += 1
                if s * 2 - i > sf * 2 - length_f:
                    sf = s
                    length_f = i

            # Extend the new match backwards.
            length_b = 0
            if scan < n_new:
                s = 0
                sb = 0
                i = 1
                while scan >= last_scan + i and pos >= i:
                    if old[pos - i] == new[scan - i]:
                        s += 1
                    if s * 2 - i > sb * 2 - length_b:
                        sb = s
                        length_b = i
                    i += 1

            # Resolve overlap between forward and backward extensions.
            if last_scan + length_f > scan - length_b:
                overlap = (last_scan + length_f) - (scan - length_b)
                s = 0
                best_s = 0
                best_i = 0
                for i in range(overlap):
                    if (new[last_scan + length_f - overlap + i]
                            == old[last_pos + length_f - overlap + i]):
                        s += 1
                    if (new[scan - length_b + i]
                            == old[pos - length_b + i]):
                        s -= 1
                    if s > best_s:
                        best_s = s
                        best_i = i + 1
                length_f += best_i - overlap
                length_b -= best_i

            add_len = length_f
            copy_len = (scan - length_b) - (last_scan + length_f)
            seek = (pos - length_b) - (last_pos + length_f)

            diff_bytes = bytes(
                (new[last_scan + i] - old[last_pos + i]) & 0xFF
                for i in range(add_len)
            )
            extra = new[last_scan + add_len: last_scan + add_len + copy_len]

            out.extend(_CONTROL.pack(add_len, copy_len, seek))
            out.extend(diff_bytes)
            out.extend(extra)

            # After applying the record the patcher's old-cursor sits at
            # (previous last_pos + add_len + seek) == pos - length_b.
            last_scan = scan - length_b
            last_pos = pos - length_b

    return bytes(out)


def parse_patch(patch: bytes) -> "tuple[int, List[tuple[Control, bytes, bytes]]]":
    """Parse a full patch into ``(new_size, [(control, diff, extra), ...])``.

    The streaming patcher (:mod:`repro.delta.bspatch`) never calls this;
    it is used by tests and by the server's self-check after generating
    a patch.
    """
    if len(patch) < _HEADER.size:
        raise PatchFormatError("patch shorter than header")
    magic, new_size = _HEADER.unpack_from(patch, 0)
    if magic != MAGIC:
        raise PatchFormatError("bad patch magic %r" % magic)
    records = []
    offset = _HEADER.size
    while offset < len(patch):
        if offset + _CONTROL.size > len(patch):
            raise PatchFormatError("truncated control record")
        add_len, copy_len, seek = _CONTROL.unpack_from(patch, offset)
        offset += _CONTROL.size
        if offset + add_len + copy_len > len(patch):
            raise PatchFormatError("truncated record body")
        diff_bytes = patch[offset:offset + add_len]
        offset += add_len
        extra = patch[offset:offset + copy_len]
        offset += copy_len
        records.append((Control(add_len, copy_len, seek), diff_bytes, extra))
    return new_size, records


def iter_records(patch: bytes) -> Iterator["tuple[Control, bytes, bytes]"]:
    """Iterate records of a parsed patch (convenience for tooling)."""
    _, records = parse_patch(patch)
    return iter(records)
