"""bsdiff: binary delta generation (server side).

UpKit's update server derives a patch between the device's current
firmware and the new image (Sect. IV-C), using bsdiff because Stolikj
et al. [19] found it the best size/footprint trade-off for constrained
devices.

This is Colin Percival's algorithm: suffix-array match search over the
old file, with fuzzy match extension so that *approximately* matching
regions become small byte-wise differences (firmware recompiles shift
addresses by small deltas, so old and new bytes differ by a few bits in
otherwise-aligned regions).

**Wire format.**  The classic bsdiff4 container stores three separately
compressed blocks (control / diff / extra), which cannot be applied
until the whole patch is present.  UpKit applies patches *on-the-fly*
in a pipeline without buffering the patch, so we serialise records
interleaved instead::

    MAGIC "UPD1" | new_size (u32 BE) | record*
    record = add_len (u32) | copy_len (u32) | seek (i64) |
             add_len diff bytes | copy_len extra bytes

Each record is self-contained: ``add_len`` diff bytes are added
byte-wise to the old file at the current old-cursor, ``copy_len`` extra
bytes are emitted verbatim, then the old-cursor moves by ``seek``.
The stream is LZSS-compressed as a whole by the caller.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List

try:  # numpy accelerates the match-extension kernels; optional
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

from .suffix import SuffixIndex, build_suffix_array, longest_match

__all__ = ["diff", "Control", "parse_patch", "PatchFormatError", "MAGIC"]

MAGIC = b"UPD1"
_HEADER = struct.Struct(">4sI")
_CONTROL = struct.Struct(">IIq")


class PatchFormatError(ValueError):
    """Raised when a patch stream is structurally invalid."""


@dataclass(frozen=True)
class Control:
    """One bsdiff control record."""

    add_len: int
    copy_len: int
    seek: int


#: Ranges shorter than this are scored/extended with the plain byte
#: loop even when numpy is available: array setup costs more than the
#: loop for a handful of bytes.
_VECTOR_MIN = 64


def _extend_forward(old, new, old_np, new_np, last_pos, last_scan,
                    limit: int) -> int:
    """The forward match extension: longest i maximising 2*matches - i.

    Ties keep the *first* i achieving the maximum (the scalar loop only
    updates on strict improvement), which is exactly what ``argmax``
    returns — so the two paths pick identical lengths.
    """
    if old_np is not None and limit >= _VECTOR_MIN:
        eq = old_np[last_pos:last_pos + limit] \
            == new_np[last_scan:last_scan + limit]
        metric = 2 * _np.cumsum(eq) - _np.arange(1, limit + 1)
        best = int(_np.argmax(metric))
        return best + 1 if int(metric[best]) > 0 else 0
    length_f = 0
    s = 0
    sf = 0
    for i in range(limit):
        if old[last_pos + i] == new[last_scan + i]:
            s += 1
        if s * 2 - (i + 1) > sf * 2 - length_f:
            sf = s
            length_f = i + 1
    return length_f


def _extend_backward(old, new, old_np, new_np, pos, scan,
                     limit: int) -> int:
    """The backward match extension (same tie-breaking as forward)."""
    if old_np is not None and limit >= _VECTOR_MIN:
        eq = old_np[pos - limit:pos][::-1] == new_np[scan - limit:scan][::-1]
        metric = 2 * _np.cumsum(eq) - _np.arange(1, limit + 1)
        best = int(_np.argmax(metric))
        return best + 1 if int(metric[best]) > 0 else 0
    length_b = 0
    s = 0
    sb = 0
    for i in range(1, limit + 1):
        if old[pos - i] == new[scan - i]:
            s += 1
        if s * 2 - i > sb * 2 - length_b:
            sb = s
            length_b = i
    return length_b


def _resolve_overlap(old, new, old_np, new_np, last_pos, last_scan,
                     pos, scan, length_f, length_b, overlap: int) -> int:
    """Split point when forward and backward extensions overlap."""
    f_new = last_scan + length_f - overlap
    f_old = last_pos + length_f - overlap
    b_new = scan - length_b
    b_old = pos - length_b
    if old_np is not None and overlap >= _VECTOR_MIN:
        gain = (new_np[f_new:f_new + overlap]
                == old_np[f_old:f_old + overlap]).astype(_np.int64)
        loss = (new_np[b_new:b_new + overlap]
                == old_np[b_old:b_old + overlap]).astype(_np.int64)
        running = _np.cumsum(gain - loss)
        best = int(_np.argmax(running))
        return best + 1 if int(running[best]) > 0 else 0
    s = 0
    best_s = 0
    best_i = 0
    for i in range(overlap):
        if new[f_new + i] == old[f_old + i]:
            s += 1
        if new[b_new + i] == old[b_old + i]:
            s -= 1
        if s > best_s:
            best_s = s
            best_i = i + 1
    return best_i


def _diff_bytes(old, new, old_np, new_np, last_pos, last_scan,
                add_len: int) -> bytes:
    """``(new - old) mod 256`` over the add region (uint8 wraps match)."""
    if old_np is not None and add_len >= _VECTOR_MIN:
        return (new_np[last_scan:last_scan + add_len]
                - old_np[last_pos:last_pos + add_len]).tobytes()
    return bytes(
        (new[last_scan + i] - old[last_pos + i]) & 0xFF
        for i in range(add_len)
    )


def diff(old: bytes, new: bytes) -> bytes:
    """Produce an uncompressed interleaved patch turning ``old`` into ``new``.

    The control flow is Percival's scan loop unchanged; the per-byte
    kernels inside it (match-region scoring, forward/backward extension,
    overlap resolution, diff-byte subtraction) run vectorised through
    numpy when it is importable and fall back to the original byte
    loops otherwise.  Both paths emit bit-identical patches — the
    tier-1 parity suite diffs them directly.
    """
    old = bytes(old)
    new = bytes(new)
    index = SuffixIndex(old)
    search = index.search
    out = bytearray(_HEADER.pack(MAGIC, len(new)))

    if _np is not None:
        old_np = _np.frombuffer(old, dtype=_np.uint8)
        new_np = _np.frombuffer(new, dtype=_np.uint8)
    else:
        old_np = new_np = None

    scan = 0          # cursor in new
    last_scan = 0     # start of the region covered by the next record
    last_pos = 0      # matching position in old for last_scan
    pos = 0           # position in old of the current exact match
    match_len = 0

    n_new, n_old = len(new), len(old)

    while scan < n_new:
        old_score = 0
        scan += match_len
        scsc = scan
        while scan < n_new:
            # The match target is capped: very long identical regions are
            # simply split across successive records (24 B overhead each),
            # which keeps every suffix-array comparison cheap.
            pos, match_len = search(new, scan, 4096)
            stop = scan + match_len
            if old_np is not None and stop - scsc >= _VECTOR_MIN:
                # scsc + delta == scsc + last_pos - last_scan >= last_pos,
                # so only the upper bound needs clamping.
                delta = last_pos - last_scan
                b = min(stop, n_old - delta)
                if b > scsc:
                    old_score += int(_np.count_nonzero(
                        old_np[scsc + delta:b + delta] == new_np[scsc:b]))
                scsc = stop
            else:
                while scsc < stop:
                    if (scsc + last_pos - last_scan < n_old
                            and old[scsc + last_pos - last_scan] == new[scsc]):
                        old_score += 1
                    scsc += 1
            if (match_len == old_score and match_len != 0) or match_len > old_score + 8:
                break
            if (scan + last_pos - last_scan < n_old
                    and old[scan + last_pos - last_scan] == new[scan]):
                old_score -= 1
            scan += 1

        if match_len != old_score or scan == n_new:
            # Extend the previous region forward while it still pays off.
            length_f = _extend_forward(
                old, new, old_np, new_np, last_pos, last_scan,
                min(scan - last_scan, n_old - last_pos))

            # Extend the new match backwards.
            length_b = 0
            if scan < n_new:
                length_b = _extend_backward(
                    old, new, old_np, new_np, pos, scan,
                    min(scan - last_scan, pos))

            # Resolve overlap between forward and backward extensions.
            if last_scan + length_f > scan - length_b:
                overlap = (last_scan + length_f) - (scan - length_b)
                best_i = _resolve_overlap(
                    old, new, old_np, new_np, last_pos, last_scan,
                    pos, scan, length_f, length_b, overlap)
                length_f += best_i - overlap
                length_b -= best_i

            add_len = length_f
            copy_len = (scan - length_b) - (last_scan + length_f)
            seek = (pos - length_b) - (last_pos + length_f)

            diff_bytes = _diff_bytes(old, new, old_np, new_np,
                                     last_pos, last_scan, add_len)
            extra = new[last_scan + add_len: last_scan + add_len + copy_len]

            out.extend(_CONTROL.pack(add_len, copy_len, seek))
            out.extend(diff_bytes)
            out.extend(extra)

            # After applying the record the patcher's old-cursor sits at
            # (previous last_pos + add_len + seek) == pos - length_b.
            last_scan = scan - length_b
            last_pos = pos - length_b

    return bytes(out)


def parse_patch(patch: bytes) -> "tuple[int, List[tuple[Control, bytes, bytes]]]":
    """Parse a full patch into ``(new_size, [(control, diff, extra), ...])``.

    The streaming patcher (:mod:`repro.delta.bspatch`) never calls this;
    it is used by tests and by the server's self-check after generating
    a patch.
    """
    if len(patch) < _HEADER.size:
        raise PatchFormatError("patch shorter than header")
    magic, new_size = _HEADER.unpack_from(patch, 0)
    if magic != MAGIC:
        raise PatchFormatError("bad patch magic %r" % magic)
    records = []
    offset = _HEADER.size
    while offset < len(patch):
        if offset + _CONTROL.size > len(patch):
            raise PatchFormatError("truncated control record")
        add_len, copy_len, seek = _CONTROL.unpack_from(patch, offset)
        offset += _CONTROL.size
        if offset + add_len + copy_len > len(patch):
            raise PatchFormatError("truncated record body")
        diff_bytes = patch[offset:offset + add_len]
        offset += add_len
        extra = patch[offset:offset + copy_len]
        offset += copy_len
        records.append((Control(add_len, copy_len, seek), diff_bytes, extra))
    return new_size, records


def iter_records(patch: bytes) -> Iterator["tuple[Control, bytes, bytes]"]:
    """Iterate records of a parsed patch (convenience for tooling)."""
    _, records = parse_patch(patch)
    return iter(records)
