"""Streaming bspatch: applies interleaved bsdiff records on-the-fly.

This is the device-side half of UpKit's differential updates.  The
patcher consumes the (already LZSS-decompressed) patch stream chunk by
chunk and emits new-firmware bytes immediately, reading the old
firmware through a random-access callable — in production a memory-slot
reader, in tests a ``bytes`` object.  No patch buffering means no extra
flash slot, which is the point of the pipeline design (Sect. IV-C).
"""

from __future__ import annotations

import struct
from typing import Callable, Union

try:  # numpy vectorises the add-region arithmetic; optional
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

from .bsdiff import MAGIC, PatchFormatError

__all__ = ["StreamingPatcher"]

#: Add regions shorter than this use the plain byte loop even with
#: numpy available: array setup costs more than the loop itself.
_VECTOR_MIN = 64

_HEADER = struct.Struct(">4sI")
_CONTROL = struct.Struct(">IIq")

OldReader = Callable[[int, int], bytes]


class StreamingPatcher:
    """Incremental bsdiff patch application.

    Parameters
    ----------
    old:
        Either the old firmware as bytes, or a callable
        ``read(offset, length) -> bytes`` backed by the current slot.
    old_size:
        Required when ``old`` is a callable.
    """

    def __init__(self, old: Union[bytes, OldReader],
                 old_size: "int | None" = None) -> None:
        if callable(old):
            if old_size is None:
                raise ValueError("old_size is required with a reader callable")
            self._read_old: OldReader = old
            self._old_size = old_size
        else:
            data = bytes(old)
            self._read_old = lambda off, ln: data[off:off + ln]
            self._old_size = len(data)

        self._buf = bytearray()
        self._state = "header"
        self._new_size = 0
        self._emitted = 0
        self._old_pos = 0
        self._add_len = 0
        self._copy_len = 0
        self._seek = 0

    @property
    def new_size(self) -> int:
        """Declared output size; 0 until the header has been parsed."""
        return self._new_size

    @property
    def emitted(self) -> int:
        return self._emitted

    def feed(self, chunk: bytes) -> bytes:
        """Consume a patch chunk and return the new-firmware bytes it yields."""
        self._buf.extend(chunk)
        out = bytearray()
        progress = True
        while progress:
            progress = False
            if self._state == "header":
                if len(self._buf) >= _HEADER.size:
                    magic, new_size = _HEADER.unpack_from(self._buf, 0)
                    if magic != MAGIC:
                        raise PatchFormatError("bad patch magic %r" % magic)
                    del self._buf[:_HEADER.size]
                    self._new_size = new_size
                    self._state = "control"
                    progress = True
            elif self._state == "control":
                if len(self._buf) >= _CONTROL.size:
                    self._add_len, self._copy_len, self._seek = (
                        _CONTROL.unpack_from(self._buf, 0)
                    )
                    del self._buf[:_CONTROL.size]
                    if self._old_pos + self._add_len > self._old_size:
                        raise PatchFormatError(
                            "diff region exceeds old firmware "
                            "(pos %d + %d > %d)"
                            % (self._old_pos, self._add_len, self._old_size)
                        )
                    self._state = "add"
                    progress = True
            elif self._state == "add":
                take = min(self._add_len, len(self._buf))
                if take or self._add_len == 0:
                    if take:
                        old_bytes = self._read_old(self._old_pos, take)
                        if _np is not None and take >= _VECTOR_MIN:
                            # uint8 addition wraps mod 256, matching
                            # the (a + b) & 0xFF byte loop exactly.
                            # The memoryview reads the staging buffer
                            # in place; all views die with the
                            # expression, before the del below.
                            with memoryview(self._buf) as staged:
                                piece = (
                                    _np.frombuffer(staged[:take],
                                                   dtype=_np.uint8)
                                    + _np.frombuffer(old_bytes,
                                                     dtype=_np.uint8)
                                ).tobytes()
                        else:
                            piece = bytes(
                                (self._buf[i] + old_bytes[i]) & 0xFF
                                for i in range(take)
                            )
                        out.extend(piece)
                        del self._buf[:take]
                        self._old_pos += take
                        self._add_len -= take
                        self._emitted += len(piece)
                    if self._add_len == 0:
                        self._state = "copy"
                    progress = take > 0 or self._state == "copy"
            elif self._state == "copy":
                take = min(self._copy_len, len(self._buf))
                if take or self._copy_len == 0:
                    if take:
                        out.extend(self._buf[:take])
                        del self._buf[:take]
                        self._copy_len -= take
                        self._emitted += take
                    if self._copy_len == 0:
                        self._old_pos += self._seek
                        if not (0 <= self._old_pos <= self._old_size):
                            raise PatchFormatError(
                                "seek moved old cursor to %d (size %d)"
                                % (self._old_pos, self._old_size)
                            )
                        self._state = "control"
                    progress = take > 0 or self._state == "control"
            if self._emitted > self._new_size:
                raise PatchFormatError(
                    "patch emitted %d bytes, more than declared %d"
                    % (self._emitted, self._new_size)
                )
        return bytes(out)

    def finish(self) -> None:
        """Assert the stream is complete and consistent."""
        if self._state == "header":
            raise PatchFormatError("patch ended before the header")
        if self._buf:
            raise PatchFormatError("%d trailing patch bytes" % len(self._buf))
        if self._state != "control" or self._add_len or self._copy_len:
            raise PatchFormatError("patch ended mid-record")
        if self._emitted != self._new_size:
            raise PatchFormatError(
                "patch produced %d bytes, expected %d"
                % (self._emitted, self._new_size)
            )
