"""Hardware-platform profiles: the boards the paper evaluates on.

Each profile carries the facts the simulation needs: flash geometry and
timing, RAM budget, radio availability, current draws, and reboot cost.
Values come from the respective datasheets (nRF52840 PS v1.1, CC2650 and
CC2538 datasheets); where the paper's evaluation implies an effective
value (e.g. swap throughput), the datasheet numbers already reproduce it
— an 85 ms page erase plus ~97 kB/s programming yields the ~16 kB/s
slot-swap rate behind Fig. 8a's loading phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..memory import FlashMemory, FlashTiming

__all__ = ["BoardProfile", "NRF52840", "CC2650", "CC2538", "BOARDS",
           "get_board"]


@dataclass(frozen=True)
class BoardProfile:
    """Static description of one hardware platform."""

    name: str
    mcu: str
    cpu_mhz: int
    ram_bytes: int
    internal_flash_bytes: int
    internal_page_size: int
    internal_flash_timing: FlashTiming
    external_flash_bytes: int = 0
    external_page_size: int = 4096
    external_flash_timing: Optional[FlashTiming] = None
    radios: Tuple[str, ...] = ()
    cpu_active_ma: float = 6.0
    radio_rx_ma: float = 6.0
    radio_tx_ma: float = 6.5
    flash_write_ma: float = 5.0
    sleep_ua: float = 1.5
    reboot_seconds: float = 0.35
    supply_volts: float = 3.0

    @property
    def has_external_flash(self) -> bool:
        return self.external_flash_bytes > 0

    def make_internal_flash(self) -> FlashMemory:
        return FlashMemory(
            self.internal_flash_bytes,
            page_size=self.internal_page_size,
            timing=self.internal_flash_timing,
            name="%s-internal" % self.name,
        )

    def make_external_flash(self) -> FlashMemory:
        if not self.has_external_flash:
            raise ValueError("%s has no external flash" % self.name)
        timing = self.external_flash_timing or FlashTiming(
            erase_page_seconds=0.045,
            write_bytes_per_second=60_000.0,
            read_bytes_per_second=2_000_000.0,
        )
        return FlashMemory(
            self.external_flash_bytes,
            page_size=self.external_page_size,
            timing=timing,
            name="%s-external" % self.name,
        )


NRF52840 = BoardProfile(
    name="nrf52840",
    mcu="Cortex-M4F",
    cpu_mhz=64,
    ram_bytes=256 * 1024,
    internal_flash_bytes=1024 * 1024,
    internal_page_size=4096,
    internal_flash_timing=FlashTiming(
        erase_page_seconds=0.085,
        write_bytes_per_second=97_000.0,
        read_bytes_per_second=8_000_000.0,
    ),
    radios=("ble", "ieee802154"),
    cpu_active_ma=6.3,
    radio_rx_ma=6.1,
    radio_tx_ma=6.4,
    flash_write_ma=5.1,
    sleep_ua=1.5,
    reboot_seconds=0.35,
)

CC2650 = BoardProfile(
    name="cc2650",
    mcu="Cortex-M3",
    cpu_mhz=48,
    ram_bytes=20 * 1024,
    internal_flash_bytes=128 * 1024,
    internal_page_size=4096,
    internal_flash_timing=FlashTiming(
        erase_page_seconds=0.008,
        write_bytes_per_second=85_000.0,
        read_bytes_per_second=6_000_000.0,
    ),
    # The internal flash cannot hold two slots; the LaunchPad's external
    # SPI NOR stores the non-bootable slot (Sect. V).
    external_flash_bytes=1024 * 1024,
    external_page_size=4096,
    external_flash_timing=FlashTiming(
        erase_page_seconds=0.050,
        write_bytes_per_second=55_000.0,
        read_bytes_per_second=1_500_000.0,
    ),
    radios=("ble", "ieee802154"),
    cpu_active_ma=6.1,
    radio_rx_ma=5.9,
    radio_tx_ma=6.1,
    flash_write_ma=4.8,
    sleep_ua=1.0,
    reboot_seconds=0.30,
)

CC2538 = BoardProfile(
    name="cc2538",
    mcu="Cortex-M3",
    cpu_mhz=32,
    ram_bytes=32 * 1024,
    internal_flash_bytes=512 * 1024,
    internal_page_size=2048,
    internal_flash_timing=FlashTiming(
        erase_page_seconds=0.020,
        write_bytes_per_second=70_000.0,
        read_bytes_per_second=5_000_000.0,
    ),
    radios=("ieee802154",),
    cpu_active_ma=13.0,
    radio_rx_ma=20.0,
    radio_tx_ma=24.0,
    flash_write_ma=8.0,
    sleep_ua=1.3,
    reboot_seconds=0.40,
)

BOARDS = {board.name: board for board in (NRF52840, CC2650, CC2538)}


def get_board(name: str) -> BoardProfile:
    try:
        return BOARDS[name.lower()]
    except KeyError:
        raise KeyError("unknown board %r (have: %s)"
                       % (name, ", ".join(sorted(BOARDS)))) from None
