"""Operating-system profiles: Zephyr, RIOT, Contiki.

UpKit's portability claim is that only the platform-specific modules of
Fig. 3 change across OSes.  For the reproduction, an OS profile carries
(i) the names of the OS-provided pieces (CoAP implementation, network
substrate) and (ii) the per-build constants that differentiate the
paper's evaluation numbers.

The flash/RAM constants below are *solved* from Tables I and II of the
paper under a linear link model (build = Σ component costs): given the
published totals and the crypto-library contributions, each OS's
kernel, IPv6/CoAP stack, BLE stack and bootloader-support costs follow.
:mod:`repro.footprint` recombines them; EXPERIMENTS.md records the
model-vs-paper residuals (all < 0.2%).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OSProfile", "ZEPHYR", "RIOT", "CONTIKI", "OSES", "get_os"]


@dataclass(frozen=True)
class OSProfile:
    """Static description of one operating system port."""

    name: str
    coap_library: str            # Zoap / libcoap / er-coap, per Sect. V
    network_stack: str           # the pull approach's IPv6 substrate
    supports_ble_push: bool      # complete BLE GATT support (Zephyr only)
    # -- update-agent build components (flash / RAM, bytes) -------------
    kernel_flash: int
    kernel_ram: int
    runtime_stack_ram: int       # Zephyr's larger stack drives Table I's RAM
    ipv6_stack_flash: int        # 6LoWPAN/IPv6 (+ RPL) — pull approach
    ipv6_stack_ram: int
    coap_flash: int
    coap_ram: int
    ble_stack_flash: int         # BLE GATT — push approach (Zephyr only)
    ble_stack_ram: int
    # -- bootloader build components -------------------------------------
    boot_glue_flash: int         # OS-specific bootloader support code
    boot_ram: int                # bootloader static RAM + stack (no crypto)


ZEPHYR = OSProfile(
    name="zephyr",
    coap_library="zoap",
    network_stack="6lowpan",
    supports_ble_push=True,
    kernel_flash=11500, kernel_ram=4200, runtime_stack_ram=2700,
    ipv6_stack_flash=168000, ipv6_stack_ram=58000,
    coap_flash=22066, coap_ram=5687,
    ble_stack_flash=53512, ble_stack_ram=10339,
    boot_glue_flash=305, boot_ram=5850,
)

RIOT = OSProfile(
    name="riot",
    coap_library="libcoap",
    network_stack="6lowpan",
    supports_ble_push=False,
    kernel_flash=10200, kernel_ram=2300, runtime_stack_ram=1020,
    ipv6_stack_flash=55000, ipv6_stack_ram=19500,
    coap_flash=13674, coap_ram=3807,
    ble_stack_flash=0, ble_stack_ram=0,
    boot_glue_flash=2685, boot_ram=4182,
)

CONTIKI = OSProfile(
    name="contiki",
    coap_library="er-coap",
    network_stack="6lowpan",
    supports_ble_push=False,
    kernel_flash=9800, kernel_ram=2250, runtime_stack_ram=1150,
    ipv6_stack_flash=42000, ipv6_stack_ram=10200,
    coap_flash=10739, coap_ram=1717,
    ble_stack_flash=0, ble_stack_ram=0,
    boot_glue_flash=2719, boot_ram=4307,
)

OSES = {os.name: os for os in (ZEPHYR, RIOT, CONTIKI)}


def get_os(name: str) -> OSProfile:
    try:
        return OSES[name.lower()]
    except KeyError:
        raise KeyError("unknown OS %r (have: %s)"
                       % (name, ", ".join(sorted(OSES)))) from None
