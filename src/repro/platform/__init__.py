"""Hardware and OS profiles for the three boards and three OSes evaluated."""

from .boards import BOARDS, CC2538, CC2650, NRF52840, BoardProfile, get_board
from .oses import CONTIKI, OSES, RIOT, ZEPHYR, OSProfile, get_os

__all__ = [
    "BOARDS",
    "BoardProfile",
    "CC2538",
    "CC2650",
    "CONTIKI",
    "NRF52840",
    "OSES",
    "OSProfile",
    "RIOT",
    "ZEPHYR",
    "get_board",
    "get_os",
]
