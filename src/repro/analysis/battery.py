"""Battery-lifetime analysis of update strategies.

The paper's motivation is energy: battery-powered smart objects run
"for several years" and every update eats into that budget.  This
module turns the simulator's per-update energy numbers into the
figures an operator actually plans with — how much battery a year of
updates costs, and how the update strategy (full vs. differential,
push vs. pull, A/B vs. static) moves device lifetime.

Model: a primary cell of ``capacity_mah`` at ``nominal_volts``, a
baseline load of ``sleep_ua`` (the device's idle draw) plus periodic
update energy, with an optional annual self-discharge fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import UpdateOutcome

__all__ = ["BatteryModel", "UpdatePlan", "lifetime_years",
           "updates_per_percent", "compare_plans"]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class BatteryModel:
    """A primary cell (defaults: CR123A-class 3 V lithium)."""

    capacity_mah: float = 1500.0
    nominal_volts: float = 3.0
    self_discharge_per_year: float = 0.01

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.nominal_volts <= 0:
            raise ValueError("capacity and voltage must be positive")
        if not (0.0 <= self.self_discharge_per_year < 1.0):
            raise ValueError("self-discharge must be in [0, 1)")

    @property
    def capacity_mj(self) -> float:
        # mAh → mC (×3600) → mJ (×V)
        return self.capacity_mah * 3600.0 * self.nominal_volts

    @property
    def self_discharge_mj_per_year(self) -> float:
        return self.capacity_mj * self.self_discharge_per_year


@dataclass(frozen=True)
class UpdatePlan:
    """An update strategy: energy per update × cadence."""

    name: str
    energy_per_update_mj: float
    updates_per_year: float

    @property
    def annual_energy_mj(self) -> float:
        return self.energy_per_update_mj * self.updates_per_year

    @classmethod
    def from_outcome(cls, name: str, outcome: UpdateOutcome,
                     updates_per_year: float) -> "UpdatePlan":
        return cls(name=name,
                   energy_per_update_mj=outcome.total_energy_mj,
                   updates_per_year=updates_per_year)


def lifetime_years(battery: BatteryModel, sleep_ua: float,
                   plan: "UpdatePlan | None" = None) -> float:
    """Device lifetime on one battery under a sleep load + update plan."""
    if sleep_ua < 0:
        raise ValueError("sleep current must be non-negative")
    sleep_mj_per_year = (sleep_ua / 1000.0) * battery.nominal_volts \
        * _SECONDS_PER_YEAR
    annual = (sleep_mj_per_year + battery.self_discharge_mj_per_year
              + (plan.annual_energy_mj if plan else 0.0))
    if annual <= 0:
        raise ValueError("annual consumption must be positive")
    return battery.capacity_mj / annual


def updates_per_percent(battery: BatteryModel,
                        energy_per_update_mj: float) -> float:
    """How many updates consume 1% of the battery."""
    if energy_per_update_mj <= 0:
        raise ValueError("update energy must be positive")
    return (battery.capacity_mj / 100.0) / energy_per_update_mj


def compare_plans(battery: BatteryModel, sleep_ua: float,
                  plans: "list[UpdatePlan]") -> "list[dict]":
    """Lifetime table for several strategies, sorted best-first."""
    baseline = lifetime_years(battery, sleep_ua)
    rows = []
    for plan in plans:
        years = lifetime_years(battery, sleep_ua, plan)
        rows.append({
            "name": plan.name,
            "energy_per_update_mj": plan.energy_per_update_mj,
            "updates_per_year": plan.updates_per_year,
            "lifetime_years": years,
            "lifetime_cost_years": baseline - years,
            "battery_fraction_for_updates":
                plan.annual_energy_mj * years / battery.capacity_mj,
        })
    rows.sort(key=lambda row: -row["lifetime_years"])
    return rows
