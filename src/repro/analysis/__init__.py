"""Analysis helpers: battery-lifetime impact of update strategies."""

from .availability import AvailabilityImpact, ReportingService, assess
from .battery import (
    BatteryModel,
    UpdatePlan,
    compare_plans,
    lifetime_years,
    updates_per_percent,
)

__all__ = [
    "AvailabilityImpact",
    "BatteryModel",
    "ReportingService",
    "UpdatePlan",
    "assess",
    "compare_plans",
    "lifetime_years",
    "updates_per_percent",
]
