"""Service-availability impact of updates.

"Rebooting the device causes its temporary disconnection from the
network" (Sect. II) — the paper's second efficiency axis besides
energy.  This module quantifies it: a periodically-reporting device is
*unavailable* while it reboots and loads (the device is down) and its
reports are *delayed* while the radio is busy receiving an update.

UpKit's architectural wins map directly onto these numbers: early
rejection avoids unnecessary downtime entirely, and A/B loading
shrinks the reboot outage by an order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import UpdateOutcome

__all__ = ["ReportingService", "AvailabilityImpact", "assess"]


@dataclass(frozen=True)
class ReportingService:
    """A sensing application reporting every ``period_seconds``."""

    period_seconds: float = 60.0
    name: str = "telemetry"

    def __post_init__(self) -> None:
        if self.period_seconds <= 0:
            raise ValueError("reporting period must be positive")


@dataclass(frozen=True)
class AvailabilityImpact:
    """What one update did to the service."""

    downtime_seconds: float       # device offline (reboot + loading)
    degraded_seconds: float       # radio busy with the update
    missed_reports: int           # reports lost during downtime
    delayed_reports: int          # reports late during degradation

    @property
    def total_disruption_seconds(self) -> float:
        return self.downtime_seconds + self.degraded_seconds


def assess(outcome: UpdateOutcome,
           service: ReportingService) -> AvailabilityImpact:
    """Availability impact of one update attempt on a service."""
    downtime = outcome.phases.get("loading", 0.0) if outcome.rebooted \
        else 0.0
    degraded = outcome.phases.get("propagation", 0.0) \
        + outcome.phases.get("verification", 0.0)
    missed = int(downtime // service.period_seconds)
    delayed = int(degraded // service.period_seconds)
    return AvailabilityImpact(
        downtime_seconds=downtime,
        degraded_seconds=degraded,
        missed_reports=missed,
        delayed_reports=delayed,
    )
