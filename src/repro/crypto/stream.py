"""Stream cipher for the optional pipeline decryption stage.

The paper lists a decryption pipeline stage as future work, "to make
confidentiality independent from the employed transport security layer"
(Sect. VIII).  We implement it as a counter-mode keystream built on the
local SHA-256 — the construction used by several constrained-device
stacks when an AES peripheral is unavailable.  CTR mode means encryption
and decryption are the same operation and the cipher is seekable, which
the streaming pipeline needs (chunks arrive in order but the stage must
be restartable after ``reset``).
"""

from __future__ import annotations

from .rfc6979 import hmac_sha256

__all__ = ["StreamCipher"]

_BLOCK = 32  # HMAC-SHA256 output size


class StreamCipher:
    """HMAC-SHA256-CTR keystream cipher (encrypt == decrypt)."""

    def __init__(self, key: bytes, nonce: bytes) -> None:
        if len(key) < 16:
            raise ValueError("cipher key must be at least 16 bytes")
        if len(nonce) != 16:
            raise ValueError("cipher nonce must be exactly 16 bytes")
        self._key = bytes(key)
        self._nonce = bytes(nonce)
        self._counter = 0
        self._leftover = b""

    def reset(self) -> None:
        """Rewind the keystream to position zero."""
        self._counter = 0
        self._leftover = b""

    def process(self, data: bytes) -> bytes:
        """XOR ``data`` with the next keystream bytes."""
        out = bytearray(len(data))
        pos = 0
        while pos < len(data):
            if not self._leftover:
                block_input = self._nonce + self._counter.to_bytes(16, "big")
                self._leftover = hmac_sha256(self._key, block_input)
                self._counter += 1
            take = min(len(self._leftover), len(data) - pos)
            for i in range(take):
                out[pos + i] = data[pos + i] ^ self._leftover[i]
            self._leftover = self._leftover[take:]
            pos += take
        return bytes(out)

    def seek_block(self, counter: int) -> None:
        """Jump to an absolute keystream block (for out-of-order testing)."""
        if counter < 0:
            raise ValueError("counter must be non-negative")
        self._counter = counter
        self._leftover = b""

    def derive(self, context: bytes) -> "StreamCipher":
        """A fresh cipher whose nonce is bound to ``context``.

        CTR keystreams must never repeat under one key; the update
        server derives a per-request cipher from the device token so
        two images encrypted for different requests never share a
        keystream (a classic two-time-pad failure otherwise).
        """
        nonce = hmac_sha256(self._key,
                            b"upkit-nonce-derive" + self._nonce
                            + context)[:16]
        return StreamCipher(self._key, nonce)
