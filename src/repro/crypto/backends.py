"""Cryptographic-library backends with per-library cost profiles.

The paper ports UpKit across TinyDTLS, tinycrypt and CryptoAuthLib
(Sect. V) because constrained platforms ship heterogeneous crypto
implementations.  All three expose the same operations — SHA-256 and
ECDSA-secp256r1 verification — but differ in flash/RAM footprint and in
where verification executes (software vs. the ATECC508 HSM).

In this reproduction every backend performs *real* ECDSA verification
via :mod:`repro.crypto.ecdsa`; the profiles only add the modeled flash /
RAM cost (consumed by :mod:`repro.footprint`) and the modeled latency
and current draw (consumed by :mod:`repro.sim.energy`).  Footprint
constants are calibrated against Table I of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .ecdsa import PublicKey, Signature
from .engine import get_engine
from .hsm import ATECC508, HSMError

__all__ = [
    "CryptoProfile",
    "CryptoBackend",
    "SoftwareBackend",
    "HSMBackend",
    "TINYDTLS",
    "TINYCRYPT",
    "CRYPTOAUTHLIB",
    "get_backend",
    "available_backends",
]


@dataclass(frozen=True)
class CryptoProfile:
    """Static cost model for one cryptographic library.

    ``flash_bytes``/``ram_bytes`` are the library's contribution to a
    build that links SHA-256 + ECDSA-verify (the verifier's needs).
    ``verify_seconds`` is the single secp256r1 verification latency on a
    Cortex-M4-class MCU; ``hash_bytes_per_second`` the SHA-256 through-
    put; ``verify_current_ma`` the average current while verifying.
    """

    name: str
    flash_bytes: int
    ram_bytes: int
    verify_seconds: float
    hash_bytes_per_second: float
    verify_current_ma: float
    hardware: bool = False


# Library contributions calibrated so bootloader builds reproduce Table I:
# TinyDTLS builds are ~1.1 kB smaller in flash than tinycrypt builds, and
# the CryptoAuthLib build (verification offloaded to the ATECC508) is ~10%
# smaller than Contiki+TinyDTLS.
TINYDTLS = CryptoProfile(
    name="tinydtls",
    flash_bytes=9650,
    ram_bytes=1680,
    verify_seconds=0.540,
    hash_bytes_per_second=1_450_000.0,
    verify_current_ma=6.1,
)

TINYCRYPT = CryptoProfile(
    name="tinycrypt",
    flash_bytes=10762,
    ram_bytes=1680,
    verify_seconds=0.505,
    hash_bytes_per_second=1_530_000.0,
    verify_current_ma=6.1,
)

CRYPTOAUTHLIB = CryptoProfile(
    name="cryptoauthlib",
    flash_bytes=8274,
    ram_bytes=1596,
    verify_seconds=0.058,  # ATECC508 hardware verify, per datasheet
    hash_bytes_per_second=1_450_000.0,  # hashing still happens on the MCU
    verify_current_ma=4.8,
    hardware=True,
)

_PROFILES: Dict[str, CryptoProfile] = {
    TINYDTLS.name: TINYDTLS,
    TINYCRYPT.name: TINYCRYPT,
    CRYPTOAUTHLIB.name: CRYPTOAUTHLIB,
}


class CryptoBackend:
    """Common interface of UpKit's security abstraction (Fig. 3).

    Both the update agent and the bootloader link exactly one backend;
    UpKit shares it with the main application to keep footprint low.
    """

    def __init__(self, profile: CryptoProfile) -> None:
        self.profile = profile
        self._hash_bytes = 0
        self._verify_count = 0

    # -- operations ------------------------------------------------------

    def new_hash(self):
        """A fresh SHA-256 hasher from the active engine.

        The modeled cost (``hash_bytes_per_second`` etc.) is metered by
        :meth:`track_hashed` regardless of which engine computes the
        digest, so swapping engines never changes simulation results.
        """
        return get_engine().new_hash()

    def digest(self, data: bytes) -> bytes:
        self._hash_bytes += len(data)
        return get_engine().sha256(data)

    def track_hashed(self, nbytes: int) -> None:
        """Record incrementally-hashed bytes for the cost model."""
        self._hash_bytes += nbytes

    def verify(self, public_key: PublicKey, signature: Signature,
               message: bytes) -> bool:
        self._hash_bytes += len(message)
        self._verify_count += 1
        return self._verify(public_key, signature, message)

    def verify_digest(self, public_key: PublicKey, signature: Signature,
                      digest: bytes) -> bool:
        self._verify_count += 1
        return self._verify_digest(public_key, signature, digest)

    def _verify(self, public_key: PublicKey, signature: Signature,
                message: bytes) -> bool:
        raise NotImplementedError

    def _verify_digest(self, public_key: PublicKey, signature: Signature,
                       digest: bytes) -> bool:
        raise NotImplementedError

    # -- cost accounting ------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Modeled time spent in crypto since construction/reset."""
        hashing = self._hash_bytes / self.profile.hash_bytes_per_second
        verifying = self._verify_count * self.profile.verify_seconds
        return hashing + verifying

    def reset_counters(self) -> None:
        self._hash_bytes = 0
        self._verify_count = 0

    @property
    def verify_count(self) -> int:
        return self._verify_count


class SoftwareBackend(CryptoBackend):
    """Software verification (TinyDTLS / tinycrypt flavours)."""

    def _verify(self, public_key, signature, message):
        return public_key.verify(signature, message)

    def _verify_digest(self, public_key, signature, digest):
        return public_key.verify_digest(signature, digest)


class HSMBackend(CryptoBackend):
    """CryptoAuthLib backend delegating verification to an ATECC508.

    Public keys live in the HSM's locked data slots, so a compromised
    firmware cannot substitute them — the property the paper buys by
    pairing the CC2650 with the ATECC508.
    """

    def __init__(self, profile: CryptoProfile = CRYPTOAUTHLIB,
                 hsm: Optional[ATECC508] = None) -> None:
        super().__init__(profile)
        self.hsm = hsm if hsm is not None else ATECC508()

    def provision_key(self, slot: int, public_key: PublicKey,
                      lock: bool = True) -> None:
        self.hsm.write_pubkey(slot, public_key)
        if lock:
            self.hsm.lock_slot(slot)

    def _verify(self, public_key, signature, message):
        digest = self.digest(message)
        return self._verify_digest(public_key, signature, digest)

    def _verify_digest(self, public_key, signature, digest):
        try:
            return self.hsm.verify_stored(public_key.fingerprint(),
                                          signature, digest)
        except HSMError:
            # Key not provisioned in the HSM: fall back to verifying the
            # caller-supplied key material, as CryptoAuthLib's
            # verify-external mode does.
            return self.hsm.verify_external(public_key, signature, digest)


def get_backend(name: str, hsm: Optional[ATECC508] = None) -> CryptoBackend:
    """Instantiate a backend by library name (case-insensitive)."""
    profile = _PROFILES.get(name.lower())
    if profile is None:
        raise KeyError(
            "unknown crypto library %r (have: %s)"
            % (name, ", ".join(sorted(_PROFILES)))
        )
    if profile.hardware:
        return HSMBackend(profile, hsm=hsm)
    return SoftwareBackend(profile)


def available_backends() -> Dict[str, CryptoProfile]:
    return dict(_PROFILES)
