"""NIST P-256 (secp256r1) elliptic-curve arithmetic.

UpKit performs ECDSA signature verification over the secp256r1 curve with
SHA-256 digests (Sect. V of the paper).  This module implements the curve
group from scratch: affine points for the public API and Jacobian
coordinates internally for speed, since the pure-Python field inversions
dominate the cost otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["P256", "Point", "CurveError", "FixedWindowTable"]


class CurveError(ValueError):
    """Raised when a point is not on the curve or encoding is invalid."""


# secp256r1 domain parameters (SEC 2, version 2.0)
_P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
_A = _P - 3
_B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
_N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
_GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
_GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5


@dataclass(frozen=True)
class Point:
    """Affine curve point; ``None`` coordinates encode the identity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def encode(self) -> bytes:
        """Uncompressed SEC1 encoding (0x04 || X || Y)."""
        if self.is_infinity:
            raise CurveError("cannot encode the point at infinity")
        return b"\x04" + self.x.to_bytes(32, "big") + self.y.to_bytes(32, "big")


INFINITY = Point(None, None)


class _P256:
    """The secp256r1 group: point validation, addition, scalar multiply."""

    p = _P
    a = _A
    b = _B
    n = _N
    key_bytes = 32

    @property
    def generator(self) -> Point:
        return Point(_GX, _GY)

    def contains(self, point: Point) -> bool:
        if point.is_infinity:
            return True
        x, y = point.x, point.y
        if not (0 <= x < _P and 0 <= y < _P):
            return False
        return (y * y - (x * x * x + _A * x + _B)) % _P == 0

    def decode(self, data: bytes) -> Point:
        """Parse an uncompressed SEC1 point and validate curve membership."""
        if len(data) != 65 or data[0] != 0x04:
            raise CurveError("expected 65-byte uncompressed SEC1 point")
        point = Point(
            int.from_bytes(data[1:33], "big"),
            int.from_bytes(data[33:65], "big"),
        )
        if not self.contains(point) or point.is_infinity:
            raise CurveError("point is not on secp256r1")
        return point

    # -- group law -------------------------------------------------------

    def add(self, lhs: Point, rhs: Point) -> Point:
        return self._to_affine(
            self._jacobian_add(self._to_jacobian(lhs), self._to_jacobian(rhs))
        )

    def multiply(self, k: int, point: Point) -> Point:
        """Scalar multiplication k*point (left-to-right double-and-add)."""
        if point.is_infinity or k % _N == 0:
            return INFINITY
        k %= _N
        result = (0, 0, 0)  # Jacobian identity (Z == 0)
        addend = self._to_jacobian(point)
        while k:
            if k & 1:
                result = self._jacobian_add(result, addend)
            addend = self._jacobian_double(addend)
            k >>= 1
        return self._to_affine(result)

    def multiply_base(self, k: int) -> Point:
        return self.multiply(k, self.generator)

    def double_multiply(self, u1: int, u2: int, point: Point) -> Point:
        """u1*G + u2*point — the hot operation of ECDSA verification.

        Uses Shamir's trick (interleaved double-and-add) so verification
        costs roughly one scalar multiplication instead of two.
        """
        u1 %= _N
        u2 %= _N
        jg = self._to_jacobian(self.generator)
        jp = self._to_jacobian(point)
        jsum = self._jacobian_add(jg, jp)
        result = (0, 0, 0)
        for bit in range(max(u1.bit_length(), u2.bit_length()) - 1, -1, -1):
            result = self._jacobian_double(result)
            b1 = (u1 >> bit) & 1
            b2 = (u2 >> bit) & 1
            if b1 and b2:
                result = self._jacobian_add(result, jsum)
            elif b1:
                result = self._jacobian_add(result, jg)
            elif b2:
                result = self._jacobian_add(result, jp)
        return self._to_affine(result)

    # -- Jacobian internals ---------------------------------------------

    @staticmethod
    def _to_jacobian(point: Point) -> Tuple[int, int, int]:
        if point.is_infinity:
            return (0, 0, 0)
        return (point.x, point.y, 1)

    @staticmethod
    def _to_affine(jac: Tuple[int, int, int]) -> Point:
        x, y, z = jac
        if z == 0:
            return INFINITY
        z_inv = pow(z, _P - 2, _P)
        z_inv2 = (z_inv * z_inv) % _P
        return Point((x * z_inv2) % _P, (y * z_inv2 * z_inv) % _P)

    @staticmethod
    def _jacobian_double(jac: Tuple[int, int, int]) -> Tuple[int, int, int]:
        x, y, z = jac
        if z == 0 or y == 0:
            return (0, 0, 0)
        # dbl-2001-b formulas specialised for a = -3
        delta = (z * z) % _P
        gamma = (y * y) % _P
        beta = (x * gamma) % _P
        alpha = (3 * (x - delta) * (x + delta)) % _P
        x3 = (alpha * alpha - 8 * beta) % _P
        z3 = ((y + z) * (y + z) - gamma - delta) % _P
        y3 = (alpha * (4 * beta - x3) - 8 * gamma * gamma) % _P
        return (x3, y3, z3)

    def _jacobian_add_affine(
        self, lhs: Tuple[int, int, int], x2: int, y2: int
    ) -> Tuple[int, int, int]:
        """Mixed addition lhs + (x2, y2, 1); saves the z2 field products.

        The fixed-window tables store their precomputed multiples in
        affine form precisely so that every table lookup lands on this
        cheaper formula (madd-2007-bl specialised for z2 = 1).
        """
        x1, y1, z1 = lhs
        if z1 == 0:
            return (x2, y2, 1)
        z1z1 = (z1 * z1) % _P
        u2 = (x2 * z1z1) % _P
        s2 = (y2 * z1 * z1z1) % _P
        if x1 == u2:
            if y1 != s2:
                return (0, 0, 0)
            return self._jacobian_double(lhs)
        h = (u2 - x1) % _P
        i = (4 * h * h) % _P
        j = (h * i) % _P
        r = (2 * (s2 - y1)) % _P
        v = (x1 * i) % _P
        x3 = (r * r - j - 2 * v) % _P
        y3 = (r * (v - x3) - 2 * y1 * j) % _P
        z3 = (((z1 + h) * (z1 + h) - z1z1 - h * h)) % _P
        return (x3, y3, z3)

    def _jacobian_add(
        self, lhs: Tuple[int, int, int], rhs: Tuple[int, int, int]
    ) -> Tuple[int, int, int]:
        x1, y1, z1 = lhs
        x2, y2, z2 = rhs
        if z1 == 0:
            return rhs
        if z2 == 0:
            return lhs
        z1z1 = (z1 * z1) % _P
        z2z2 = (z2 * z2) % _P
        u1 = (x1 * z2z2) % _P
        u2 = (x2 * z1z1) % _P
        s1 = (y1 * z2 * z2z2) % _P
        s2 = (y2 * z1 * z1z1) % _P
        if u1 == u2:
            if s1 != s2:
                return (0, 0, 0)
            return self._jacobian_double(lhs)
        h = (u2 - u1) % _P
        i = (4 * h * h) % _P
        j = (h * i) % _P
        r = (2 * (s2 - s1)) % _P
        v = (u1 * i) % _P
        x3 = (r * r - j - 2 * v) % _P
        y3 = (r * (v - x3) - 2 * s1 * j) % _P
        z3 = (((z1 + z2) * (z1 + z2) - z1z1 - z2z2) * h) % _P
        return (x3, y3, z3)


P256 = _P256()


def _batch_to_affine(
    jacs: Sequence[Tuple[int, int, int]]
) -> List[Tuple[int, int]]:
    """Normalise many Jacobian points with one field inversion.

    Montgomery's trick: invert the product of all z coordinates once,
    then peel per-point inverses off with multiplications.  Building a
    fixed-window table needs ~1000 normalisations; doing them naively
    would cost ~1000 exponentiations mod p.
    """
    zs = [z for (_, _, z) in jacs]
    prefix = [1] * (len(zs) + 1)
    for i, z in enumerate(zs):
        prefix[i + 1] = (prefix[i] * z) % _P
    inv_all = pow(prefix[-1], _P - 2, _P)
    affine: List[Tuple[int, int]] = [(0, 0)] * len(jacs)
    for i in range(len(jacs) - 1, -1, -1):
        x, y, z = jacs[i]
        z_inv = (inv_all * prefix[i]) % _P
        inv_all = (inv_all * z) % _P
        z_inv2 = (z_inv * z_inv) % _P
        affine[i] = ((x * z_inv2) % _P, (y * z_inv2 * z_inv) % _P)
    return affine


class FixedWindowTable:
    """Precomputed fixed-window multiples of one curve point.

    Stores ``d * 16**i * P`` for every window ``i`` (0..63) and digit
    ``d`` (1..15) in *affine* form, so a scalar multiplication becomes
    at most 64 cheap mixed additions and zero doublings — the classic
    comb/fixed-window trade of memory for the verify hot path.  The
    table costs ~1150 group operations to build, so it only pays off
    for points that are multiplied repeatedly (the base point, and the
    vendor / update-server public keys every device verifies against).
    """

    WINDOW_BITS = 4
    _WINDOWS = 64   # 256 bits / 4
    _DIGITS = 15    # non-zero 4-bit digits

    def __init__(self, point: Point) -> None:
        if point.is_infinity:
            raise CurveError("cannot build a window table for infinity")
        self.point = point
        curve = P256
        jacs: List[Tuple[int, int, int]] = []
        base = curve._to_jacobian(point)
        for _ in range(self._WINDOWS):
            acc = base
            jacs.append(acc)
            for _ in range(2, self._DIGITS + 1):
                acc = curve._jacobian_add(acc, base)
                jacs.append(acc)
            for _ in range(self.WINDOW_BITS):
                base = curve._jacobian_double(base)
        flat = _batch_to_affine(jacs)
        # rows[i][d-1] = d * 16**i * P in affine form
        self._rows = [
            flat[i * self._DIGITS:(i + 1) * self._DIGITS]
            for i in range(self._WINDOWS)
        ]

    def multiply_jacobian(self, k: int) -> Tuple[int, int, int]:
        """k * P as a Jacobian triple (identity encoded as z == 0)."""
        k %= _N
        acc = (0, 0, 0)
        add_affine = P256._jacobian_add_affine
        rows = self._rows
        window = 0
        while k:
            digit = k & 0x0F
            if digit:
                x2, y2 = rows[window][digit - 1]
                acc = add_affine(acc, x2, y2)
            k >>= 4
            window += 1
        return acc

    def multiply(self, k: int) -> Point:
        return P256._to_affine(self.multiply_jacobian(k))

    def combined_multiply(self, u1: int, other: "FixedWindowTable",
                          u2: int) -> Point:
        """u1 * self.point + u2 * other.point — table-only ECDSA verify."""
        jsum = P256._jacobian_add(self.multiply_jacobian(u1),
                                  other.multiply_jacobian(u2))
        return P256._to_affine(jsum)
