"""Pluggable crypto acceleration: the reference/fast engine switch.

The from-scratch SHA-256 and P-256 implementations exist so the
reproduction carries its own substrate — but they make fleet-scale
simulation (thousands of double-signed updates) minutes-slow for no
modeling benefit: the *cost models* in :mod:`repro.crypto.backends`
are what the simulation accounts, not the host CPU time.  This module
provides two interchangeable engines behind one dispatch point:

* ``reference`` (default) — the from-scratch SHA-256 and the plain
  Shamir-trick ECDSA verify.  Bit-for-bit the seed behaviour.
* ``fast`` — ``hashlib`` SHA-256/HMAC, fixed-window precomputed
  base-point tables plus a bounded per-public-key table cache for
  scalar multiplication (:class:`repro.crypto.ecc.FixedWindowTable`),
  and a bounded LRU *verification cache* keyed by
  ``(pubkey, digest, r, s)`` so the bootloader's re-verification of an
  image the agent already verified is near-free.

Both engines produce identical bytes for every operation (digests,
signatures, verify verdicts); the parity tests in
``tests/test_crypto_engine.py`` enforce this.  Select with::

    from repro.crypto import set_engine
    set_engine("fast")        # or "reference"

or via the ``REPRO_CRYPTO_ENGINE`` environment variable.  The modeled
footprint / latency / energy numbers are engine-independent: backends
meter *modeled* cost per operation, never host wall-clock.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .ecc import FixedWindowTable, P256, Point
from .sha256 import SHA256

__all__ = [
    "CryptoEngine",
    "ReferenceEngine",
    "FastEngine",
    "ContentVerifyCache",
    "ContentCacheStats",
    "SignatureCache",
    "SignatureCacheStats",
    "available_engines",
    "get_engine",
    "set_engine",
    "use_engine",
]

_HMAC_BLOCK = 64


@dataclass
class EngineStats:
    """Counters for benchmarks and cache-behaviour tests.

    ``repro.obs.bind_engine`` mirrors every field into ``crypto.*``
    gauges on a metrics registry, so the verify-cache hit rate shows up
    next to the rest of an update's telemetry.
    """

    verify_calls: int = 0
    verify_cache_hits: int = 0
    key_tables_built: int = 0
    key_tables_evicted: int = 0

    def reset(self) -> None:
        self.verify_calls = 0
        self.verify_cache_hits = 0
        self.key_tables_built = 0
        self.key_tables_evicted = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready snapshot (embedded in bench reports)."""
        return {
            "verify_calls": self.verify_calls,
            "verify_cache_hits": self.verify_cache_hits,
            "key_tables_built": self.key_tables_built,
            "key_tables_evicted": self.key_tables_evicted,
        }

    def diff(self, baseline: "EngineStats") -> "EngineStats":
        """Field-wise ``self - baseline`` (a worker's contribution)."""
        return EngineStats(
            verify_calls=self.verify_calls - baseline.verify_calls,
            verify_cache_hits=(self.verify_cache_hits
                               - baseline.verify_cache_hits),
            key_tables_built=(self.key_tables_built
                              - baseline.key_tables_built),
            key_tables_evicted=(self.key_tables_evicted
                                - baseline.key_tables_evicted),
        )


@dataclass
class ContentCacheStats:
    """Hit/miss counters for the shared content-verify LRU.

    Kept separate from :class:`EngineStats` so the per-signature
    verification counters (and every artifact that embeds them) stay
    byte-stable across PRs.
    """

    hits: int = 0
    misses: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


class ContentVerifyCache:
    """Shared verify-LRU keyed by ``(public key, content digest)``.

    The per-signature verification cache (:class:`FastEngine`'s
    ``(pubkey, r, s, digest)`` LRU) answers "have I verified *this
    signature* before".  Fleet campaigns need the coarser question:
    "has *this content* already been verified under *this key*" —
    e.g. the vendor signature over a release's canonical manifest,
    which is identical for every device in a wave.  Because signing is
    deterministic (RFC 6979), a (key, digest) pair maps to exactly one
    valid signature, so memoising the verdict by content is sound: the
    first device in a wave pays the scalar math, the other 999,999 hit
    this cache.

    Lock-protected like the engine's own caches — the thread-pool wave
    executor calls in concurrently.  Only ``True`` verdicts are
    cached: a failed verification is never served from memory, so a
    tampered signature cannot hide behind an earlier honest one.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = ContentCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, bool]" = OrderedDict()

    def verify(self, engine: "CryptoEngine", point: Point, r: int, s: int,
               digest: bytes) -> bool:
        key = (point.x, point.y, bytes(digest))
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return True
        ok = engine.ecdsa_verify(point, r, s, digest)
        with self._lock:
            self.stats.misses += 1
            if ok:
                self._entries[key] = True
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        return ok

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> ContentCacheStats:
        with self._lock:
            return ContentCacheStats(**self.stats.to_dict())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.reset()


@dataclass
class SignatureCacheStats:
    """Exact hit/miss/coalesce accounting for the signing memo.

    The invariant the perf_smoke suite audits: every ``get_or_sign``
    call is counted exactly once as a hit or a miss, and every hit that
    waited on an in-flight producer is additionally counted as
    coalesced — so ``hits + misses == calls`` and ``misses`` equals the
    number of producer executions, even under signer-pool contention.
    """

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
        }


class SignatureCache:
    """Single-flight memo for deterministic (RFC 6979) signatures.

    Signing is deterministic, so ``(private key, digest)`` maps to
    exactly one signature — memoising the bytes is sound the same way
    the :class:`ContentVerifyCache` verdict memo is.  The serve plane's
    signer pool shares one instance across its worker threads: when a
    wave of devices resolves manifests for the same release payload,
    the first worker pays the scalar multiplication and every
    concurrent duplicate *waits on the in-flight result* instead of
    re-deriving the nonce — the accounting distinguishes those
    coalesced waiters from plain cache hits.

    A failed producer never poisons the cache: its waiters wake, see no
    entry, and re-run the producer themselves.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = SignatureCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, bytes]" = OrderedDict()
        self._inflight: Dict[tuple, threading.Event] = {}

    def get_or_sign(self, key: tuple, producer) -> bytes:
        """Return the cached signature for ``key`` or produce it once.

        Concurrent callers with the same key block on the producing
        thread's event rather than signing redundantly (single-flight).
        """
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return cached
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    producing = True
                else:
                    producing = False
            if not producing:
                event.wait(timeout=60.0)
                with self._lock:
                    cached = self._entries.get(key)
                    if cached is not None:
                        self._entries.move_to_end(key)
                        self.stats.hits += 1
                        self.stats.coalesced += 1
                        return cached
                # The producer failed (or the entry was evicted before we
                # woke); loop and contend for the producer role ourselves.
                continue
            try:
                value = producer()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()
                raise
            with self._lock:
                self._entries[key] = value
                self._inflight.pop(key, None)
                self.stats.misses += 1
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
            event.set()
            return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> SignatureCacheStats:
        with self._lock:
            return SignatureCacheStats(**self.stats.to_dict())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.reset()


class CryptoEngine:
    """Interface both engines implement.

    ``new_hash`` / ``sha256`` / ``hmac_sha256`` cover the digest
    surface; ``multiply_base`` and ``ecdsa_verify`` cover the curve
    surface.  Engines must be *byte-compatible*: swapping one for the
    other never changes any output, only host-side speed.
    """

    name = "abstract"

    def new_hash(self):
        """A fresh incremental SHA-256 hasher (hashlib-like interface)."""
        raise NotImplementedError

    def sha256(self, data: bytes) -> bytes:
        raise NotImplementedError

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        raise NotImplementedError

    def multiply_base(self, k: int) -> Point:
        """k * G on secp256r1."""
        raise NotImplementedError

    def ecdsa_verify(self, point: Point, r: int, s: int,
                     digest: bytes) -> bool:
        """The scalar math of ECDSA verification (range checks done)."""
        raise NotImplementedError


def _verify_scalars(r: int, s: int, digest: bytes) -> Tuple[int, int]:
    n = P256.n
    e = int.from_bytes(digest, "big") % n
    w = pow(s, n - 2, n)
    return (e * w) % n, (r * w) % n


class ReferenceEngine(CryptoEngine):
    """The seed's from-scratch code paths, unchanged."""

    name = "reference"

    def new_hash(self) -> SHA256:
        return SHA256()

    def sha256(self, data: bytes) -> bytes:
        return SHA256(data).digest()

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        if len(key) > _HMAC_BLOCK:
            key = self.sha256(key)
        key = key.ljust(_HMAC_BLOCK, b"\x00")
        inner = SHA256(bytes(b ^ 0x36 for b in key)).update(message).digest()
        return SHA256(bytes(b ^ 0x5C for b in key)).update(inner).digest()

    def multiply_base(self, k: int) -> Point:
        return P256.multiply_base(k)

    def ecdsa_verify(self, point: Point, r: int, s: int,
                     digest: bytes) -> bool:
        u1, u2 = _verify_scalars(r, s, digest)
        result = P256.double_multiply(u1, u2, point)
        if result.is_infinity:
            return False
        return result.x % P256.n == r


class FastEngine(CryptoEngine):
    """hashlib digests + precomputed-table ECDSA + verification cache.

    * SHA-256 / HMAC-SHA256 go through ``hashlib`` (identical output).
    * ``k * G`` uses a lazily built fixed-window table for the base
      point, shared process-wide.
    * Verification builds a :class:`FixedWindowTable` per public key
      once the key has been seen ``table_threshold`` times (trust
      anchors are verified against thousands of times per campaign;
      one-shot keys never pay the table build).  Tables live in a
      bounded LRU.
    * Completed verifications land in a bounded LRU keyed by
      ``(pubkey, r, s, digest)``: UpKit's bootloader re-verifies the
      exact signatures the agent just verified, so the second pass is
      a dictionary lookup.

    All shared state is lock-protected — the parallel campaign
    executor calls into one engine from many threads.
    """

    name = "fast"

    def __init__(self, verify_cache_size: int = 4096,
                 key_table_cache_size: int = 32,
                 table_threshold: int = 2) -> None:
        if verify_cache_size < 1:
            raise ValueError("verify_cache_size must be positive")
        if key_table_cache_size < 1:
            raise ValueError("key_table_cache_size must be positive")
        self.verify_cache_size = verify_cache_size
        self.key_table_cache_size = key_table_cache_size
        self.table_threshold = max(1, table_threshold)
        self.stats = EngineStats()
        self._lock = threading.Lock()
        self._base_table: Optional[FixedWindowTable] = None
        self._key_tables: "OrderedDict[Tuple[int, int], FixedWindowTable]" \
            = OrderedDict()
        self._key_uses: Dict[Tuple[int, int], int] = {}
        self._verify_cache: "OrderedDict[tuple, bool]" = OrderedDict()
        #: Shared (key, digest) verify memo for fleet-scale campaigns.
        self.content_cache = ContentVerifyCache()

    # -- digests ----------------------------------------------------------

    def new_hash(self):
        return hashlib.sha256()

    def sha256(self, data: bytes) -> bytes:
        return hashlib.sha256(data).digest()

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        return _hmac.new(bytes(key), bytes(message), hashlib.sha256).digest()

    # -- curve ------------------------------------------------------------

    def multiply_base(self, k: int) -> Point:
        return self._generator_table().multiply(k)

    def ecdsa_verify(self, point: Point, r: int, s: int,
                     digest: bytes) -> bool:
        cache_key = (point.x, point.y, r, s, digest)
        with self._lock:
            self.stats.verify_calls += 1
            cached = self._verify_cache.get(cache_key)
            if cached is not None:
                self._verify_cache.move_to_end(cache_key)
                self.stats.verify_cache_hits += 1
                return cached
        u1, u2 = _verify_scalars(r, s, digest)
        key_table = self._table_for(point)
        if key_table is not None:
            result = self._generator_table().combined_multiply(
                u1, key_table, u2)
        else:
            result = P256.double_multiply(u1, u2, point)
        ok = (not result.is_infinity) and result.x % P256.n == r
        with self._lock:
            self._verify_cache[cache_key] = ok
            while len(self._verify_cache) > self.verify_cache_size:
                self._verify_cache.popitem(last=False)
        return ok

    def verify_content(self, point: Point, r: int, s: int,
                       digest: bytes) -> bool:
        """Verify through the shared (key, digest) content cache.

        Used by the columnar fleet path where every device in a wave
        verifies the same vendor signature over the same canonical
        manifest digest: the first call does the scalar math (still
        counted in :class:`EngineStats` and eligible for the signature
        LRU), repeats return from the content memo without touching
        the curve at all.
        """
        return self.content_cache.verify(self, point, r, s, digest)

    # -- table management -------------------------------------------------

    def _generator_table(self) -> FixedWindowTable:
        table = self._base_table
        if table is None:
            with self._lock:
                if self._base_table is None:
                    self._base_table = FixedWindowTable(P256.generator)
                table = self._base_table
        return table

    def _table_for(self, point: Point) -> Optional[FixedWindowTable]:
        key = (point.x, point.y)
        with self._lock:
            table = self._key_tables.get(key)
            if table is not None:
                self._key_tables.move_to_end(key)
                return table
            uses = self._key_uses.get(key, 0) + 1
            self._key_uses[key] = uses
            if uses < self.table_threshold:
                return None
        built = FixedWindowTable(point)
        with self._lock:
            # Another thread may have raced us to it; last write wins,
            # both tables are identical.
            self._key_tables[key] = built
            self._key_uses.pop(key, None)
            self.stats.key_tables_built += 1
            while len(self._key_tables) > self.key_table_cache_size:
                self._key_tables.popitem(last=False)
                self.stats.key_tables_evicted += 1
        return built

    def stats_snapshot(self) -> EngineStats:
        """A consistent copy of the counters, taken under the lock.

        Reading ``engine.stats`` field by field from another thread can
        tear across a concurrent verify; the snapshot cannot.
        """
        with self._lock:
            return EngineStats(**self.stats.to_dict())

    def merge_stats(self, delta: EngineStats) -> None:
        """Fold a process-pool worker's counter deltas into this engine.

        Worker processes run on forked engine copies; their hit/miss
        counts would otherwise vanish with the worker.  Taken under the
        same lock that guards the hot-path increments, so totals stay
        exact under concurrent merges.
        """
        with self._lock:
            self.stats.verify_calls += delta.verify_calls
            self.stats.verify_cache_hits += delta.verify_cache_hits
            self.stats.key_tables_built += delta.key_tables_built
            self.stats.key_tables_evicted += delta.key_tables_evicted

    def clear_caches(self) -> None:
        """Drop every cache and table (cold-start benchmarking)."""
        with self._lock:
            self._base_table = None
            self._key_tables.clear()
            self._key_uses.clear()
            self._verify_cache.clear()
            self.stats.reset()
        self.content_cache.clear()


_ENGINES: Dict[str, CryptoEngine] = {
    "reference": ReferenceEngine(),
    "fast": FastEngine(),
}

_current: CryptoEngine = _ENGINES.get(
    os.environ.get("REPRO_CRYPTO_ENGINE", "reference").lower(),
    _ENGINES["reference"],
)


def available_engines() -> Dict[str, CryptoEngine]:
    return dict(_ENGINES)


def get_engine() -> CryptoEngine:
    """The engine all crypto entry points currently dispatch through."""
    return _current


def set_engine(name: str) -> CryptoEngine:
    """Select the active engine by name ("reference" or "fast")."""
    global _current
    engine = _ENGINES.get(name.lower())
    if engine is None:
        raise KeyError(
            "unknown crypto engine %r (have: %s)"
            % (name, ", ".join(sorted(_ENGINES)))
        )
    _current = engine
    return engine


@contextmanager
def use_engine(name: str):
    """Temporarily switch engines (restores the previous on exit)."""
    previous = get_engine()
    engine = set_engine(name)
    try:
        yield engine
    finally:
        global _current
        _current = previous
