"""Deterministic ECDSA nonce generation (RFC 6979) and HMAC-SHA256.

Constrained devices rarely have a good entropy source, and a repeated or
biased ECDSA nonce leaks the private key.  The paper's signing tooling
runs on the vendor / update server, but we keep signatures deterministic
so update images are reproducible byte-for-byte — a property the test
suite and the differential-update benchmarks rely on.
"""

from __future__ import annotations

from typing import Optional

from .engine import CryptoEngine, get_engine

__all__ = ["hmac_sha256", "deterministic_nonce"]


def hmac_sha256(key: bytes, message: bytes,
                engine: Optional[CryptoEngine] = None) -> bytes:
    """HMAC-SHA256 (RFC 2104), via the active crypto engine.

    The reference engine keeps the original construction over the local
    SHA-256; the fast engine delegates to :mod:`hmac`/:mod:`hashlib`.
    Output is identical either way.  Passing ``engine`` pins a specific
    engine instead of the process-global one; worker threads use this to
    sign through a shared fast engine without flipping global state.
    """
    return (engine or get_engine()).hmac_sha256(key, message)


def _bits2int(data: bytes, qlen: int) -> int:
    value = int.from_bytes(data, "big")
    blen = len(data) * 8
    if blen > qlen:
        value >>= blen - qlen
    return value


def _int2octets(value: int, rlen: int) -> bytes:
    return value.to_bytes(rlen, "big")


def _bits2octets(data: bytes, order: int, qlen: int, rlen: int) -> bytes:
    z1 = _bits2int(data, qlen)
    z2 = z1 - order
    if z2 < 0:
        z2 = z1
    return _int2octets(z2, rlen)


def deterministic_nonce(private_key: int, digest: bytes, order: int,
                        engine: Optional[CryptoEngine] = None) -> int:
    """RFC 6979 section 3.2: derive k from the key and message digest."""
    qlen = order.bit_length()
    rlen = (qlen + 7) // 8
    bx = _int2octets(private_key, rlen) + _bits2octets(digest, order, qlen, rlen)

    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac_sha256(k, v + b"\x00" + bx, engine)
    v = hmac_sha256(k, v, engine)
    k = hmac_sha256(k, v + b"\x01" + bx, engine)
    v = hmac_sha256(k, v, engine)

    while True:
        t = b""
        while len(t) * 8 < qlen:
            v = hmac_sha256(k, v, engine)
            t += v
        candidate = _bits2int(t, qlen)
        if 1 <= candidate < order:
            return candidate
        k = hmac_sha256(k, v + b"\x00", engine)
        v = hmac_sha256(k, v, engine)
