"""Cryptographic substrate: SHA-256, ECDSA-secp256r1, backends, HSM.

UpKit verifies firmware with ECDSA over secp256r1 and SHA-256 digests,
implemented here from scratch (no third-party crypto dependency) so the
reproduction is self-contained and the per-library cost model in
:mod:`repro.crypto.backends` wraps a real code path.
"""

from .backends import (
    CRYPTOAUTHLIB,
    TINYCRYPT,
    TINYDTLS,
    CryptoBackend,
    CryptoProfile,
    HSMBackend,
    SoftwareBackend,
    available_backends,
    get_backend,
)
from .ecc import P256, CurveError, FixedWindowTable, Point
from .ecdsa import (
    PrivateKey,
    PublicKey,
    Signature,
    SignatureError,
    generate_keypair,
)
from .engine import (
    CryptoEngine,
    FastEngine,
    ReferenceEngine,
    available_engines,
    get_engine,
    set_engine,
    use_engine,
)
from .hsm import ATECC508, HSMError, KeyNotFoundError, SlotLockedError
from .rfc6979 import hmac_sha256
from .sha256 import SHA256, sha256
from .stream import StreamCipher

__all__ = [
    "ATECC508",
    "CRYPTOAUTHLIB",
    "CryptoBackend",
    "CryptoEngine",
    "CryptoProfile",
    "CurveError",
    "FastEngine",
    "FixedWindowTable",
    "HSMBackend",
    "HSMError",
    "KeyNotFoundError",
    "P256",
    "Point",
    "PrivateKey",
    "PublicKey",
    "ReferenceEngine",
    "SHA256",
    "Signature",
    "SignatureError",
    "SlotLockedError",
    "SoftwareBackend",
    "StreamCipher",
    "TINYCRYPT",
    "TINYDTLS",
    "available_backends",
    "available_engines",
    "generate_keypair",
    "get_backend",
    "get_engine",
    "hmac_sha256",
    "set_engine",
    "sha256",
    "use_engine",
]
