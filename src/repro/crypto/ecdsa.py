"""ECDSA over secp256r1 with SHA-256, as used by UpKit's verifier.

Key generation is deterministic from a seed (devices and servers in the
simulation derive their keys from stable identities), signing follows
RFC 6979, and signatures use the fixed-width 64-byte ``r || s`` encoding
that constrained verifiers prefer over DER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .ecc import P256, CurveError, Point
from .engine import CryptoEngine, get_engine
from .rfc6979 import deterministic_nonce, hmac_sha256

__all__ = [
    "PrivateKey",
    "PublicKey",
    "Signature",
    "SignatureError",
    "generate_keypair",
]

SIGNATURE_SIZE = 64


class SignatureError(ValueError):
    """Raised when a signature fails structural validation."""


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature as the scalar pair (r, s)."""

    r: int
    s: int

    def encode(self) -> bytes:
        """Fixed-width 64-byte big-endian r || s."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def decode(cls, data: bytes) -> "Signature":
        if len(data) != SIGNATURE_SIZE:
            raise SignatureError(
                "signature must be %d bytes, got %d" % (SIGNATURE_SIZE, len(data))
            )
        sig = cls(
            int.from_bytes(data[:32], "big"),
            int.from_bytes(data[32:], "big"),
        )
        if not (1 <= sig.r < P256.n and 1 <= sig.s < P256.n):
            raise SignatureError("signature scalars out of range")
        return sig


@dataclass(frozen=True)
class PublicKey:
    """A secp256r1 public key (curve point)."""

    point: Point

    def __post_init__(self) -> None:
        if self.point.is_infinity or not P256.contains(self.point):
            raise CurveError("public key is not a valid secp256r1 point")

    def encode(self) -> bytes:
        return self.point.encode()

    @classmethod
    def decode(cls, data: bytes) -> "PublicKey":
        return cls(P256.decode(data))

    def fingerprint(self) -> bytes:
        """SHA-256 of the encoded point; used as a key identifier."""
        return get_engine().sha256(self.encode())

    def verify(self, signature: Signature, message: bytes) -> bool:
        """Verify ``signature`` over SHA-256(message). Never raises on a
        well-formed signature; returns False for any invalid one."""
        return self.verify_digest(signature, get_engine().sha256(message))

    def verify_digest(self, signature: Signature, digest: bytes) -> bool:
        r, s = signature.r, signature.s
        if not (1 <= r < P256.n and 1 <= s < P256.n):
            return False
        return get_engine().ecdsa_verify(self.point, r, s, bytes(digest))


@dataclass(frozen=True)
class PrivateKey:
    """A secp256r1 private key (scalar in [1, n-1])."""

    scalar: int

    def __post_init__(self) -> None:
        if not (1 <= self.scalar < P256.n):
            raise SignatureError("private key scalar out of range")

    def public_key(self) -> PublicKey:
        return PublicKey(get_engine().multiply_base(self.scalar))

    def sign(self, message: bytes,
             engine: Optional[CryptoEngine] = None) -> Signature:
        """Deterministic (RFC 6979) ECDSA signature over SHA-256(message).

        ``engine`` pins a specific crypto engine for this signature (the
        signer pool signs through a shared fast engine this way); the
        default is the process-global engine.  Output bytes are identical
        either way — engine parity is contractual.
        """
        engine = engine or get_engine()
        return self.sign_digest(engine.sha256(message), engine)

    def sign_digest(self, digest: bytes,
                    engine: Optional[CryptoEngine] = None) -> Signature:
        engine = engine or get_engine()
        e = int.from_bytes(digest, "big") % P256.n
        while True:
            k = deterministic_nonce(self.scalar, digest, P256.n, engine)
            point = engine.multiply_base(k)
            r = point.x % P256.n
            if r == 0:
                digest = engine.sha256(digest)
                continue
            k_inv = pow(k, P256.n - 2, P256.n)
            s = (k_inv * (e + r * self.scalar)) % P256.n
            if s == 0:
                digest = engine.sha256(digest)
                continue
            # Enforce low-s normalisation so signatures are non-malleable.
            if s > P256.n // 2:
                s = P256.n - s
            return Signature(r, s)


def generate_keypair(seed: bytes) -> PrivateKey:
    """Derive a private key deterministically from ``seed``.

    Uses HMAC-SHA256 in counter mode until a scalar in range is found,
    so any seed (including low-entropy test fixtures) yields a valid key.
    """
    if not seed:
        raise SignatureError("key seed must be non-empty")
    counter = 0
    while True:
        candidate = int.from_bytes(
            hmac_sha256(b"upkit-keygen", seed + counter.to_bytes(4, "big")),
            "big",
        )
        if 1 <= candidate < P256.n:
            return PrivateKey(candidate)
        counter += 1
