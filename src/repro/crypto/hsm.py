"""Simulated ATECC508 hardware security module.

The paper pairs the TI CC2650 with Atmel's ATECC508 CryptoAuthentication
chip to (i) store public keys in tamper-proof slots and (ii) offload
ECDSA verification to hardware, shaving ~10% of bootloader flash.

The simulation reproduces the chip's security-relevant behaviour:

* 16 data slots addressed by index, each able to hold one P-256 public
  key;
* slots can be individually **locked**; a locked slot can never be
  rewritten (the real chip's slot-lock is one-time);
* verification against a *stored* key looks the key up by fingerprint,
  so a caller cannot substitute key material for a provisioned identity;
* an optional monotonic counter, which the real chip also provides.
"""

from __future__ import annotations

from typing import Dict, Optional

from .ecdsa import PublicKey, Signature

__all__ = ["ATECC508", "HSMError", "SlotLockedError", "KeyNotFoundError"]

SLOT_COUNT = 16


class HSMError(Exception):
    """Base class for HSM failures."""


class SlotLockedError(HSMError):
    """Attempt to write a locked slot."""


class KeyNotFoundError(HSMError):
    """No stored key matches the requested fingerprint/slot."""


class ATECC508:
    """A minimal but faithful model of the ATECC508's key storage."""

    def __init__(self) -> None:
        self._slots: Dict[int, PublicKey] = {}
        self._locked: Dict[int, bool] = {}
        self._counter = 0

    # -- provisioning -----------------------------------------------------

    def write_pubkey(self, slot: int, key: PublicKey) -> None:
        self._check_slot(slot)
        if self._locked.get(slot):
            raise SlotLockedError("slot %d is locked" % slot)
        self._slots[slot] = key

    def lock_slot(self, slot: int) -> None:
        self._check_slot(slot)
        if slot not in self._slots:
            raise KeyNotFoundError("cannot lock empty slot %d" % slot)
        self._locked[slot] = True

    def is_locked(self, slot: int) -> bool:
        self._check_slot(slot)
        return bool(self._locked.get(slot))

    def read_pubkey(self, slot: int) -> PublicKey:
        self._check_slot(slot)
        try:
            return self._slots[slot]
        except KeyError:
            raise KeyNotFoundError("slot %d is empty" % slot) from None

    # -- verification -----------------------------------------------------

    def verify_stored(self, fingerprint: bytes, signature: Signature,
                      digest: bytes) -> bool:
        """Verify against a provisioned key identified by fingerprint."""
        key = self._find_by_fingerprint(fingerprint)
        if key is None:
            raise KeyNotFoundError("no stored key with that fingerprint")
        return key.verify_digest(signature, digest)

    def verify_external(self, key: PublicKey, signature: Signature,
                        digest: bytes) -> bool:
        """Verify with caller-supplied key material (chip's Verify(External))."""
        return key.verify_digest(signature, digest)

    # -- monotonic counter -------------------------------------------------

    def increment_counter(self) -> int:
        self._counter += 1
        return self._counter

    @property
    def counter(self) -> int:
        return self._counter

    # -- helpers -----------------------------------------------------------

    def _find_by_fingerprint(self, fingerprint: bytes) -> Optional[PublicKey]:
        for key in self._slots.values():
            if key.fingerprint() == fingerprint:
                return key
        return None

    @staticmethod
    def _check_slot(slot: int) -> None:
        if not (0 <= slot < SLOT_COUNT):
            raise HSMError("slot index %d out of range [0, %d)"
                           % (slot, SLOT_COUNT))
