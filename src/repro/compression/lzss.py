"""LZSS compression, as used by UpKit's differential-update pipeline.

The paper (following Stolikj et al. [19]) picks lzss — an LZ77 variant —
for delta decompression on the device because it needs only a small
sliding window of RAM and a compact decoder.  The update server
compresses the bsdiff patch with LZSS; the device decompresses it
on-the-fly in the first pipeline stage.

Wire format (classic flag-byte framing):

* a *flag byte* announces the kinds of the next 8 items, LSB first:
  bit set → literal byte; bit clear → a back-reference into the
  sliding window;
* back-references pack a 12-bit offset (1-based distance) and a 4-bit
  length code into 2 bytes.  Length codes 0–14 encode matches of
  ``MIN_MATCH .. MIN_MATCH+14`` bytes; code 15 is an escape — one more
  byte follows and the match length is ``MIN_MATCH + 15 + ext``
  (up to 273 bytes).  The escape matters for bsdiff payloads, whose
  diff blocks are dominated by long zero runs.

:class:`LzssDecoder` is incremental because firmware chunks arrive from
the radio in pieces of arbitrary size.
"""

from __future__ import annotations

from typing import Dict, List

try:  # numpy accelerates the hash precompute; optional
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

__all__ = [
    "compress",
    "decompress",
    "LzssDecoder",
    "LzssError",
    "WINDOW_SIZE",
    "MIN_MATCH",
    "MAX_MATCH",
]

WINDOW_SIZE = 4096
MIN_MATCH = 3
_BASE_MAX = MIN_MATCH + 14        # largest length in the short form
MAX_MATCH = _BASE_MAX + 1 + 255   # escape form: 273 bytes


class LzssError(ValueError):
    """Raised on malformed LZSS streams."""


def compress(data: bytes) -> bytes:
    """Compress ``data``; greedy longest-match within the sliding window.

    A hash chain over 3-byte prefixes keeps compression roughly linear,
    which matters because the benchmarks compress 100 kB firmware images
    many times.
    """
    data = bytes(data)
    n = len(data)
    out = bytearray()
    # head[h] -> most recent position with prefix-hash h; prev -> chain
    head: Dict[int, int] = {}
    prev: List[int] = [-1] * n
    hashes = _hash3_all(data)

    pos = 0
    pending_flags = 0
    pending_count = 0
    pending_items = bytearray()

    def flush() -> None:
        nonlocal pending_flags, pending_count, pending_items
        if pending_count:
            out.append(pending_flags)
            out.extend(pending_items)
            pending_flags = 0
            pending_count = 0
            pending_items = bytearray()

    def insert(p: int) -> None:
        if p + MIN_MATCH <= n:
            h = hashes[p]
            prev[p] = head.get(h, -1)
            head[h] = p

    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + MIN_MATCH <= n:
            limit = max(0, pos - WINDOW_SIZE)
            candidate = head.get(hashes[pos], -1)
            max_here = min(MAX_MATCH, n - pos)
            tries = 64  # bounded chain walk keeps worst case linear-ish
            while candidate >= limit and tries:
                # Quick reject: a candidate can only *beat* best_len if
                # its first best_len+1 bytes all match, so a mismatch at
                # offset best_len rules it out without a full compare.
                # (Ties keep the earlier — nearer — candidate, exactly
                # as the plain walk does, so output bytes are unchanged.)
                if best_len == 0 or \
                        data[candidate + best_len] == data[pos + best_len]:
                    length = _match_length(data, candidate, pos, n)
                    if length > best_len:
                        best_len = length
                        best_dist = pos - candidate
                        if length >= max_here:
                            break
                candidate = prev[candidate]
                tries -= 1

        if best_len >= MIN_MATCH:
            if best_len <= _BASE_MAX:
                token = ((best_dist - 1) << 4) | (best_len - MIN_MATCH)
                pending_items.extend((token >> 8, token & 0xFF))
            else:
                token = ((best_dist - 1) << 4) | 0x0F
                pending_items.extend((token >> 8, token & 0xFF,
                                      best_len - _BASE_MAX - 1))
            # Only the match head enters the hash chain: inserting every
            # covered position would make long zero runs quadratic.
            insert(pos)
            step = max(1, best_len // 8)
            for covered in range(pos + step, pos + best_len, step):
                insert(covered)
            pos += best_len
        else:
            pending_flags |= 1 << pending_count
            pending_items.append(data[pos])
            insert(pos)
            pos += 1

        pending_count += 1
        if pending_count == 8:
            flush()

    flush()
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """One-shot decompression; see :class:`LzssDecoder` for streaming."""
    decoder = LzssDecoder()
    out = decoder.feed(data)
    decoder.finish()
    return out


class LzssDecoder:
    """Incremental LZSS decoder with a bounded sliding window.

    RAM usage is dominated by the window (4 KiB), matching the paper's
    observation that the pipeline's lzss buffer is the module's main RAM
    cost (2137 bytes of RAM for their smaller window configuration).
    """

    def __init__(self) -> None:
        self._window = bytearray()
        self._flags = 0
        self._remaining_in_group = 0
        self._partial = b""  # prefix bytes of a split back-reference
        self._finished = False

    def feed(self, chunk: bytes) -> bytes:
        """Decode ``chunk``, returning whatever output it completes."""
        if self._finished:
            raise LzssError("decoder already finished")
        out = bytearray()
        buf = self._partial + bytes(chunk)
        self._partial = b""
        i = 0
        while i < len(buf):
            if self._remaining_in_group == 0:
                self._flags = buf[i]
                self._remaining_in_group = 8
                i += 1
                continue
            if self._flags & 1:
                literal = buf[i]
                i += 1
                out.append(literal)
                self._push_byte(literal)
            else:
                if i + 2 > len(buf):
                    self._partial = buf[i:]
                    break
                token = (buf[i] << 8) | buf[i + 1]
                code = token & 0x0F
                if code == 0x0F:
                    if i + 3 > len(buf):
                        self._partial = buf[i:]
                        break
                    length = _BASE_MAX + 1 + buf[i + 2]
                    i += 3
                else:
                    length = code + MIN_MATCH
                    i += 2
                dist = (token >> 4) + 1
                if dist > len(self._window):
                    raise LzssError(
                        "back-reference distance %d exceeds window %d"
                        % (dist, len(self._window))
                    )
                start = len(self._window) - dist
                if dist >= length:
                    chunk = self._window[start:start + length]
                else:
                    # Overlapping copy: the byte-wise original reads
                    # bytes it just wrote, so the output repeats the
                    # last `dist` bytes periodically.
                    seg = self._window[start:]
                    chunk = (seg * (length // dist + 1))[:length]
                out.extend(chunk)
                self._window.extend(chunk)
                self._trim()
            self._flags >>= 1
            self._remaining_in_group -= 1
        return bytes(out)

    def finish(self) -> None:
        """Assert the stream ended on an item boundary."""
        if self._partial:
            raise LzssError("truncated LZSS stream (split back-reference)")
        self._finished = True

    def _push_byte(self, byte: int) -> None:
        self._window.append(byte)
        self._trim()

    def _trim(self) -> None:
        if len(self._window) > 2 * WINDOW_SIZE:
            del self._window[: len(self._window) - WINDOW_SIZE]


def _hash3(data: bytes, pos: int) -> int:
    return (data[pos] << 16) | (data[pos + 1] << 8) | data[pos + 2]


def _hash3_all(data: bytes) -> "List[int]":
    """All 3-byte prefix hashes of ``data`` at once.

    The encoder hashes every insertion point and every match probe —
    tens of thousands of positions per patch — so one vectorised pass
    beats per-position arithmetic.  Falls back to the scalar hash when
    numpy is unavailable; values are identical either way.
    """
    n = len(data)
    if n < MIN_MATCH:
        return []
    if _np is not None and n > 64:
        d = _np.frombuffer(data, dtype=_np.uint8).astype(_np.int64)
        return ((d[:n - 2] << 16) | (d[1:n - 1] << 8) | d[2:]).tolist()
    return [_hash3(data, p) for p in range(n - 2)]


def _match_length(data: bytes, candidate: int, pos: int, n: int) -> int:
    """Length of the common prefix of data[candidate:] and data[pos:].

    One C-level slice comparison settles the dominant case (bsdiff
    payloads are full of long zero runs where matches hit MAX_MATCH);
    otherwise the XOR of the two windows as big-endian integers
    pinpoints the first differing byte via ``bit_length``.  Overlapping
    slices are fine: both sides read the *input* buffer, same as the
    byte-wise original, so the result — and therefore the encoder
    output — is identical.
    """
    limit = min(MAX_MATCH, n - pos)
    a = data[candidate:candidate + limit]
    b = data[pos:pos + limit]
    if a == b:
        return limit
    x = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    return limit - 1 - (x.bit_length() - 1) // 8
