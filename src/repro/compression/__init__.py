"""LZSS compression substrate for differential updates."""

from .lzss import (
    MAX_MATCH,
    MIN_MATCH,
    WINDOW_SIZE,
    LzssDecoder,
    LzssError,
    compress,
    decompress,
)

__all__ = [
    "LzssDecoder",
    "LzssError",
    "MAX_MATCH",
    "MIN_MATCH",
    "WINDOW_SIZE",
    "compress",
    "decompress",
]
