"""Scenario runner: assemble a full UpKit deployment in one call.

The evaluation (and the examples) repeatedly need the same setup:
vendor server + update server + a provisioned simulated device + a
transport.  :class:`Testbed` packages that, with knobs for every axis
the paper varies — board, OS, crypto library, slot configuration
(A/B vs. static), transport (push vs. pull), differential support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import (
    DeviceProfile,
    TrustAnchors,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from ..memory import MemoryLayout
from ..net import Link, PullTransport, PushTransport, UpdateOutcome
from ..net.transports import Interceptor
from ..platform import BoardProfile, OSProfile, ZEPHYR, NRF52840
from .device import SimulatedDevice

__all__ = ["Testbed", "DEFAULT_APP_ID", "DEFAULT_DEVICE_ID"]

DEFAULT_APP_ID = 0x55504B49   # "UPKI"
DEFAULT_DEVICE_ID = 0x11223344
DEFAULT_LINK_OFFSET = 0x8000


@dataclass
class Testbed:
    """A complete deployment: vendor, update server, one device."""

    __test__ = False  # not a pytest class, despite the name

    vendor: VendorServer
    server: UpdateServer
    device: SimulatedDevice
    anchors: TrustAnchors

    @classmethod
    def create(
        cls,
        board: BoardProfile = NRF52840,
        os_profile: OSProfile = ZEPHYR,
        crypto_library: str = "tinycrypt",
        slot_configuration: str = "a",
        slot_size: Optional[int] = None,
        initial_firmware: bytes = b"\x00" * 1024,
        initial_version: int = 1,
        device_id: int = DEFAULT_DEVICE_ID,
        app_id: int = DEFAULT_APP_ID,
        link_offset: int = DEFAULT_LINK_OFFSET,
        supports_differential: bool = True,
    ) -> "Testbed":
        """Build and provision a testbed running ``initial_firmware``."""
        vendor_id, server_id, anchors = make_test_identities()
        vendor = VendorServer(vendor_id, app_id=app_id,
                              link_offset=link_offset)
        server = UpdateServer(server_id)
        server.publish(vendor.release(initial_firmware, initial_version))

        internal = board.make_internal_flash()
        if slot_size is None:
            # Leave room for the static layout's status region so the
            # default sizing works for both configurations.
            usable = internal.size - 2 * internal.page_size
            slot_size = usable // 2
            slot_size -= slot_size % internal.page_size
        if slot_configuration == "a":
            layout = MemoryLayout.configuration_a(internal, slot_size)
        elif slot_configuration == "b":
            external = (board.make_external_flash()
                        if board.has_external_flash else None)
            layout = MemoryLayout.configuration_b(
                internal, slot_size, external=external)
        else:
            raise ValueError("slot_configuration must be 'a' or 'b'")

        profile = DeviceProfile(
            device_id=device_id,
            app_id=app_id,
            link_offset=link_offset,
            supports_differential=supports_differential,
        )
        device = SimulatedDevice(
            board=board,
            os_profile=os_profile,
            layout=layout,
            profile=profile,
            anchors=anchors,
            crypto_library=crypto_library,
        )
        provision_device(server, layout.get("a"), device_id)
        # Provisioning happens on the production line, not on the device's
        # battery: zero the cost counters it accrued.
        for slot in layout.slots:
            slot.flash.stats.busy_seconds = 0.0
        device.backend.reset_counters()
        return cls(vendor=vendor, server=server, device=device,
                   anchors=anchors)

    # -- update execution ---------------------------------------------------------

    def release(self, firmware: bytes, version: int) -> None:
        """Vendor releases + update server publishes a new version."""
        self.server.publish(self.vendor.release(firmware, version))

    def push_update(self, interceptor: Optional[Interceptor] = None,
                    link: Optional[Link] = None,
                    reboot_on_success: bool = True) -> UpdateOutcome:
        transport = PushTransport(self.device, self.server, link=link,
                                  interceptor=interceptor,
                                  reboot_on_success=reboot_on_success)
        return transport.run_update()

    def pull_update(self, interceptor: Optional[Interceptor] = None,
                    link: Optional[Link] = None,
                    reboot_on_success: bool = True) -> UpdateOutcome:
        transport = PullTransport(self.device, self.server, link=link,
                                  interceptor=interceptor,
                                  reboot_on_success=reboot_on_success)
        return transport.run_update()

    def reset_meters(self) -> None:
        """Zero the device's clock and energy meter between experiments."""
        self.device.clock.reset()
        self.device.meter.reset()
