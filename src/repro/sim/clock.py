"""Virtual time for the update simulation.

All durations in the evaluation are *modeled* (radio packet timing,
flash busy time, crypto latency), so the simulation advances a virtual
clock instead of sleeping.  The clock also keeps a labelled trace of
advances, which the phase-breakdown reports (Fig. 8a) are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["VirtualClock"]


@dataclass
class VirtualClock:
    """Monotonic virtual clock with labelled time accounting."""

    now: float = 0.0
    _trace: List[Tuple[str, float]] = field(default_factory=list)

    def advance(self, seconds: float, label: str = "unlabelled") -> None:
        if seconds < 0:
            raise ValueError("cannot advance time by %f" % seconds)
        self.now += seconds
        self._trace.append((label, seconds))

    def elapsed_by_label(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for label, seconds in self._trace:
            totals[label] = totals.get(label, 0.0) + seconds
        return totals

    def reset(self) -> None:
        self.now = 0.0
        self._trace.clear()
