"""The simulated constrained IoT device.

Binds together a board profile, an OS profile, flash + slots, the
crypto backend, UpKit's update agent and bootloader — and meters every
modeled cost (radio, flash, crypto, pipeline CPU) onto a virtual clock
and an energy meter, attributed to the paper's four phases.

Phase attribution follows Fig. 8a's breakdown:

* **propagation** — radio time, flash writes through the pipeline, and
  the pipeline's decompression/patching CPU time;
* **verification** — the agent's signature checks and firmware digest;
* **loading** — reboot, the bootloader's re-verification, and the slot
  copy/swap in static mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import (
    Bootloader,
    BootResult,
    DeviceProfile,
    DeviceToken,
    FeedStatus,
    TrustAnchors,
    UpdateAgent,
)
from ..crypto import CryptoBackend, get_backend
from ..memory import FlashMemory, MemoryLayout
from ..obs import PHASE_OF_EVENT, BlackBox, MetricsRegistry, Tracer, \
    bind_device
from ..platform import BoardProfile, OSProfile
from .clock import VirtualClock
from .energy import EnergyMeter

__all__ = ["PipelineCpuModel", "SimulatedDevice"]


@dataclass(frozen=True)
class PipelineCpuModel:
    """CPU throughput of the pipeline stages on a Cortex-M-class MCU."""

    lzss_bytes_per_second: float = 280_000.0
    bspatch_bytes_per_second: float = 520_000.0
    decrypt_bytes_per_second: float = 350_000.0


class SimulatedDevice:
    """A device under simulation, exposing the agent's data-plane API.

    The transports (:mod:`repro.net.transports`) call
    :meth:`request_token` / :meth:`feed` / :meth:`reboot`; every call
    meters its flash and crypto cost onto the device's clock and energy
    meter.  An *agent factory* hook lets the baselines substitute their
    own (non-verifying) agents while keeping identical accounting.
    """

    def __init__(
        self,
        board: BoardProfile,
        os_profile: OSProfile,
        layout: MemoryLayout,
        profile: DeviceProfile,
        anchors: TrustAnchors,
        crypto_library: str = "tinycrypt",
        backend: Optional[CryptoBackend] = None,
        agent: Optional[UpdateAgent] = None,
        bootloader: Optional[Bootloader] = None,
        cpu_model: Optional[PipelineCpuModel] = None,
        pipeline_buffer_size: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        blackbox: Optional[BlackBox] = None,
    ) -> None:
        self.board = board
        self.os_profile = os_profile
        self.layout = layout
        self.profile = profile
        self.backend = backend or get_backend(crypto_library)
        buffer_size = (pipeline_buffer_size
                       if pipeline_buffer_size is not None
                       else board.internal_page_size)
        self.agent = agent or UpdateAgent(
            profile, layout, anchors, self.backend,
            pipeline_buffer_size=buffer_size,
        )
        self.bootloader = bootloader or Bootloader(
            profile, layout, anchors, self.backend)
        self.cpu = cpu_model or PipelineCpuModel()
        self.clock = VirtualClock()
        self.meter = EnergyMeter(supply_volts=board.supply_volts)
        self.reboots = 0
        #: During propagation the radio (kB/s) is orders of magnitude
        #: slower than the flash controller (~100 kB/s writes), so flash
        #: work hides behind packet arrivals on real devices: it costs
        #: energy but no wall-clock time.  The bootloader's swap (loading
        #: phase) is serial and always advances the clock.
        self.flash_overlaps_radio = True

        # -- observability seam (repro.obs) ---------------------------------
        # Tracer is disabled unless a consumer (cli trace, tests) flips
        # it; the black box and metrics always run — their cost is a few
        # bytes per lifecycle event on a flash *outside* the layout, so
        # neither chaos fault coordinates nor cost accounting move.
        self.tracer = tracer if tracer is not None else Tracer(
            now_fn=lambda: self.clock.now)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.blackbox = blackbox if blackbox is not None else BlackBox(
            now_fn=lambda: self.clock.now)
        bind_device(self.metrics, self)
        if hasattr(self.agent, "metrics"):
            self.agent.metrics = self.metrics
        if hasattr(self.agent, "tracer"):
            self.agent.tracer = self.tracer
        subscribed = []
        for log in (getattr(self.agent, "events", None),
                    getattr(self.bootloader, "events", None)):
            if log is not None and hasattr(log, "subscribe") \
                    and all(log is not seen for seen in subscribed):
                log.subscribe(self._observe_event)
                subscribed.append(log)

    def __setstate__(self, state: dict) -> None:
        """Restore after a trip to a process-pool worker.

        Pickling drops everything that cannot cross a process boundary:
        the tracer's and black box's ``now_fn`` closures over the
        virtual clock, and the metrics registry's collector closures
        over this device.  Rebind all of them against the restored
        objects, so a worker-side device meters and observes exactly
        like the original.
        """
        self.__dict__.update(state)
        self.tracer.now_fn = lambda: self.clock.now
        self.blackbox.now_fn = lambda: self.clock.now
        bind_device(self.metrics, self)

    def _observe_event(self, event) -> None:
        """Fan one lifecycle event out to black box, metrics and tracer."""
        label = event.kind.value
        self.blackbox.record(label,
                             phase=PHASE_OF_EVENT.get(label, "unknown"))
        self.metrics.counter("events.%s" % label).inc()
        if self.tracer.enabled:
            self.tracer.instant(label, category=event.source,
                                args=dict(event.detail))

    # -- metered agent operations --------------------------------------------

    def request_token(self) -> DeviceToken:
        token = self.agent.request_token()
        # Erasing the staging slot happens here (FSM "start update").
        self._drain_flash("propagation")
        self._drain_crypto("verification")
        return token

    def feed(self, chunk: bytes) -> FeedStatus:
        """Deliver one wire chunk to the agent, metering its side effects.

        Costs are drained in a ``finally`` block: a rejected update still
        paid for the flash writes and the failed signature check.
        """
        pending = getattr(self.agent, "_pending_manifest", None)
        try:
            status = self.agent.feed(chunk)
        finally:
            self._drain_flash("propagation")
            self._drain_crypto("verification")
            manifest = (getattr(self.agent, "_pending_manifest", None)
                        or pending)
            if manifest is not None and manifest.is_delta:
                cpu_seconds = len(chunk) / self.cpu.lzss_bytes_per_second
                cpu_seconds += len(chunk) / self.cpu.bspatch_bytes_per_second
                self._spend_cpu(cpu_seconds, "propagation")
            if manifest is not None and manifest.is_encrypted:
                self._spend_cpu(
                    len(chunk) / self.cpu.decrypt_bytes_per_second,
                    "propagation")
        return status

    def reboot(self) -> BootResult:
        """Reboot into the bootloader and load an image (loading phase)."""
        self.reboots += 1
        # Journal the boot attempt before anything can fail: an
        # unexpected entry here (no prior ready_to_reboot) is how the
        # black-box post-mortem spots a power-loss reboot.
        self.blackbox.record("boot_attempt", phase="loading")
        with self.tracer.span("loading", category="lifecycle"):
            if self.agent.ready_to_reboot:
                self.agent.acknowledge_reboot()
            with self.tracer.span("reboot", category="loading",
                                  seconds=self.board.reboot_seconds):
                self.clock.advance(self.board.reboot_seconds, "loading")
                self.meter.add("cpu", self.board.reboot_seconds,
                               self.board.cpu_active_ma)
            with self.tracer.span("bootloader", category="loading"):
                result = self.bootloader.boot()
                # Tell the agent which (fully verified) image is now
                # running — slot headers alone can lie after an
                # interrupted download.
                note_boot = getattr(self.agent, "note_boot", None)
                if note_boot is not None:
                    note_boot(result.slot, result.envelope)
                self._drain_flash("loading")
                self._drain_crypto("loading")
        return result

    # -- radio accounting (driven by the transports) ----------------------------

    def account_radio(self, seconds: float, direction: str,
                      phase: str = "propagation") -> None:
        current = (self.board.radio_rx_ma if direction == "rx"
                   else self.board.radio_tx_ma)
        self.clock.advance(seconds, phase)
        self.meter.add("radio_%s" % direction, seconds, current)

    # -- cost draining -----------------------------------------------------------

    def _flash_devices(self) -> "list[FlashMemory]":
        devices = []
        for slot in self.layout.slots:
            if all(slot.flash is not d for d in devices):
                devices.append(slot.flash)
        return devices

    def _drain_flash(self, phase: str) -> None:
        hidden = phase == "propagation" and self.flash_overlaps_radio
        for flash in self._flash_devices():
            busy = flash.stats.busy_seconds
            if busy > 0:
                if not hidden:
                    self.clock.advance(busy, phase)
                self.meter.add("flash", busy, self.board.flash_write_ma)
                flash.stats.busy_seconds = 0.0

    def _drain_crypto(self, phase: str) -> None:
        busy = self.backend.elapsed_seconds()
        if busy > 0:
            self.clock.advance(busy, phase)
            current = (self.backend.profile.verify_current_ma
                       if self.backend.profile.hardware
                       else self.board.cpu_active_ma)
            self.meter.add("crypto", busy, current)
            self.backend.reset_counters()

    def _spend_cpu(self, seconds: float, phase: str) -> None:
        if seconds > 0:
            self.clock.advance(seconds, phase)
            self.meter.add("cpu", seconds, self.board.cpu_active_ma)

    # -- introspection ------------------------------------------------------------

    def phase_breakdown(self) -> "dict[str, float]":
        return self.clock.elapsed_by_label()

    def installed_version(self) -> int:
        return self.agent.installed_version()
