"""Energy accounting: current-draw integration per component.

Battery lifetime is the paper's recurring constraint; the evaluation's
efficiency arguments (early rejection avoids radio time and reboots,
differential updates shrink radio-on time, A/B updates shrink the
loading phase) are all energy arguments.  The meter integrates
``current × time`` per component at a fixed supply voltage and reports
charge (mC) and energy (mJ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyMeter"]


@dataclass
class EnergyMeter:
    """Accumulates per-component charge at a fixed supply voltage."""

    supply_volts: float = 3.0
    _millicoulombs: Dict[str, float] = field(default_factory=dict)

    def add(self, component: str, seconds: float, current_ma: float) -> None:
        """Record ``seconds`` at ``current_ma`` attributed to ``component``."""
        if seconds < 0 or current_ma < 0:
            raise ValueError("seconds and current must be non-negative")
        self._millicoulombs[component] = (
            self._millicoulombs.get(component, 0.0) + seconds * current_ma
        )

    def charge_mc(self, component: str = "") -> float:
        """Charge in millicoulombs, for one component or in total."""
        if component:
            return self._millicoulombs.get(component, 0.0)
        return sum(self._millicoulombs.values())

    def energy_mj(self, component: str = "") -> float:
        """Energy in millijoules (charge × supply voltage)."""
        return self.charge_mc(component) * self.supply_volts

    def breakdown_mj(self) -> Dict[str, float]:
        return {
            component: mc * self.supply_volts
            for component, mc in sorted(self._millicoulombs.items())
        }

    def reset(self) -> None:
        self._millicoulombs.clear()
