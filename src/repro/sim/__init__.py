"""Simulation substrate: virtual time, energy metering, simulated devices."""

from .clock import VirtualClock
from .device import PipelineCpuModel, SimulatedDevice
from .energy import EnergyMeter
from .runner import DEFAULT_APP_ID, DEFAULT_DEVICE_ID, Testbed

__all__ = [
    "DEFAULT_APP_ID",
    "DEFAULT_DEVICE_ID",
    "EnergyMeter",
    "PipelineCpuModel",
    "SimulatedDevice",
    "Testbed",
    "VirtualClock",
]
