"""Simulated NOR flash with page-erase semantics and cost accounting.

UpKit's memory interface hides flash details from the upper layers
(Fig. 3), but its *behaviour* — erase-before-write, sector granularity,
slow erases — shapes the whole design: the pipeline's buffer stage
exists precisely because "matching the buffer size with the flash
sector size results in faster writes and fewer flash erasures"
(Sect. IV-C).

The model enforces real NOR rules:

* an erase sets a whole page to ``0xFF``;
* a write can only clear bits (1 → 0); writing over non-erased bytes
  with conflicting bits raises unless the caller erased first;
* per-page erase counters model wear;
* every operation accrues modeled time from the device's timing profile
  (consumed by :mod:`repro.sim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["FlashTiming", "FlashStats", "FlashMemory", "FlashError",
           "PowerLossError"]

ERASED = 0xFF


class FlashError(Exception):
    """Raised on illegal flash operations (bounds, write-before-erase)."""


class PowerLossError(Exception):
    """Injected fault: power failed during a flash operation.

    Raised by :meth:`FlashMemory.inject_power_loss` countdowns.  A write
    interrupted mid-operation leaves a *partial* write behind (the first
    half of the data); an interrupted erase leaves a *half-erased* page
    (the tail half reads back ``0xFF``, the head keeps its old — now
    untrustworthy — bytes), modeling a real brown-out during
    programming or during the much slower page erase.
    """


@dataclass(frozen=True)
class FlashTiming:
    """Timing profile of one flash device.

    Defaults approximate the nRF52840's internal flash: 85 ms per 4 KiB
    page erase and ~41 µs per 4-byte word write.
    """

    erase_page_seconds: float = 0.085
    write_bytes_per_second: float = 97_000.0
    read_bytes_per_second: float = 8_000_000.0
    #: Fixed setup cost per program operation (driver call, HW enable).
    #: This is what the pipeline's buffer stage amortises: "matching the
    #: buffer size with the flash sector size results in faster writes".
    write_call_overhead_seconds: float = 0.00025


@dataclass
class FlashStats:
    """Cumulative operation counters for one flash device."""

    bytes_read: int = 0
    bytes_written: int = 0
    pages_erased: int = 0
    write_calls: int = 0
    busy_seconds: float = 0.0
    erase_counts: List[int] = field(default_factory=list)

    @property
    def max_wear(self) -> int:
        return max(self.erase_counts) if self.erase_counts else 0


class FlashMemory:
    """One flash device: a byte array with page-erase discipline."""

    def __init__(
        self,
        size: int,
        page_size: int = 4096,
        timing: "FlashTiming | None" = None,
        name: str = "flash",
        strict: bool = True,
    ) -> None:
        if size <= 0 or page_size <= 0:
            raise ValueError("size and page_size must be positive")
        if size % page_size:
            raise ValueError("flash size must be a multiple of the page size")
        self.size = size
        self.page_size = page_size
        self.name = name
        self.timing = timing if timing is not None else FlashTiming()
        self.strict = strict
        self._data = bytearray(b"\xFF" * size)
        self.stats = FlashStats(erase_counts=[0] * (size // page_size))
        self._fault_countdown: "int | None" = None
        self._fault_during = "any"

    @property
    def page_count(self) -> int:
        return self.size // self.page_size

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the byte array *sparsely*: non-erased pages only.

        A provisioned device is mostly erased flash (0xFF), so shipping
        the raw array to a process-pool worker moves megabytes of
        padding per device.  Storing only the pages that differ from
        the erased state cuts a typical record's pickle by ~5-10x for
        ~0.3 ms of memcmp — the difference between the process executor
        winning and losing on IPC-heavy campaigns.
        """
        state = self.__dict__.copy()
        page = self.page_size
        erased_page = b"\xFF" * page
        pages = {}
        data = self._data
        for offset in range(0, self.size, page):
            chunk = bytes(data[offset:offset + page])
            if chunk != erased_page:
                pages[offset] = chunk
        state["_data"] = pages
        state["_sparse_pages"] = True
        return state

    def __setstate__(self, state: dict) -> None:
        if state.pop("_sparse_pages", False):
            pages = state["_data"]
            data = bytearray(b"\xFF" * state["size"])
            for offset, chunk in pages.items():
                data[offset:offset + len(chunk)] = chunk
            state["_data"] = data
        self.__dict__.update(state)

    def page_of(self, offset: int) -> int:
        self._check_range(offset, 1)
        return offset // self.page_size

    # -- operations -------------------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        self._check_range(offset, length)
        self.stats.bytes_read += length
        self.stats.busy_seconds += length / self.timing.read_bytes_per_second
        return bytes(self._data[offset:offset + length])

    # -- fault injection ----------------------------------------------------

    def inject_power_loss(self, after_operations: int,
                          during: str = "any") -> None:
        """Arm a power-loss fault ``after_operations`` erases/writes.

        The Nth modifying operation fails: an erase leaves a half-erased
        page behind; a write lands only its first half — then
        :class:`PowerLossError` is raised.  ``during`` restricts both the
        countdown and the trip to one operation kind (``"write"`` or
        ``"erase"``), so a fault plan can say "power loss at the k-th
        page erase" regardless of interleaved writes; the default
        ``"any"`` counts every modifying operation.  Used by the
        power-loss-safety tests and the chaos sweep
        (:mod:`repro.tools.chaos`).
        """
        if after_operations < 0:
            raise ValueError("after_operations must be non-negative")
        if during not in ("any", "write", "erase"):
            raise ValueError("during must be 'any', 'write' or 'erase'")
        self._fault_countdown = after_operations
        self._fault_during = during

    def clear_fault(self) -> None:
        self._fault_countdown = None
        self._fault_during = "any"

    @property
    def fault_armed(self) -> bool:
        """True while an injected power-loss fault has not fired yet."""
        return self._fault_countdown is not None

    def _tick_fault(self, kind: str) -> bool:
        """Returns True when the armed fault fires on this operation."""
        if self._fault_countdown is None:
            return False
        if self._fault_during not in ("any", kind):
            return False
        if self._fault_countdown == 0:
            self._fault_countdown = None
            return True
        self._fault_countdown -= 1
        return False

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data``; bits may only transition 1 → 0."""
        data = bytes(data)
        self._check_range(offset, len(data))
        if self._tick_fault("write"):
            half = data[: len(data) // 2]
            if half:
                self.write(offset, half)
            raise PowerLossError(
                "%s: power lost writing at 0x%X" % (self.name, offset))
        if self.strict:
            for i, new_byte in enumerate(data):
                current = self._data[offset + i]
                if new_byte & ~current & 0xFF:
                    raise FlashError(
                        "%s: write at 0x%X would set bits 0→1 "
                        "(erase the page first)" % (self.name, offset + i)
                    )
            for i, new_byte in enumerate(data):
                self._data[offset + i] &= new_byte
        else:
            self._data[offset:offset + len(data)] = data
        self.stats.bytes_written += len(data)
        self.stats.write_calls += 1
        self.stats.busy_seconds += (
            len(data) / self.timing.write_bytes_per_second
            + self.timing.write_call_overhead_seconds
        )

    def erase_page(self, page: int) -> None:
        if not (0 <= page < self.page_count):
            raise FlashError("%s: page %d out of range" % (self.name, page))
        if self._tick_fault("erase"):
            # Brown-out mid-erase: the page is *half*-erased — the tail
            # half reads back 0xFF, the head keeps its stale (now
            # untrustworthy) bytes.  Wear still happened, and roughly
            # half the erase time was spent before the supply collapsed.
            start = page * self.page_size
            half = self.page_size // 2
            self._data[start + half:start + self.page_size] = \
                b"\xFF" * (self.page_size - half)
            self.stats.erase_counts[page] += 1
            self.stats.busy_seconds += self.timing.erase_page_seconds / 2
            raise PowerLossError(
                "%s: power lost erasing page %d" % (self.name, page))
        start = page * self.page_size
        self._data[start:start + self.page_size] = b"\xFF" * self.page_size
        self.stats.pages_erased += 1
        self.stats.erase_counts[page] += 1
        self.stats.busy_seconds += self.timing.erase_page_seconds

    def erase_range(self, offset: int, length: int) -> None:
        """Erase every page overlapping [offset, offset+length)."""
        if length <= 0:
            return
        self._check_range(offset, length)
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        for page in range(first, last + 1):
            self.erase_page(page)

    def is_erased(self, offset: int, length: int) -> bool:
        self._check_range(offset, length)
        return all(b == ERASED for b in self._data[offset:offset + length])

    def snapshot(self) -> bytes:
        """Raw contents (test/debug aid; bypasses cost accounting)."""
        return bytes(self._data)

    def corrupt(self, offset: int, data: bytes) -> None:
        """Overwrite raw bytes bypassing NOR rules — fault injection only."""
        self._check_range(offset, len(data))
        self._data[offset:offset + len(data)] = data

    def reset_stats(self) -> None:
        self.stats = FlashStats(erase_counts=[0] * self.page_count)

    # -- helpers ----------------------------------------------------------

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise FlashError(
                "%s: access [0x%X, +%d) outside device of %d bytes"
                % (self.name, offset, length, self.size)
            )
