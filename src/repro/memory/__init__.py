"""Persistent-memory substrate: simulated NOR flash, slots, file slots."""

from .filebacked import FileSlot, FileSlotFile
from .flash import (
    FlashError,
    FlashMemory,
    FlashStats,
    FlashTiming,
    PowerLossError,
)
from .interface import OpenMode, SlotFile, SlotIOError
from .slots import FlashSlotFile, MemoryLayout, Slot, SlotError
from .swap import ResumableSwap, SwapStatus

__all__ = [
    "FileSlot",
    "FileSlotFile",
    "FlashError",
    "FlashMemory",
    "FlashSlotFile",
    "FlashStats",
    "FlashTiming",
    "MemoryLayout",
    "OpenMode",
    "PowerLossError",
    "ResumableSwap",
    "Slot",
    "SlotError",
    "SlotFile",
    "SlotIOError",
    "SwapStatus",
]
