"""Memory slots: bootable / non-bootable regions over simulated flash.

UpKit organises persistent memory in slots, each holding one update
image (Sect. IV-C, Fig. 6):

* **bootable (B)** slots contain a directly executable image;
* **non-bootable (NB)** slots require the bootloader to move the image
  to a bootable slot first.

Two canonical layouts from the paper:

* *Configuration A* — two bootable slots on internal flash (A/B
  updates: the bootloader jumps to the newest valid slot, no copying);
* *Configuration B* — one bootable slot on internal flash plus a
  non-bootable slot (optionally on external flash, as on the CC2650
  whose internal flash cannot hold two images) and an optional
  non-bootable recovery slot on external flash.

The module provides the portable erase / copy / swap operations the
paper's memory module exposes, with their full flash cost (erases and
writes accrue time on the underlying :class:`FlashMemory`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .flash import FlashMemory
from .interface import OpenMode, SlotIOError

__all__ = ["Slot", "FlashSlotFile", "MemoryLayout", "SlotError"]


class SlotError(Exception):
    """Raised on slot-level misuse (unknown slot, size mismatch...)."""


@dataclass(frozen=True)
class _SlotSpec:
    name: str
    flash: FlashMemory
    offset: int
    size: int
    bootable: bool


class Slot:
    """A fixed region of one flash device holding a single image."""

    def __init__(self, name: str, flash: FlashMemory, offset: int,
                 size: int, bootable: bool) -> None:
        if offset % flash.page_size or size % flash.page_size:
            raise SlotError(
                "slot %r must be page-aligned (page=%d, offset=%d, size=%d)"
                % (name, flash.page_size, offset, size)
            )
        if offset + size > flash.size:
            raise SlotError("slot %r exceeds flash device" % name)
        self._spec = _SlotSpec(name, flash, offset, size, bootable)

    # -- identity ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def size(self) -> int:
        return self._spec.size

    @property
    def bootable(self) -> bool:
        return self._spec.bootable

    @property
    def flash(self) -> FlashMemory:
        return self._spec.flash

    @property
    def offset(self) -> int:
        return self._spec.offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "B" if self.bootable else "NB"
        return "Slot(%s, %s, %d bytes on %s)" % (
            self.name, kind, self.size, self.flash.name)

    # -- IO ----------------------------------------------------------------

    def open(self, mode: OpenMode) -> "FlashSlotFile":
        return FlashSlotFile(self, mode)

    def erase(self) -> None:
        self.flash.erase_range(self.offset, self.size)

    def invalidate(self) -> None:
        """Erase only the first page, destroying the image header.

        This is the cheap way the FSM's *cleaning* state marks a slot
        invalid without paying a full-slot erase.
        """
        self.flash.erase_page(self.flash.page_of(self.offset))

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return self.flash.read(self.offset + offset, length)

    def read_all(self) -> bytes:
        return self.read(0, self.size)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.flash.write(self.offset + offset, data)

    def is_erased(self) -> bool:
        return self.flash.is_erased(self.offset, self.size)

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise SlotError(
                "access [%d, +%d) outside slot %r of %d bytes"
                % (offset, length, self.name, self.size)
            )


class FlashSlotFile:
    """POSIX-like handle over a slot, honouring UpKit's open modes."""

    def __init__(self, slot: Slot, mode: OpenMode) -> None:
        self._slot = slot
        self._mode = mode
        self._pos = 0
        self._closed = False
        self._prepared_pages: "set[int]" = set()
        if mode == OpenMode.WRITE_ALL:
            slot.erase()
            first = slot.flash.page_of(slot.offset)
            self._prepared_pages.update(
                range(first, first + slot.size // slot.flash.page_size)
            )

    @property
    def mode(self) -> OpenMode:
        return self._mode

    def read(self, length: int) -> bytes:
        data = self.read_at(self._pos, length)
        self._pos += len(data)
        return data

    def read_at(self, offset: int, length: int) -> bytes:
        self._ensure_open()
        length = max(0, min(length, self._slot.size - offset))
        if length == 0:
            return b""
        return self._slot.read(offset, length)

    def write(self, data: bytes) -> int:
        self._ensure_open()
        if self._mode == OpenMode.READ_ONLY:
            raise SlotIOError("slot %r opened READ_ONLY" % self._slot.name)
        if self._pos + len(data) > self._slot.size:
            raise SlotIOError(
                "write of %d bytes at %d overflows slot %r (%d bytes)"
                % (len(data), self._pos, self._slot.name, self._slot.size)
            )
        if self._mode == OpenMode.SEQUENTIAL_REWRITE:
            self._prepare_pages(self._pos, len(data))
        self._slot.write(self._pos, data)
        self._pos += len(data)
        return len(data)

    def seek(self, offset: int) -> None:
        self._ensure_open()
        if not (0 <= offset <= self._slot.size):
            raise SlotIOError("seek to %d outside slot" % offset)
        self._pos = offset

    def tell(self) -> int:
        return self._pos

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "FlashSlotFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _prepare_pages(self, offset: int, length: int) -> None:
        flash = self._slot.flash
        start = (self._slot.offset + offset) // flash.page_size
        end = (self._slot.offset + offset + max(length, 1) - 1) // flash.page_size
        for page in range(start, end + 1):
            if page not in self._prepared_pages:
                flash.erase_page(page)
                self._prepared_pages.add(page)

    def _ensure_open(self) -> None:
        if self._closed:
            raise SlotIOError("slot file already closed")


class MemoryLayout:
    """The set of slots of one device plus portable slot operations."""

    def __init__(self, slots: List[Slot]) -> None:
        if not slots:
            raise SlotError("a layout needs at least one slot")
        names = [s.name for s in slots]
        if len(set(names)) != len(names):
            raise SlotError("duplicate slot names: %r" % names)
        if not any(s.bootable for s in slots):
            raise SlotError("a layout needs at least one bootable slot")
        self.slots = list(slots)

    # -- canonical configurations (Fig. 6) ---------------------------------

    @classmethod
    def configuration_a(cls, flash: FlashMemory,
                        slot_size: int) -> "MemoryLayout":
        """Two bootable slots on one flash: A/B update mode."""
        return cls([
            Slot("a", flash, 0, slot_size, bootable=True),
            Slot("b", flash, slot_size, slot_size, bootable=True),
        ])

    @classmethod
    def configuration_b(
        cls,
        internal: FlashMemory,
        slot_size: int,
        external: Optional[FlashMemory] = None,
        recovery: bool = False,
    ) -> "MemoryLayout":
        """One bootable slot; staging (and recovery) possibly external.

        Static layouts also reserve a two-page **status region** at the
        end of internal flash (journal + scratch for the power-loss-safe
        swap, :class:`repro.memory.swap.ResumableSwap`); the slots must
        leave room for it.
        """
        staging_flash = external if external is not None else internal
        staging_offset = 0 if external is not None else slot_size
        status_size = 2 * internal.page_size
        status_offset = internal.size - status_size
        used = slot_size if external is not None else 2 * slot_size
        if used > status_offset:
            raise SlotError(
                "slots of %d bytes leave no room for the %d-byte status "
                "region on %d bytes of internal flash"
                % (slot_size, status_size, internal.size))
        slots = [
            Slot("a", internal, 0, slot_size, bootable=True),
            Slot("b", staging_flash, staging_offset, slot_size,
                 bootable=False),
            Slot("status", internal, status_offset, status_size,
                 bootable=False),
        ]
        if recovery:
            if external is None:
                raise SlotError("a recovery slot requires external flash")
            slots.append(Slot("recovery", external, slot_size, slot_size,
                              bootable=False))
        return cls(slots)

    # -- lookup -------------------------------------------------------------

    def get(self, name: str) -> Slot:
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise SlotError("no slot named %r" % name)

    @property
    def bootable_slots(self) -> List[Slot]:
        return [s for s in self.slots if s.bootable]

    @property
    def staging_slot(self) -> Optional[Slot]:
        """The non-bootable slot updates are staged into (if any)."""
        for slot in self.slots:
            if not slot.bootable and slot.name not in ("recovery",
                                                       "status"):
                return slot
        return None

    @property
    def status_slot(self) -> Optional[Slot]:
        """The swap journal/scratch region of static layouts (if any)."""
        for slot in self.slots:
            if slot.name == "status":
                return slot
        return None

    @property
    def is_ab(self) -> bool:
        """True for Configuration A (two or more bootable slots)."""
        return len(self.bootable_slots) >= 2

    # -- portable operations (erase / copy / swap) --------------------------

    def copy_slot(self, src: Slot, dst: Slot,
                  length: Optional[int] = None) -> None:
        """Stream ``src`` into ``dst`` page by page (dst erased lazily)."""
        if length is None:
            length = min(src.size, dst.size)
        if length > dst.size:
            raise SlotError("image of %d bytes does not fit slot %r"
                            % (length, dst.name))
        handle = dst.open(OpenMode.SEQUENTIAL_REWRITE)
        step = dst.flash.page_size
        copied = 0
        while copied < length:
            chunk = src.read(copied, min(step, length - copied))
            handle.write(chunk)
            copied += len(chunk)
        handle.close()

    def swap_slots(self, first: Slot, second: Slot,
                   length: Optional[int] = None) -> None:
        """Exchange two slots' contents through a one-page RAM buffer.

        This is what a static update pays on every install when the new
        image must end up in the single bootable slot — the cost A/B
        updates avoid (Fig. 8c).
        """
        if first.size != second.size:
            raise SlotError("swap requires equal slot sizes")
        if length is None:
            length = first.size
        step = max(first.flash.page_size, second.flash.page_size)
        offset = 0
        while offset < length:
            chunk = min(step, length - offset)
            buf_a = first.read(offset, chunk)
            buf_b = second.read(offset, chunk)
            first.flash.erase_range(first.offset + offset, chunk)
            second.flash.erase_range(second.offset + offset, chunk)
            first.write(offset, buf_b)
            second.write(offset, buf_a)
            offset += chunk

    def total_busy_seconds(self) -> float:
        """Summed flash busy time across the distinct devices involved."""
        seen = []
        total = 0.0
        for slot in self.slots:
            if id(slot.flash) not in [id(f) for f in seen]:
                seen.append(slot.flash)
                total += slot.flash.stats.busy_seconds
        return total
