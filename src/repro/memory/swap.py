"""Power-loss-safe slot swap with a flash journal and scratch page.

A naive RAM-buffered swap (read A, read B, erase both, write crossed)
is not power-loss safe: losing power between the erase and the write
destroys a page of *both* images.  Real bootloaders (mcuboot's swap
status trailer) journal their progress in flash; this module implements
that mechanism for UpKit's static update mode:

* a **status region** of two flash pages — a journal page and a scratch
  page — reserved by Configuration B layouts;
* each page pair ``i`` is swapped in three journaled steps:

  1. copy ``A[i]`` to scratch, then clear marker ``(i, 0)``;
  2. erase ``A[i]``, program ``B[i] → A[i]``, clear marker ``(i, 1)``;
  3. erase ``B[i]``, program scratch ``→ B[i]``, clear marker ``(i, 2)``.

Markers are single bytes cleared ``0xFF → 0x00`` — a NOR program
operation that needs no erase, so journaling progress is itself
power-loss safe.  After any interruption, the journal identifies the
exact step to redo; every step is idempotent given its predecessors'
markers.  On completion the journal page is erased.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from .slots import Slot, SlotError

__all__ = ["ResumableSwap", "SwapStatus"]

MAGIC = b"SWJ1"
_HEADER = struct.Struct(">4sIII")  # magic, extent, page, pair_count
_STEPS_PER_PAIR = 3


@dataclass(frozen=True)
class SwapStatus:
    """A parsed, in-progress swap journal."""

    extent: int
    page: int
    pair_count: int
    progress: List[bool]  # len == pair_count * 3; True = step done

    @property
    def complete(self) -> bool:
        return all(self.progress)

    def first_pending(self) -> "tuple[int, int]":
        """(pair, step) of the first unfinished step."""
        for index, done in enumerate(self.progress):
            if not done:
                return divmod(index, _STEPS_PER_PAIR)
        raise ValueError("swap already complete")


class ResumableSwap:
    """Journaled three-step swap between two equal-size slots."""

    def __init__(self, bootable: Slot, staging: Slot,
                 status: Slot) -> None:
        if bootable.size != staging.size:
            raise SlotError("swap requires equal slot sizes")
        page = max(bootable.flash.page_size, staging.flash.page_size,
                   status.flash.page_size)
        if status.size < 2 * status.flash.page_size:
            raise SlotError("status slot needs a journal + a scratch page")
        if status.size - status.flash.page_size < page:
            raise SlotError(
                "scratch area of %d bytes cannot hold a %d-byte page"
                % (status.size - status.flash.page_size, page))
        self.bootable = bootable
        self.staging = staging
        self.status = status
        self.page = page
        self._journal_offset = 0
        self._scratch_offset = status.flash.page_size

    # -- journal ------------------------------------------------------------

    @classmethod
    def pending(cls, status: Slot) -> Optional[SwapStatus]:
        """Parse the journal; None when no swap is in progress."""
        header = status.read(0, _HEADER.size)
        try:
            magic, extent, page, pair_count = _HEADER.unpack(header)
        except struct.error:
            return None
        if magic != MAGIC or pair_count == 0 or page == 0:
            return None
        # A power loss during the header write leaves erased (0xFF...)
        # tail fields behind a valid magic; such a journal never
        # progressed past step zero, so it is safely ignored.
        capacity = (status.flash.page_size - _HEADER.size) \
            // _STEPS_PER_PAIR
        if page > status.size or pair_count > capacity:
            return None
        if extent != page * pair_count:
            return None
        marker_bytes = status.read(_HEADER.size,
                                   pair_count * _STEPS_PER_PAIR)
        progress = [byte == 0x00 for byte in marker_bytes]
        return SwapStatus(extent=extent, page=page, pair_count=pair_count,
                          progress=progress)

    def _write_journal_header(self, extent: int, pair_count: int) -> None:
        flash = self.status.flash
        flash.erase_page(flash.page_of(self.status.offset))
        self.status.write(
            self._journal_offset,
            _HEADER.pack(MAGIC, extent, self.page, pair_count))

    def _mark(self, pair: int, step: int) -> None:
        offset = _HEADER.size + pair * _STEPS_PER_PAIR + step
        self.status.write(offset, b"\x00")

    def _clear_journal(self) -> None:
        flash = self.status.flash
        flash.erase_page(flash.page_of(self.status.offset))

    # -- the swap --------------------------------------------------------------

    def swap(self, extent: int) -> None:
        """Swap ``extent`` bytes (rounded up to pages), journaled."""
        if extent <= 0:
            return
        extent = min(self.bootable.size, -(-extent // self.page) * self.page)
        pair_count = extent // self.page
        max_pairs = (self.status.flash.page_size - _HEADER.size) \
            // _STEPS_PER_PAIR
        if pair_count > max_pairs:
            raise SlotError(
                "swap of %d pairs exceeds journal capacity %d"
                % (pair_count, max_pairs))
        self._write_journal_header(extent, pair_count)
        self._run(pair_count, start_pair=0, start_step=0)
        self._clear_journal()

    def resume(self, status: SwapStatus) -> None:
        """Complete a swap found pending in the journal."""
        if status.complete:
            self._clear_journal()
            return
        pair, step = status.first_pending()
        self._run(status.pair_count, start_pair=pair, start_step=step)
        self._clear_journal()

    def _run(self, pair_count: int, start_pair: int,
             start_step: int) -> None:
        for pair in range(start_pair, pair_count):
            offset = pair * self.page
            first_step = start_step if pair == start_pair else 0
            if first_step <= 0:
                self._copy_to_scratch(offset)
                self._mark(pair, 0)
            if first_step <= 1:
                self._program(self.bootable, offset,
                              self.staging.read(offset, self.page))
                self._mark(pair, 1)
            if first_step <= 2:
                scratch = self.status.read(self._scratch_offset, self.page)
                self._program(self.staging, offset, scratch)
                self._mark(pair, 2)

    def _copy_to_scratch(self, offset: int) -> None:
        flash = self.status.flash
        flash.erase_range(self.status.offset + self._scratch_offset,
                          self.page)
        self.status.write(self._scratch_offset,
                          self.bootable.read(offset, self.page))

    @staticmethod
    def _program(slot: Slot, offset: int, data: bytes) -> None:
        slot.flash.erase_range(slot.offset + offset, len(data))
        slot.write(offset, data)
