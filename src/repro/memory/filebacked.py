"""Linux-file-backed slots.

The paper's memory interface "allows assigning a Linux file to each
slot, which gives the ability to work with devices supporting a file
system, as well as to test the modules without the need of a
simulator" (Sect. V).  This module provides that: the same SlotFile
protocol as :class:`repro.memory.slots.FlashSlotFile`, backed by a real
file on disk — no NOR semantics, no cost model.
"""

from __future__ import annotations

import os
from typing import Union

from .interface import OpenMode, SlotIOError

__all__ = ["FileSlot", "FileSlotFile"]


class FileSlot:
    """A slot persisted in a regular file of fixed size."""

    def __init__(self, path: Union[str, "os.PathLike[str]"], size: int,
                 bootable: bool = False, name: str = "") -> None:
        if size <= 0:
            raise ValueError("slot size must be positive")
        self.path = os.fspath(path)
        self.size = size
        self.bootable = bootable
        self.name = name or os.path.basename(self.path)
        if not os.path.exists(self.path):
            with open(self.path, "wb") as fh:
                fh.write(b"\xFF" * size)
        else:
            actual = os.path.getsize(self.path)
            if actual != size:
                raise SlotIOError(
                    "existing file %s is %d bytes, expected %d"
                    % (self.path, actual, size)
                )

    def open(self, mode: OpenMode) -> "FileSlotFile":
        return FileSlotFile(self, mode)

    def erase(self) -> None:
        with open(self.path, "r+b") as fh:
            fh.write(b"\xFF" * self.size)

    def invalidate(self) -> None:
        with open(self.path, "r+b") as fh:
            fh.write(b"\xFF" * min(4096, self.size))

    def read(self, offset: int, length: int) -> bytes:
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    def read_all(self) -> bytes:
        return self.read(0, self.size)


class FileSlotFile:
    """File-backed SlotFile; erase semantics degenerate to overwrite."""

    def __init__(self, slot: FileSlot, mode: OpenMode) -> None:
        self._slot = slot
        self._mode = mode
        self._pos = 0
        self._closed = False
        if mode == OpenMode.WRITE_ALL:
            slot.erase()

    @property
    def mode(self) -> OpenMode:
        return self._mode

    def read(self, length: int) -> bytes:
        data = self.read_at(self._pos, length)
        self._pos += len(data)
        return data

    def read_at(self, offset: int, length: int) -> bytes:
        self._ensure_open()
        length = max(0, min(length, self._slot.size - offset))
        if length == 0:
            return b""
        return self._slot.read(offset, length)

    def write(self, data: bytes) -> int:
        self._ensure_open()
        if self._mode == OpenMode.READ_ONLY:
            raise SlotIOError("slot %r opened READ_ONLY" % self._slot.name)
        if self._pos + len(data) > self._slot.size:
            raise SlotIOError("write overflows file slot %r" % self._slot.name)
        with open(self._slot.path, "r+b") as fh:
            fh.seek(self._pos)
            fh.write(data)
        self._pos += len(data)
        return len(data)

    def seek(self, offset: int) -> None:
        self._ensure_open()
        if not (0 <= offset <= self._slot.size):
            raise SlotIOError("seek to %d outside slot" % offset)
        self._pos = offset

    def tell(self) -> int:
        return self._pos

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "FileSlotFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SlotIOError("slot file already closed")
