"""POSIX-inspired slot IO interface.

Quoting the paper (Sect. V): "The API is inspired by the standard POSIX
IO functions, allowing to open and close a memory slot, as well as to
read and write data. To support flash memories and the need of sector
erase before writing, specific open modes have been defined."

Modes:

* ``READ_ONLY`` — reads only; writes raise.
* ``WRITE_ALL`` — the whole slot is erased at open so the writer can
  stream sequentially without further erases.
* ``SEQUENTIAL_REWRITE`` — each page is erased lazily the first time the
  write cursor enters it; cheaper than WRITE_ALL when the image is much
  smaller than the slot.
"""

from __future__ import annotations

import enum
from typing import Protocol

__all__ = ["OpenMode", "SlotIOError", "SlotFile"]


class OpenMode(enum.Enum):
    """Slot open modes defined by UpKit's memory interface."""

    READ_ONLY = "read_only"
    WRITE_ALL = "write_all"
    SEQUENTIAL_REWRITE = "sequential_rewrite"


class SlotIOError(Exception):
    """Raised on illegal slot IO (mode violations, bounds, closed handle)."""


class SlotFile(Protocol):
    """Structural interface every slot handle implements.

    Both flash-backed handles (:class:`repro.memory.slots.FlashSlotFile`)
    and Linux-file-backed handles
    (:class:`repro.memory.filebacked.FileSlotFile`) satisfy it, which is
    what lets the paper "test the modules without the need of a
    simulator".
    """

    def read(self, length: int) -> bytes:  # pragma: no cover - protocol
        ...

    def read_at(self, offset: int, length: int) -> bytes:  # pragma: no cover
        ...

    def write(self, data: bytes) -> int:  # pragma: no cover - protocol
        ...

    def seek(self, offset: int) -> None:  # pragma: no cover - protocol
        ...

    def tell(self) -> int:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...
