"""Fleet-scale performance benchmark harness.

Measures the hot path the ROADMAP's "millions of devices" north star
depends on, under both crypto engines and both wave executors:

* SHA-256 throughput (MB/s) — reference (from-scratch) vs. fast
  (hashlib) engine;
* ECDSA verify throughput (verifies/s) — plain Shamir-trick verify vs.
  fixed-window precomputed tables (distinct digests, so the
  verification cache is *not* what is being measured);
* delta generation time — bsdiff + LZSS over a firmware pair (engine
  independent, but it gates campaign start-up);
* end-to-end campaign throughput (devices/s) on a seeded fleet, for
  the seed path (reference engine, serial executor), the fast engine
  alone, the fast engine + thread-pool executor, and the fast engine +
  process-pool executor — asserting along the way that every
  configuration produces the *identical*
  :class:`~repro.fleet.campaign.CampaignReport`.

The campaign runs under two **profiles**:

* ``campaign`` (CPU profile) — pure simulation, no host-paced waits.
  On a single-core host this is where the GIL finding shows up: the
  pooled executors *lose* to serial (threads serialise on the GIL,
  processes pay pickle + fork with no second core to win it back).
  :func:`find_inversions` names these inversions; ``cli bench
  --strict`` turns them into a nonzero exit.
* ``campaign_io`` (I/O profile) — each request round-trip sleeps a
  host RTT (:class:`~repro.net.transports` ``host_rtt_seconds``),
  modeling a live network between campaign runner and update server.
  Sleeps release the GIL and never touch the virtual clock, so the
  pooled executors overlap them and win while reports stay
  byte-identical.

Results are written to ``BENCH_fleet.json`` (repo root by convention)
so subsequent PRs can track the trajectory::

    python -m repro.tools.cli bench --devices 50 --out BENCH_fleet.json

:func:`run_delta` measures the vectorised delta-generation fast path
(bsdiff + LZSS) against the preserved pure-Python reference path on
the same firmware pair — byte-identical outputs are asserted, the
speedup is the headline — and writes ``BENCH_delta.json``::

    python -m repro.tools.cli bench --delta-out BENCH_delta.json

``benchmarks/test_perf_fleet.py`` / ``test_perf_delta.py`` run the
same harnesses under the ``perf`` pytest marker (excluded from the
tier-1 suite); ``tests/test_perf_smoke.py`` runs a bounded smoke
subset inside tier-1.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from typing import Dict, List, Optional, Tuple

from ..core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from ..crypto import generate_keypair, use_engine
from ..crypto.engine import FastEngine, get_engine
from ..delta import diff as bsdiff_diff, patch as bspatch_apply
from ..delta import bsdiff as _bsdiff_mod
from ..delta import suffix as _suffix_mod
from ..compression import compress as lzss_compress, decompress as lzss_decompress
from ..compression import lzss as _lzss_mod
from ..fleet import (
    Campaign,
    ColumnarFleet,
    DeviceRecord,
    DeviceSpec,
    ParallelWaveExecutor,
    ProcessWaveExecutor,
    RolloutPolicy,
    ScaleCampaign,
    SerialWaveExecutor,
    calibrate,
)
from ..memory import MemoryLayout
from ..obs import MetricsRegistry, bind_engine, bind_server
from ..platform import NRF52840, ZEPHYR
from ..sim import SimulatedDevice
from ..workload import FirmwareGenerator
from .report import write_report

__all__ = [
    "bench_sha256",
    "bench_verify",
    "bench_delta",
    "bench_delta_fastpath",
    "bench_campaign",
    "bench_fleet_scale",
    "find_inversions",
    "run_all",
    "run_delta",
    "write_results",
    "write_delta_results",
    "compare_to_baseline",
    "GATE_METRICS",
    "IO_GATE_METRICS",
    "DELTA_GATE_METRICS",
    "FLEET_SCALE_HIGHER_IS_BETTER",
    "FLEET_SCALE_LOWER_IS_BETTER",
    "SERVER_GATE_HIGHER_IS_BETTER",
    "SERVER_GATE_LOWER_IS_BETTER",
    "SERVER_WORKLOAD_KEYS",
    "DEFAULT_TOLERANCE",
]

APP_ID = 0x55504B49
LINK_OFFSET = 0x8000


def _mb_per_s(nbytes: int, seconds: float) -> float:
    return nbytes / (1024.0 * 1024.0) / seconds if seconds > 0 else 0.0


# -- primitives -------------------------------------------------------------


def bench_sha256(reference_bytes: int = 128 * 1024,
                 fast_bytes: int = 16 * 1024 * 1024) -> Dict[str, float]:
    """SHA-256 MB/s per engine (sized so each run takes well under 1 s)."""
    results: Dict[str, float] = {}
    for name, nbytes in (("reference", reference_bytes),
                         ("fast", fast_bytes)):
        data = b"\xA5" * nbytes
        with use_engine(name) as engine:
            engine.sha256(b"warmup")
            start = time.perf_counter()
            engine.sha256(data)
            elapsed = time.perf_counter() - start
        results["%s_mb_per_s" % name] = round(_mb_per_s(nbytes, elapsed), 2)
    results["speedup"] = round(
        results["fast_mb_per_s"] / results["reference_mb_per_s"], 1)
    return results


def bench_verify(reference_iterations: int = 20,
                 fast_iterations: int = 60) -> Dict[str, float]:
    """ECDSA verifies/s per engine, over *distinct* digests.

    Distinct digests keep the fast engine's verification cache out of
    the measurement: what is timed is the table-accelerated scalar
    math, i.e. the cost of verifying signatures never seen before.
    """
    key = generate_keypair(b"bench-verify")
    public = key.public_key()
    count = max(reference_iterations, fast_iterations)
    messages = [b"bench message %06d" % i for i in range(count)]
    with use_engine("fast"):
        signatures = [key.sign(message) for message in messages]

    results: Dict[str, float] = {}
    for name, iterations in (("reference", reference_iterations),
                             ("fast", fast_iterations)):
        with use_engine(name) as engine:
            if isinstance(engine, FastEngine):
                engine.clear_caches()
                # Warm past table_threshold so steady-state table math
                # is measured, not the one-time table build.
                for i in range(engine.table_threshold + 1):
                    public.verify(signatures[i], messages[i])
            start = time.perf_counter()
            for i in range(iterations):
                ok = public.verify(signatures[i], messages[i])
                assert ok
            elapsed = time.perf_counter() - start
        results["%s_verifies_per_s" % name] = round(iterations / elapsed, 1)
    results["speedup"] = round(
        results["fast_verifies_per_s"] / results["reference_verifies_per_s"],
        1)
    return results


def bench_delta(image_size: int = 48 * 1024) -> Dict[str, float]:
    """bsdiff + LZSS generation time for one firmware pair."""
    generator = FirmwareGenerator(seed=b"bench-delta")
    old = generator.firmware(image_size, image_id=1)
    new = generator.os_version_change(old, revision=2)
    start = time.perf_counter()
    patch = bsdiff_diff(old, new)
    diff_seconds = time.perf_counter() - start
    start = time.perf_counter()
    delta = lzss_compress(patch)
    compress_seconds = time.perf_counter() - start
    return {
        "firmware_bytes": image_size,
        "patch_bytes": len(patch),
        "delta_bytes": len(delta),
        "bsdiff_seconds": round(diff_seconds, 4),
        "lzss_seconds": round(compress_seconds, 4),
        "total_seconds": round(diff_seconds + compress_seconds, 4),
    }


def bench_delta_fastpath(image_size: int = 96 * 1024) -> Dict[str, object]:
    """Vectorised vs. pure-Python delta generation on one firmware pair.

    The numpy fast path (suffix-array construction, bucket-boundary
    match search, hash-chain LZSS) and the preserved pure-Python
    reference path are run over the *same* pair; the patch and the
    compressed delta must come out byte-identical, and both are
    round-tripped (LZSS decode, bspatch apply) before any timing is
    reported.  The reference path is selected by nulling the modules'
    ``_np`` handles — exactly the no-numpy import fallback.

    The fast path is warmed once and reported as best-of-3 (suffix
    array construction is included each run; only allocator/cache
    warm-up is excluded).  The reference path runs once — it is the
    slow side, and noise on the slow side only *understates* the
    speedup.
    """
    generator = FirmwareGenerator(seed=b"bench-delta")
    old = generator.firmware(image_size, image_id=1)
    new = generator.os_version_change(old, revision=2)

    def run_pair() -> "tuple[bytes, bytes, float, float]":
        start = time.perf_counter()
        patch_bytes = bsdiff_diff(old, new)
        diff_seconds = time.perf_counter() - start
        start = time.perf_counter()
        delta = lzss_compress(patch_bytes)
        compress_seconds = time.perf_counter() - start
        return patch_bytes, delta, diff_seconds, compress_seconds

    saved = (_suffix_mod._np, _bsdiff_mod._np, _lzss_mod._np)
    try:
        _suffix_mod._np = None
        _bsdiff_mod._np = None
        _lzss_mod._np = None
        ref_patch, ref_delta, ref_diff_s, ref_comp_s = run_pair()
    finally:
        _suffix_mod._np, _bsdiff_mod._np, _lzss_mod._np = saved

    run_pair()  # warm-up
    fast_patch = fast_delta = b""
    fast_diff_s = fast_comp_s = float("inf")
    for _ in range(3):
        patch_bytes, delta, diff_s, comp_s = run_pair()
        if diff_s + comp_s < fast_diff_s + fast_comp_s:
            fast_patch, fast_delta = patch_bytes, delta
            fast_diff_s, fast_comp_s = diff_s, comp_s

    identical = (fast_patch == ref_patch) and (fast_delta == ref_delta)
    if not identical:
        raise AssertionError(
            "delta fast path diverged from the pure-Python reference")
    if lzss_decompress(fast_delta) != fast_patch:
        raise AssertionError("LZSS round-trip failed on the benched delta")
    if bspatch_apply(old, fast_patch) != new:
        raise AssertionError("bspatch round-trip failed on the benched patch")

    fast_total = fast_diff_s + fast_comp_s
    ref_total = ref_diff_s + ref_comp_s
    return {
        "firmware_bytes": image_size,
        "patch_bytes": len(fast_patch),
        "delta_bytes": len(fast_delta),
        "fast": {
            "bsdiff_seconds": round(fast_diff_s, 4),
            "lzss_seconds": round(fast_comp_s, 4),
            "total_seconds": round(fast_total, 4),
        },
        "reference": {
            "bsdiff_seconds": round(ref_diff_s, 4),
            "lzss_seconds": round(ref_comp_s, 4),
            "total_seconds": round(ref_total, 4),
        },
        "speedup": round(ref_total / fast_total, 2) if fast_total > 0 else 0.0,
        "byte_identical": True,
    }


# -- campaign ---------------------------------------------------------------


def _build_campaign(device_count: int, image_size: int,
                    executor, metrics=None,
                    host_rtt_seconds: float = 0.0) -> Campaign:
    """A seeded fleet at v1 with v2 published, ready to run.

    Construction is fully deterministic, so every configuration under
    test drives a bit-identical fleet against a bit-identical release.
    ``host_rtt_seconds`` > 0 selects the I/O profile: every control
    exchange sleeps that long on the host clock (the virtual clock is
    untouched, so reports stay identical across executors).
    """
    generator = FirmwareGenerator(seed=b"bench-campaign")
    fw_v1 = generator.firmware(image_size, image_id=1)
    fw_v2 = generator.os_version_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))

    fleet: List[DeviceRecord] = []
    for index in range(device_count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x4000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="bench-%03d" % index,
            device=device,
            transport="pull" if index % 2 else "push",
            host_rtt_seconds=host_rtt_seconds,
        ))

    server.publish(vendor.release(fw_v2, 2))
    return Campaign(server, fleet, RolloutPolicy(canary_fraction=0.1),
                    executor=executor, metrics=metrics)


def _build_scale_campaign(device_count: int,
                          image_size: int) -> ScaleCampaign:
    """The same seeded workload as :func:`_build_campaign`, columnar.

    Fleet membership is a :class:`~repro.fleet.ColumnarFleet` (one row
    per device); the hydrator provisions lazily against a server view
    where v1 is still the latest release, so a device materialised
    after v2 ships factory-installs the identical v1 image the
    hydrated path provisioned up front (envelope signatures are
    deterministic and content-addressed).
    """
    generator = FirmwareGenerator(seed=b"bench-campaign")
    fw_v1 = generator.firmware(image_size, image_id=1)
    fw_v2 = generator.os_version_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    release_v1 = vendor.release(fw_v1, 1)
    server = UpdateServer(server_id)
    server.publish(release_v1)
    provisioning = UpdateServer(server_id)
    provisioning.publish(release_v1)
    server.publish(vendor.release(fw_v2, 2))

    def spec_fn(index: int) -> DeviceSpec:
        return DeviceSpec(name="bench-%03d" % index,
                          device_id=0x4000 + index,
                          transport="pull" if index % 2 else "push")

    def hydrator(spec: DeviceSpec) -> DeviceRecord:
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=spec.device_id, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(provisioning, layout.get("a"), spec.device_id)
        return DeviceRecord(name=spec.name, device=device,
                            transport=spec.transport,
                            host_rtt_seconds=spec.host_rtt_seconds)

    fleet = ColumnarFleet(device_count, spec_fn, baseline_version=1)
    return ScaleCampaign(server, fleet, hydrator,
                         RolloutPolicy(canary_fraction=0.1),
                         anchors=anchors)


def _sampled_parity(sample_devices: int, image_size: int) -> bool:
    """Hydrated vs. columnar cross-check on a small sampled fleet.

    Runs the same seeded workload through both campaign flavours and
    requires the materialised :class:`CampaignReport` *and* every
    per-device entry to be byte-identical.  Raises on divergence —
    a fleet-scale artifact must never ship numbers from a path that
    disagrees with the reference implementation.
    """
    from ..fleet import ScaleReport

    with use_engine("fast") as engine:
        engine.clear_caches()
        hydrated = _build_campaign(sample_devices, image_size,
                                   SerialWaveExecutor())
        hydrated_report = hydrated.run()
        engine.clear_caches()
        scale = _build_scale_campaign(sample_devices, image_size)
        scale_report = scale.run()
    if (scale_report.to_campaign_report().to_dict()
            != hydrated_report.to_dict()):
        raise AssertionError(
            "columnar campaign report diverged from the hydrated path")
    for index, record in enumerate(hydrated.fleet):
        if (scale_report.device_entry(index)
                != ScaleReport.record_entry(record)):
            raise AssertionError(
                "columnar device entry %d diverged from the hydrated "
                "record" % index)
    return True


def bench_fleet_scale(device_count: int = 10_000,
                      image_size: int = 24 * 1024,
                      sample_devices: int = 20) -> Dict[str, object]:
    """Columnar campaign throughput and memory-per-device tracking.

    Runs a :class:`~repro.fleet.ScaleCampaign` over ``device_count``
    columnar rows (hydrating only cohort representatives), recording
    devices/s, peak RSS (``resource.getrusage``), columnar bytes/row
    and — for the memory-per-device trajectory the ROADMAP tracks —
    the sparse-flash pickle cost of one fully hydrated record.  A
    ``sample_devices``-sized hydrated-vs-columnar parity cross-check
    runs first and the artifact records its verdict.
    """
    import resource

    parity = _sampled_parity(sample_devices, image_size)
    campaign = _build_scale_campaign(device_count, image_size)
    sample_record = campaign.hydrator(campaign.fleet.spec(0))
    pickle_bytes = len(pickle.dumps(sample_record,
                                    protocol=pickle.HIGHEST_PROTOCOL))
    with use_engine("fast") as engine:
        engine.clear_caches()
        start = time.perf_counter()
        report = campaign.run()
        elapsed = time.perf_counter() - start
    peak_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    summary = report.summary()
    if summary["updated"] != device_count or summary["aborted"]:
        raise AssertionError(
            "fleet-scale campaign did not fully succeed: %r" % summary)
    summary.update({
        "image_bytes": image_size,
        "scale_seconds": round(elapsed, 3),
        "devices_per_s": round(device_count / elapsed, 1),
        "peak_rss_kb": peak_rss_kb,
        "pickle_bytes_per_record": pickle_bytes,
        "sampled_parity": parity,
        "sample_devices": sample_devices,
    })
    return summary


def bench_campaign(device_count: int = 50,
                   image_size: int = 24 * 1024,
                   max_workers: Optional[int] = None,
                   host_rtt_seconds: float = 0.0,
                   include_reference: bool = True,
                   process_workers: Optional[int] = None
                   ) -> Dict[str, object]:
    """End-to-end campaign throughput per engine/executor configuration.

    Four configurations by default — reference engine + serial executor
    (the seed path), fast engine + serial, fast engine + thread pool,
    fast engine + process pool.  ``include_reference=False`` drops the
    slow seed path (used for the I/O profile, where only the executor
    comparison is interesting).  Every configuration must produce the
    identical :class:`CampaignReport` or the bench raises.
    """
    configurations = []
    if include_reference:
        configurations.append(
            ("reference_serial", "reference", SerialWaveExecutor()))
    configurations.append(("fast_serial", "fast", SerialWaveExecutor()))
    configurations.append(
        ("fast_parallel", "fast", ParallelWaveExecutor(max_workers=max_workers)))
    configurations.append(
        ("fast_process", "fast",
         ProcessWaveExecutor(max_workers=process_workers or max_workers or 2)))
    results: Dict[str, object] = {
        "devices": device_count,
        "image_bytes": image_size,
    }
    if host_rtt_seconds > 0.0:
        results["host_rtt_seconds"] = host_rtt_seconds
    reports = {}
    crypto_stats: Dict[str, object] = {}
    server_stats: Dict[str, object] = {}
    metrics_out: Dict[str, object] = {}
    for label, engine_name, executor in configurations:
        # One registry per configuration: campaign wave counters and the
        # engine/server stats mirrors land side by side.  Observation is
        # purely additive — the CampaignReport equality assertion below
        # is what proves it.
        registry = MetricsRegistry()
        executor.metrics = registry
        campaign = _build_campaign(device_count, image_size, executor,
                                   metrics=registry,
                                   host_rtt_seconds=host_rtt_seconds)
        bind_server(registry, campaign.server)
        try:
            with use_engine(engine_name) as engine:
                if isinstance(engine, FastEngine):
                    engine.clear_caches()   # cold start: tables count too
                    bind_engine(registry, engine)
                start = time.perf_counter()
                report = campaign.run()
                elapsed = time.perf_counter() - start
                crypto_stats[label] = (engine.stats.to_dict()
                                       if isinstance(engine, FastEngine)
                                       else None)
        finally:
            executor.close()
        server_stats[label] = campaign.server.stats.to_dict()
        metrics_out[label] = registry.snapshot()
        if report.aborted or len(report.updated) != device_count:
            raise AssertionError(
                "benchmark campaign %s did not fully succeed: %r"
                % (label, report.to_dict()))
        reports[label] = report.to_dict()
        results["%s_seconds" % label] = round(elapsed, 3)
        results["%s_devices_per_s" % label] = round(
            device_count / elapsed, 2)
    baseline_report = reports["fast_serial"]
    for label, report_dict in reports.items():
        if report_dict != baseline_report:
            raise AssertionError(
                "campaign report for %s diverged from fast_serial" % label)
    results["reports_identical"] = True
    if include_reference:
        results["speedup"] = round(
            results["reference_serial_seconds"]
            / results["fast_parallel_seconds"], 2)
    results["thread_speedup"] = round(
        results["fast_serial_seconds"] / results["fast_parallel_seconds"], 2)
    results["process_speedup"] = round(
        results["fast_serial_seconds"] / results["fast_process_seconds"], 2)
    if isinstance(max_workers, int):
        results["max_workers"] = max_workers
    results["crypto_stats"] = crypto_stats
    results["server_stats"] = server_stats
    results["metrics"] = metrics_out
    return results


def find_inversions(results: Dict[str, object]) -> List[str]:
    """Name every executor inversion in a bench result document.

    An *inversion* is a pooled executor (threads or processes) running
    *slower* than the serial executor under the same engine — the
    empirical GIL finding on single-core hosts.  Returns human-readable
    descriptions; ``cli bench`` prints them as warnings and ``--strict``
    turns a non-empty list into a nonzero exit.  Tolerates partial or
    synthetic documents: sections and metrics that are absent are
    simply skipped.
    """
    inversions: List[str] = []
    for section in ("campaign", "campaign_io"):
        data = results.get(section)
        if not isinstance(data, dict):
            continue
        serial = data.get("fast_serial_seconds")
        if not isinstance(serial, (int, float)) or serial <= 0:
            continue
        for pooled in ("fast_parallel", "fast_process"):
            value = data.get("%s_seconds" % pooled)
            if isinstance(value, (int, float)) and value > serial:
                inversions.append(
                    "%s: %s (%.3f s) is slower than fast_serial (%.3f s) "
                    "— pooled execution loses on this host/profile"
                    % (section, pooled, value, serial))
    return inversions


# -- harness ----------------------------------------------------------------


def run_all(device_count: int = 50, image_size: int = 24 * 1024,
            max_workers: Optional[int] = None,
            io_rtt_seconds: float = 0.05,
            scale_devices: Optional[int] = None) -> Dict[str, object]:
    """Run every benchmark; returns the JSON-ready result document.

    ``scale_devices`` sizes the columnar ``fleet_scale`` section; the
    hydrated executor-comparison campaigns stay capped at
    ``device_count`` (hydrating a million full simulators is exactly
    what the columnar path exists to avoid).
    """
    previous = get_engine().name
    campaign = bench_campaign(device_count, image_size, max_workers)
    # I/O profile: no reference engine (only the executor comparison is
    # interesting), pool sized for overlapping waits rather than cores.
    io_workers = max_workers or 8
    campaign_io = bench_campaign(
        device_count, image_size, max_workers=io_workers,
        host_rtt_seconds=io_rtt_seconds, include_reference=False,
        process_workers=io_workers)
    for key in ("crypto_stats", "server_stats", "metrics"):
        campaign_io.pop(key, None)
    results = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "calibration": calibrate().to_dict(),
        "sha256": bench_sha256(),
        "ecdsa_verify": bench_verify(),
        "delta_generation": bench_delta(),
        # Engine/server telemetry lives top-level so the schema
        # validator can insist on it without digging into the campaign.
        "crypto_stats": campaign.pop("crypto_stats"),
        "server_stats": campaign.pop("server_stats"),
        "metrics": campaign.pop("metrics"),
        "campaign": campaign,
        "campaign_io": campaign_io,
        "fleet_scale": bench_fleet_scale(
            scale_devices or max(device_count, 10_000), image_size),
    }
    assert get_engine().name == previous, "bench must not leak engine state"
    return results


def run_delta(image_size: int = 96 * 1024) -> Dict[str, object]:
    """Run the delta fast-path benchmark; returns the JSON document."""
    return {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "delta_fastpath": bench_delta_fastpath(image_size),
    }


def write_results(results: Dict[str, object], path: str) -> str:
    """Write a schema-stamped bench artifact (see ``tools/report.py``)."""
    return write_report(results, path, "bench")


def write_delta_results(results: Dict[str, object], path: str) -> str:
    """Write a schema-stamped delta-bench artifact."""
    return write_report(results, path, "delta")


#: Campaign wall-clock metrics the ``--baseline`` gate compares — one
#: per engine/executor configuration, so a regression in any one of
#: the three paths (reference, fast, fast+parallel) trips the gate.
GATE_METRICS = ("reference_serial_seconds", "fast_serial_seconds",
                "fast_parallel_seconds")

#: I/O-profile wall-clock metrics, gated only when both artifacts carry
#: a ``campaign_io`` section (older baselines predate it).
IO_GATE_METRICS = ("fast_serial_seconds", "fast_parallel_seconds",
                   "fast_process_seconds")

#: Delta-generation wall-clock metrics, gated only when both artifacts
#: carry a ``delta_generation`` section.
DELTA_GATE_METRICS = ("bsdiff_seconds", "lzss_seconds", "total_seconds")

#: Fleet-scale gate: throughput must not *drop* more than the
#: tolerance (higher is better, so the comparison is inverted), and
#: peak RSS must not *grow* more than it.  Gated only when both
#: artifacts carry a ``fleet_scale`` section (schema v3 baselines
#: predate it).
FLEET_SCALE_HIGHER_IS_BETTER = ("devices_per_s",)
FLEET_SCALE_LOWER_IS_BETTER = ("peak_rss_kb",)

#: Swarm-bench (``server`` section, bench schema v5) gate: session
#: p99 and peak RSS must not grow past tolerance, and request
#: throughput must not drop past it — regressions fail in both
#: comparison directions.  Workload-match guards first: a baseline
#: from a different session count, image/chunk size or endpoint mix
#: is not comparable.
SERVER_GATE_LOWER_IS_BETTER = ("p99_session_ms", "peak_rss_kb")
SERVER_GATE_HIGHER_IS_BETTER = ("req_per_s",)
SERVER_WORKLOAD_KEYS = ("sessions", "image_bytes", "chunk_bytes",
                        "endpoint_mix")

#: Per-endpoint latency gate (bench schema v6): every endpoint class
#: present in *both* artifacts has its p50/p99 held to tolerance, so a
#: regression that hides inside the aggregate (e.g. manifest latency
#: convoying behind signing while cheap chunk requests keep req/s up)
#: still trips the gate.
SERVER_ENDPOINT_GATE_METRICS = ("p50_ms", "p99_ms")

#: Allowed slowdown before the gate trips (0.20 = +20 %); generous
#: because wall-clock benches on shared CI hosts are noisy.
DEFAULT_TOLERANCE = 0.20


def compare_to_baseline(results: Dict[str, object],
                        baseline: Dict[str, object],
                        tolerance: float = DEFAULT_TOLERANCE
                        ) -> List[str]:
    """Regression-gate a fresh bench run against a baseline artifact.

    Returns human-readable problems (empty = no regression): any
    :data:`GATE_METRICS` entry more than ``tolerance`` slower than the
    baseline, a baseline from a different workload (device count or
    image size), or a baseline missing the gated metrics entirely.
    Getting *faster* never trips the gate.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    problems: List[str] = []
    current = results.get("campaign")
    base = baseline.get("campaign")
    if not isinstance(current, dict) or not isinstance(base, dict):
        # Server-only artifacts (the swarm bench) carry no campaign
        # section at all — gate their `server` sections against each
        # other instead.
        cur_server = results.get("server")
        base_server = baseline.get("server")
        if isinstance(cur_server, dict) and isinstance(base_server,
                                                       dict):
            _gate_server(problems, cur_server, base_server, tolerance)
            return problems
        return ["baseline or current results carry no campaign section"]
    for key in ("devices", "image_bytes"):
        if current.get(key) != base.get(key):
            return ["baseline ran %s=%r but this run used %r — "
                    "regenerate the baseline for this workload"
                    % (key, base.get(key), current.get(key))]
    _gate_section(problems, current, base, GATE_METRICS, tolerance)
    # fast_process landed after the original gate; gate it only when the
    # baseline already has it, so old baselines keep working.
    if isinstance(base.get("fast_process_seconds"), (int, float)):
        _gate_section(problems, current, base, ("fast_process_seconds",),
                      tolerance)
    # Optional sections — gated only when both artifacts carry them.
    cur_io = results.get("campaign_io")
    base_io = baseline.get("campaign_io")
    if isinstance(cur_io, dict) and isinstance(base_io, dict):
        for key in ("devices", "image_bytes", "host_rtt_seconds"):
            if cur_io.get(key) != base_io.get(key):
                problems.append(
                    "campaign_io baseline ran %s=%r but this run used %r — "
                    "regenerate the baseline for this workload"
                    % (key, base_io.get(key), cur_io.get(key)))
                break
        else:
            _gate_section(problems, cur_io, base_io, IO_GATE_METRICS,
                          tolerance, prefix="campaign_io ")
    cur_delta = results.get("delta_generation")
    base_delta = baseline.get("delta_generation")
    if isinstance(cur_delta, dict) and isinstance(base_delta, dict):
        if cur_delta.get("firmware_bytes") != base_delta.get("firmware_bytes"):
            problems.append(
                "delta_generation baseline ran firmware_bytes=%r but this "
                "run used %r — regenerate the baseline for this workload"
                % (base_delta.get("firmware_bytes"),
                   cur_delta.get("firmware_bytes")))
        else:
            _gate_section(problems, cur_delta, base_delta,
                          DELTA_GATE_METRICS, tolerance,
                          prefix="delta_generation ")
    cur_scale = results.get("fleet_scale")
    base_scale = baseline.get("fleet_scale")
    if isinstance(cur_scale, dict) and isinstance(base_scale, dict):
        for key in ("devices", "image_bytes"):
            if cur_scale.get(key) != base_scale.get(key):
                problems.append(
                    "fleet_scale baseline ran %s=%r but this run used %r — "
                    "regenerate the baseline for this workload"
                    % (key, base_scale.get(key), cur_scale.get(key)))
                break
        else:
            _gate_section(problems, cur_scale, base_scale,
                          FLEET_SCALE_LOWER_IS_BETTER, tolerance,
                          prefix="fleet_scale ")
            for metric in FLEET_SCALE_HIGHER_IS_BETTER:
                old = base_scale.get(metric)
                new = cur_scale.get(metric)
                if not isinstance(old, (int, float)) or old <= 0:
                    problems.append(
                        "baseline has no usable fleet_scale %r" % metric)
                    continue
                if not isinstance(new, (int, float)):
                    problems.append(
                        "this run produced no fleet_scale %r" % metric)
                    continue
                if new < old * (1.0 - tolerance):
                    problems.append(
                        "fleet_scale %s regressed: %.1f vs baseline %.1f "
                        "(-%.0f%%, tolerance %.0f%%)"
                        % (metric, new, old, 100.0 * (old - new) / old,
                           100.0 * tolerance))
    cur_server = results.get("server")
    base_server = baseline.get("server")
    if isinstance(cur_server, dict) and isinstance(base_server, dict):
        _gate_server(problems, cur_server, base_server, tolerance)
    return problems


def _gate_server(problems: List[str], current: Dict[str, object],
                 base: Dict[str, object], tolerance: float) -> None:
    """Gate the swarm bench's ``server`` section (schema v5/v6)."""
    for key in SERVER_WORKLOAD_KEYS:
        if current.get(key) != base.get(key):
            problems.append(
                "server baseline ran %s=%r but this run used %r — "
                "regenerate the baseline for this workload"
                % (key, base.get(key), current.get(key)))
            return
    _gate_section(problems, current, base,
                  SERVER_GATE_LOWER_IS_BETTER, tolerance,
                  prefix="server ")
    _gate_server_endpoints(problems, current, base, tolerance)
    for metric in SERVER_GATE_HIGHER_IS_BETTER:
        old = base.get(metric)
        new = current.get(metric)
        if not isinstance(old, (int, float)) or old <= 0:
            problems.append("baseline has no usable server %r"
                            % metric)
            continue
        if not isinstance(new, (int, float)):
            problems.append("this run produced no server %r" % metric)
            continue
        if new < old * (1.0 - tolerance):
            problems.append(
                "server %s regressed: %.1f vs baseline %.1f "
                "(-%.0f%%, tolerance %.0f%%)"
                % (metric, new, old, 100.0 * (old - new) / old,
                   100.0 * tolerance))
    if isinstance(current.get("trace_overhead"), dict):
        # Tracing-overhead budget (PR 9): when the current run measured
        # an on-vs-off pair (`cli swarm --trace`), hold tracing-on to
        # within its req/s budget regardless of what the baseline ran.
        from .swarm import trace_overhead_problems
        problems.extend("server " + p
                        for p in trace_overhead_problems(current))


def _gate_server_endpoints(problems: List[str],
                           current: Dict[str, object],
                           base: Dict[str, object],
                           tolerance: float) -> None:
    """Per-endpoint p50/p99 latency gate over the classes both
    artifacts broke out (the endpoint_mix workload guard already
    matched, so the classes carry comparable traffic)."""
    cur_eps = current.get("endpoints")
    base_eps = base.get("endpoints")
    if not isinstance(cur_eps, dict) or not isinstance(base_eps, dict):
        return
    for cls in sorted(set(cur_eps) & set(base_eps)):
        cur_entry = cur_eps.get(cls)
        base_entry = base_eps.get(cls)
        if not isinstance(cur_entry, dict) \
                or not isinstance(base_entry, dict):
            continue
        for metric in SERVER_ENDPOINT_GATE_METRICS:
            old = base_entry.get(metric)
            new = cur_entry.get(metric)
            if not isinstance(old, (int, float)) or old <= 0:
                continue      # v5 baselines may lack a class's numbers
            if not isinstance(new, (int, float)):
                problems.append(
                    "this run produced no server endpoint %s %s"
                    % (cls, metric))
                continue
            if new > old * (1.0 + tolerance):
                problems.append(
                    "server endpoint %s %s regressed: %.3f ms vs "
                    "baseline %.3f ms (+%.0f%%, tolerance %.0f%%)"
                    % (cls, metric, new, old,
                       100.0 * (new - old) / old, 100.0 * tolerance))


def _gate_section(problems: List[str], current: Dict[str, object],
                  base: Dict[str, object], metrics, tolerance: float,
                  prefix: str = "") -> None:
    """Append tolerance violations for ``metrics`` to ``problems``."""
    for metric in metrics:
        old = base.get(metric)
        new = current.get(metric)
        if not isinstance(old, (int, float)) or old <= 0:
            problems.append("baseline has no usable %s%r" % (prefix, metric))
            continue
        if not isinstance(new, (int, float)):
            problems.append("this run produced no %s%r" % (prefix, metric))
            continue
        if new > old * (1.0 + tolerance):
            problems.append(
                "%s%s regressed: %.3f s vs baseline %.3f s "
                "(+%.0f%%, tolerance %.0f%%)"
                % (prefix, metric, new, old, 100.0 * (new - old) / old,
                   100.0 * tolerance))


def format_summary(results: Dict[str, object]) -> str:
    sha = results["sha256"]
    ver = results["ecdsa_verify"]
    camp = results["campaign"]
    lines = [
        "SHA-256      : %8.1f -> %8.1f MB/s   (%sx)"
        % (sha["reference_mb_per_s"], sha["fast_mb_per_s"], sha["speedup"]),
        "ECDSA verify : %8.1f -> %8.1f op/s   (%sx)"
        % (ver["reference_verifies_per_s"], ver["fast_verifies_per_s"],
           ver["speedup"]),
        "delta (%3dk) : %.3f s (bsdiff %.3f + lzss %.3f)"
        % (results["delta_generation"]["firmware_bytes"] // 1024,
           results["delta_generation"]["total_seconds"],
           results["delta_generation"]["bsdiff_seconds"],
           results["delta_generation"]["lzss_seconds"]),
        "campaign %3dd: %6.2f s serial/reference -> %5.2f s fast/parallel"
        % (camp["devices"], camp["reference_serial_seconds"],
           camp["fast_parallel_seconds"]),
        "               %6.2f -> %6.2f devices/s  (%sx end-to-end)"
        % (camp["reference_serial_devices_per_s"],
           camp["fast_parallel_devices_per_s"], camp["speedup"]),
    ]
    if isinstance(camp.get("fast_process_seconds"), (int, float)):
        lines.append(
            "               cpu profile: serial %.2f s, threads %.2f s, "
            "processes %.2f s"
            % (camp["fast_serial_seconds"], camp["fast_parallel_seconds"],
               camp["fast_process_seconds"]))
    camp_io = results.get("campaign_io")
    if isinstance(camp_io, dict):
        lines.append(
            "campaign io  : rtt %.0f ms — serial %.2f s, threads %.2f s "
            "(%sx), processes %.2f s (%sx)"
            % (1000.0 * camp_io.get("host_rtt_seconds", 0.0),
               camp_io["fast_serial_seconds"],
               camp_io["fast_parallel_seconds"], camp_io["thread_speedup"],
               camp_io["fast_process_seconds"], camp_io["process_speedup"]))
    scale = results.get("fleet_scale")
    if isinstance(scale, dict):
        lines.append(
            "fleet scale  : %d devices in %.2f s (%.0f devices/s, "
            "%d hydrations, %d B/row vs %d B pickled, rss %.1f MB)"
            % (scale["devices"], scale["scale_seconds"],
               scale["devices_per_s"], scale["hydrations"],
               scale["columnar_bytes_per_row"],
               scale["pickle_bytes_per_record"],
               scale["peak_rss_kb"] / 1024.0))
    return "\n".join(lines)


def format_delta_summary(results: Dict[str, object]) -> str:
    fastpath = results["delta_fastpath"]
    return (
        "delta fast path (%dk): %.3f s -> %.3f s (%sx, byte-identical)"
        % (fastpath["firmware_bytes"] // 1024,
           fastpath["reference"]["total_seconds"],
           fastpath["fast"]["total_seconds"], fastpath["speedup"]))
