"""Fleet-scale performance benchmark harness.

Measures the hot path the ROADMAP's "millions of devices" north star
depends on, under both crypto engines and both wave executors:

* SHA-256 throughput (MB/s) — reference (from-scratch) vs. fast
  (hashlib) engine;
* ECDSA verify throughput (verifies/s) — plain Shamir-trick verify vs.
  fixed-window precomputed tables (distinct digests, so the
  verification cache is *not* what is being measured);
* delta generation time — bsdiff + LZSS over a firmware pair (engine
  independent, but it gates campaign start-up);
* end-to-end campaign throughput (devices/s) on a seeded fleet, for
  the seed path (reference engine, serial executor), the fast engine
  alone, and the full fast path (fast engine + parallel executor) —
  asserting along the way that all three produce the *identical*
  :class:`~repro.fleet.campaign.CampaignReport`.

Results are written to ``BENCH_fleet.json`` (repo root by convention)
so subsequent PRs can track the trajectory::

    python -m repro.tools.cli bench --devices 50 --out BENCH_fleet.json

``benchmarks/test_perf_fleet.py`` runs the same harness under the
``perf`` pytest marker (excluded from the tier-1 suite) and asserts the
headline speedup.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional

from ..core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from ..crypto import generate_keypair, use_engine
from ..crypto.engine import FastEngine, get_engine
from ..delta import diff as bsdiff_diff
from ..compression import compress as lzss_compress
from ..fleet import (
    Campaign,
    DeviceRecord,
    ParallelWaveExecutor,
    RolloutPolicy,
    SerialWaveExecutor,
)
from ..memory import MemoryLayout
from ..obs import MetricsRegistry, bind_engine, bind_server
from ..platform import NRF52840, ZEPHYR
from ..sim import SimulatedDevice
from ..workload import FirmwareGenerator
from .report import write_report

__all__ = [
    "bench_sha256",
    "bench_verify",
    "bench_delta",
    "bench_campaign",
    "run_all",
    "write_results",
    "compare_to_baseline",
    "GATE_METRICS",
    "DEFAULT_TOLERANCE",
]

APP_ID = 0x55504B49
LINK_OFFSET = 0x8000


def _mb_per_s(nbytes: int, seconds: float) -> float:
    return nbytes / (1024.0 * 1024.0) / seconds if seconds > 0 else 0.0


# -- primitives -------------------------------------------------------------


def bench_sha256(reference_bytes: int = 128 * 1024,
                 fast_bytes: int = 16 * 1024 * 1024) -> Dict[str, float]:
    """SHA-256 MB/s per engine (sized so each run takes well under 1 s)."""
    results: Dict[str, float] = {}
    for name, nbytes in (("reference", reference_bytes),
                         ("fast", fast_bytes)):
        data = b"\xA5" * nbytes
        with use_engine(name) as engine:
            engine.sha256(b"warmup")
            start = time.perf_counter()
            engine.sha256(data)
            elapsed = time.perf_counter() - start
        results["%s_mb_per_s" % name] = round(_mb_per_s(nbytes, elapsed), 2)
    results["speedup"] = round(
        results["fast_mb_per_s"] / results["reference_mb_per_s"], 1)
    return results


def bench_verify(reference_iterations: int = 20,
                 fast_iterations: int = 60) -> Dict[str, float]:
    """ECDSA verifies/s per engine, over *distinct* digests.

    Distinct digests keep the fast engine's verification cache out of
    the measurement: what is timed is the table-accelerated scalar
    math, i.e. the cost of verifying signatures never seen before.
    """
    key = generate_keypair(b"bench-verify")
    public = key.public_key()
    count = max(reference_iterations, fast_iterations)
    messages = [b"bench message %06d" % i for i in range(count)]
    with use_engine("fast"):
        signatures = [key.sign(message) for message in messages]

    results: Dict[str, float] = {}
    for name, iterations in (("reference", reference_iterations),
                             ("fast", fast_iterations)):
        with use_engine(name) as engine:
            if isinstance(engine, FastEngine):
                engine.clear_caches()
                # Warm past table_threshold so steady-state table math
                # is measured, not the one-time table build.
                for i in range(engine.table_threshold + 1):
                    public.verify(signatures[i], messages[i])
            start = time.perf_counter()
            for i in range(iterations):
                ok = public.verify(signatures[i], messages[i])
                assert ok
            elapsed = time.perf_counter() - start
        results["%s_verifies_per_s" % name] = round(iterations / elapsed, 1)
    results["speedup"] = round(
        results["fast_verifies_per_s"] / results["reference_verifies_per_s"],
        1)
    return results


def bench_delta(image_size: int = 48 * 1024) -> Dict[str, float]:
    """bsdiff + LZSS generation time for one firmware pair."""
    generator = FirmwareGenerator(seed=b"bench-delta")
    old = generator.firmware(image_size, image_id=1)
    new = generator.os_version_change(old, revision=2)
    start = time.perf_counter()
    patch = bsdiff_diff(old, new)
    diff_seconds = time.perf_counter() - start
    start = time.perf_counter()
    delta = lzss_compress(patch)
    compress_seconds = time.perf_counter() - start
    return {
        "firmware_bytes": image_size,
        "patch_bytes": len(patch),
        "delta_bytes": len(delta),
        "bsdiff_seconds": round(diff_seconds, 4),
        "lzss_seconds": round(compress_seconds, 4),
        "total_seconds": round(diff_seconds + compress_seconds, 4),
    }


# -- campaign ---------------------------------------------------------------


def _build_campaign(device_count: int, image_size: int,
                    executor, metrics=None) -> Campaign:
    """A seeded fleet at v1 with v2 published, ready to run.

    Construction is fully deterministic, so every configuration under
    test drives a bit-identical fleet against a bit-identical release.
    """
    generator = FirmwareGenerator(seed=b"bench-campaign")
    fw_v1 = generator.firmware(image_size, image_id=1)
    fw_v2 = generator.os_version_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))

    fleet: List[DeviceRecord] = []
    for index in range(device_count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x4000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        fleet.append(DeviceRecord(
            name="bench-%03d" % index,
            device=device,
            transport="pull" if index % 2 else "push",
        ))

    server.publish(vendor.release(fw_v2, 2))
    return Campaign(server, fleet, RolloutPolicy(canary_fraction=0.1),
                    executor=executor, metrics=metrics)


def bench_campaign(device_count: int = 50,
                   image_size: int = 24 * 1024,
                   max_workers: Optional[int] = None) -> Dict[str, object]:
    """End-to-end campaign throughput for the three configurations."""
    configurations = (
        ("reference_serial", "reference", SerialWaveExecutor()),
        ("fast_serial", "fast", SerialWaveExecutor()),
        ("fast_parallel", "fast",
         ParallelWaveExecutor(max_workers=max_workers)),
    )
    results: Dict[str, object] = {
        "devices": device_count,
        "image_bytes": image_size,
    }
    reports = {}
    crypto_stats: Dict[str, object] = {}
    server_stats: Dict[str, object] = {}
    metrics_out: Dict[str, object] = {}
    for label, engine_name, executor in configurations:
        # One registry per configuration: campaign wave counters and the
        # engine/server stats mirrors land side by side.  Observation is
        # purely additive — the CampaignReport equality assertion below
        # is what proves it.
        registry = MetricsRegistry()
        executor.metrics = registry
        campaign = _build_campaign(device_count, image_size, executor,
                                   metrics=registry)
        bind_server(registry, campaign.server)
        with use_engine(engine_name) as engine:
            if isinstance(engine, FastEngine):
                engine.clear_caches()   # cold start: tables count too
                bind_engine(registry, engine)
            start = time.perf_counter()
            report = campaign.run()
            elapsed = time.perf_counter() - start
            crypto_stats[label] = (engine.stats.to_dict()
                                   if isinstance(engine, FastEngine)
                                   else None)
        server_stats[label] = campaign.server.stats.to_dict()
        metrics_out[label] = registry.snapshot()
        if report.aborted or len(report.updated) != device_count:
            raise AssertionError(
                "benchmark campaign %s did not fully succeed: %r"
                % (label, report.to_dict()))
        reports[label] = report.to_dict()
        results["%s_seconds" % label] = round(elapsed, 3)
        results["%s_devices_per_s" % label] = round(
            device_count / elapsed, 2)
    if not (reports["reference_serial"] == reports["fast_serial"]
            == reports["fast_parallel"]):
        raise AssertionError(
            "campaign reports diverged between configurations")
    results["reports_identical"] = True
    results["speedup"] = round(
        results["reference_serial_seconds"]
        / results["fast_parallel_seconds"], 2)
    if isinstance(max_workers, int):
        results["max_workers"] = max_workers
    results["crypto_stats"] = crypto_stats
    results["server_stats"] = server_stats
    results["metrics"] = metrics_out
    return results


# -- harness ----------------------------------------------------------------


def run_all(device_count: int = 50, image_size: int = 24 * 1024,
            max_workers: Optional[int] = None) -> Dict[str, object]:
    """Run every benchmark; returns the JSON-ready result document."""
    previous = get_engine().name
    campaign = bench_campaign(device_count, image_size, max_workers)
    results = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "sha256": bench_sha256(),
        "ecdsa_verify": bench_verify(),
        "delta_generation": bench_delta(),
        # Engine/server telemetry lives top-level so the schema
        # validator can insist on it without digging into the campaign.
        "crypto_stats": campaign.pop("crypto_stats"),
        "server_stats": campaign.pop("server_stats"),
        "metrics": campaign.pop("metrics"),
        "campaign": campaign,
    }
    assert get_engine().name == previous, "bench must not leak engine state"
    return results


def write_results(results: Dict[str, object], path: str) -> str:
    """Write a schema-stamped bench artifact (see ``tools/report.py``)."""
    return write_report(results, path, "bench")


#: Campaign wall-clock metrics the ``--baseline`` gate compares — one
#: per engine/executor configuration, so a regression in any one of
#: the three paths (reference, fast, fast+parallel) trips the gate.
GATE_METRICS = ("reference_serial_seconds", "fast_serial_seconds",
                "fast_parallel_seconds")

#: Allowed slowdown before the gate trips (0.20 = +20 %); generous
#: because wall-clock benches on shared CI hosts are noisy.
DEFAULT_TOLERANCE = 0.20


def compare_to_baseline(results: Dict[str, object],
                        baseline: Dict[str, object],
                        tolerance: float = DEFAULT_TOLERANCE
                        ) -> List[str]:
    """Regression-gate a fresh bench run against a baseline artifact.

    Returns human-readable problems (empty = no regression): any
    :data:`GATE_METRICS` entry more than ``tolerance`` slower than the
    baseline, a baseline from a different workload (device count or
    image size), or a baseline missing the gated metrics entirely.
    Getting *faster* never trips the gate.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    problems: List[str] = []
    current = results.get("campaign")
    base = baseline.get("campaign")
    if not isinstance(current, dict) or not isinstance(base, dict):
        return ["baseline or current results carry no campaign section"]
    for key in ("devices", "image_bytes"):
        if current.get(key) != base.get(key):
            return ["baseline ran %s=%r but this run used %r — "
                    "regenerate the baseline for this workload"
                    % (key, base.get(key), current.get(key))]
    for metric in GATE_METRICS:
        old = base.get(metric)
        new = current.get(metric)
        if not isinstance(old, (int, float)) or old <= 0:
            problems.append("baseline has no usable %r" % metric)
            continue
        if not isinstance(new, (int, float)):
            problems.append("this run produced no %r" % metric)
            continue
        if new > old * (1.0 + tolerance):
            problems.append(
                "%s regressed: %.3f s vs baseline %.3f s "
                "(+%.0f%%, tolerance %.0f%%)"
                % (metric, new, old, 100.0 * (new - old) / old,
                   100.0 * tolerance))
    return problems


def format_summary(results: Dict[str, object]) -> str:
    sha = results["sha256"]
    ver = results["ecdsa_verify"]
    camp = results["campaign"]
    lines = [
        "SHA-256      : %8.1f -> %8.1f MB/s   (%sx)"
        % (sha["reference_mb_per_s"], sha["fast_mb_per_s"], sha["speedup"]),
        "ECDSA verify : %8.1f -> %8.1f op/s   (%sx)"
        % (ver["reference_verifies_per_s"], ver["fast_verifies_per_s"],
           ver["speedup"]),
        "delta (%3dk) : %.3f s (bsdiff %.3f + lzss %.3f)"
        % (results["delta_generation"]["firmware_bytes"] // 1024,
           results["delta_generation"]["total_seconds"],
           results["delta_generation"]["bsdiff_seconds"],
           results["delta_generation"]["lzss_seconds"]),
        "campaign %3dd: %6.2f s serial/reference -> %5.2f s fast/parallel"
        % (camp["devices"], camp["reference_serial_seconds"],
           camp["fast_parallel_seconds"]),
        "               %6.2f -> %6.2f devices/s  (%sx end-to-end)"
        % (camp["reference_serial_devices_per_s"],
           camp["fast_parallel_devices_per_s"], camp["speedup"]),
    ]
    return "\n".join(lines)
