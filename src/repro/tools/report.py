"""Schema-versioned report artifacts shared by the CLI tools.

``bench``, ``chaos``, ``trace`` and ``fleetview`` each emit a JSON
artifact that CI
jobs and dashboards consume long after the code that wrote them has
moved on.  This module is the single place that knows how those files
are stamped and validated:

* :func:`write_report` stamps ``report_kind`` and ``schema_version``
  (from :data:`SCHEMA_VERSIONS`) before writing deterministic,
  sorted-key JSON.
* :func:`load_report` round-trips any artifact — including *legacy*
  files written before this module existed (bench's old ``{"schema":
  1}`` stamp, chaos reports with no stamp at all) — and reports which
  kind and version it found.
* :func:`validate_data` / :func:`validate_file` check an artifact
  against the expectations of its kind, so ``cli report --validate``
  can fail CI on schema drift instead of letting a consumer discover
  it at parse time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = [
    "SCHEMA_VERSIONS",
    "ReportError",
    "write_report",
    "load_report",
    "validate_data",
    "validate_file",
]

#: Current schema version per report kind.  Bump a kind's version when
#: its document shape changes; teach :func:`validate_data` about the
#: old shape so existing artifacts keep loading.
SCHEMA_VERSIONS: Dict[str, int] = {"bench": 6, "chaos": 4, "trace": 2,
                                   "fleetview": 1, "delta": 1}

#: Keys every bench-v5+ ``server`` section (the swarm bench artifact,
#: ``BENCH_server.json``) must carry.
SERVER_SECTION_KEYS = ("sessions", "failed_sessions", "concurrency",
                       "requests", "elapsed_seconds", "req_per_s",
                       "p50_session_ms", "p99_session_ms", "endpoints",
                       "endpoint_mix", "peak_rss_kb", "image_bytes",
                       "chunk_bytes")

#: Endpoint classes a bench-v6 server-only artifact must break out —
#: the per-endpoint p50/p99 sections the ``--baseline`` gate compares.
SERVER_ENDPOINT_CLASSES = ("register", "token", "manifest", "chunk",
                           "report")


class ReportError(ValueError):
    """An artifact could not be recognised or failed validation."""


def write_report(data: Dict[str, object], path: str, kind: str) -> str:
    """Stamp ``data`` with its kind/version and write it to ``path``.

    The input dict is stamped in place (callers usually built it for
    this purpose) and written with sorted keys and a trailing newline
    so artifacts diff cleanly.
    """
    if kind not in SCHEMA_VERSIONS:
        raise ReportError("unknown report kind %r (known: %s)"
                          % (kind, ", ".join(sorted(SCHEMA_VERSIONS))))
    data["report_kind"] = kind
    data["schema_version"] = SCHEMA_VERSIONS[kind]
    data.pop("schema", None)  # pre-versioning bench stamp
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> Tuple[str, int, Dict[str, object]]:
    """Read an artifact; returns ``(kind, schema_version, data)``.

    Stamped files are taken at their word.  Legacy files are detected
    by shape: bench's old ``{"schema": 1}`` stamp, or an unstamped
    chaos report (recognised by its ``calibration`` + ``results``
    keys).  Anything else raises :class:`ReportError`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ReportError("%s: top-level JSON must be an object" % path)

    kind = data.get("report_kind")
    if kind is not None:
        version = data.get("schema_version")
        if not isinstance(version, int):
            raise ReportError(
                "%s: stamped %r report has no integer schema_version"
                % (path, kind))
        return str(kind), version, data

    # Legacy detection ----------------------------------------------------
    if data.get("schema") == 1 and "campaign" in data:
        return "bench", 1, data
    if "calibration" in data and "results" in data:
        return "chaos", 1, data
    raise ReportError(
        "%s: unrecognised report (no report_kind stamp and no known "
        "legacy shape)" % path)


def _require(data: Dict[str, object], keys: List[str],
             kind: str) -> List[str]:
    return ["%s report missing key %r" % (kind, key)
            for key in keys if key not in data]


def validate_data(kind: str, version: int,
                  data: Dict[str, object]) -> List[str]:
    """Return a list of human-readable problems (empty = valid)."""
    errors: List[str] = []
    current = SCHEMA_VERSIONS.get(kind)
    if current is None:
        return ["unknown report kind %r" % kind]
    if version > current:
        errors.append("%s schema_version %d is newer than this tree "
                      "understands (%d)" % (kind, version, current))
        return errors

    if kind == "bench":
        # v5 introduced *server-only* bench artifacts (the swarm bench,
        # BENCH_server.json): a `server` section and none of the core
        # in-process sections.  Those skip the campaign requirements.
        server_only = (version >= 5 and "server" in data
                       and "campaign" not in data)
        if not server_only:
            errors += _require(data, ["sha256", "ecdsa_verify",
                                      "delta_generation", "campaign"],
                               kind)
            campaign = data.get("campaign")
            if isinstance(campaign, dict):
                if campaign.get("reports_identical") is not True:
                    errors.append("bench campaign reports diverged "
                                  "between engine configurations")
            if version >= 2:
                errors += _require(data, ["crypto_stats",
                                          "server_stats", "metrics"],
                                   kind)
            if version >= 3:
                errors += _require(data, ["campaign_io",
                                          "calibration"], kind)
                campaign_io = data.get("campaign_io")
                if isinstance(campaign_io, dict):
                    if campaign_io.get("reports_identical") is not True:
                        errors.append("bench campaign_io reports "
                                      "diverged between executor "
                                      "configurations")
            if version >= 4:
                errors += _require(data, ["fleet_scale"], kind)
                fleet_scale = data.get("fleet_scale")
                if isinstance(fleet_scale, dict):
                    errors += ["bench fleet_scale missing key %r" % key
                               for key in ("devices", "devices_per_s",
                                           "peak_rss_kb",
                                           "columnar_bytes_per_row",
                                           "pickle_bytes_per_record")
                               if key not in fleet_scale]
                    if fleet_scale.get("sampled_parity") is not True:
                        errors.append("bench fleet_scale sampled "
                                      "per-device entries diverged "
                                      "from the hydrated path")
        if version >= 5 and "server" in data:
            server = data.get("server")
            if not isinstance(server, dict):
                errors.append("bench server section must be an object "
                              "(got %s)" % type(server).__name__)
            else:
                errors += ["bench server section missing key %r" % key
                           for key in SERVER_SECTION_KEYS
                           if key not in server]
                if server.get("failed_sessions") != 0:
                    errors.append(
                        "bench server run had %r failed sessions — "
                        "latency/throughput figures are only "
                        "meaningful over a fully correct run"
                        % server.get("failed_sessions"))
                endpoints = server.get("endpoints")
                if isinstance(endpoints, dict):
                    for cls, entry in sorted(endpoints.items()):
                        if not isinstance(entry, dict) or not {
                                "count", "p50_ms",
                                "p99_ms"} <= set(entry):
                            errors.append(
                                "bench server endpoint %r needs "
                                "count/p50_ms/p99_ms" % cls)
                    if version >= 6:
                        # v6: the per-endpoint gate needs every class
                        # broken out with real numbers, not just
                        # whatever classes happened to be present.
                        for cls in SERVER_ENDPOINT_CLASSES:
                            entry = endpoints.get(cls)
                            if not isinstance(entry, dict):
                                errors.append(
                                    "bench v6 server section must "
                                    "break out endpoint %r" % cls)
                                continue
                            for metric in ("p50_ms", "p99_ms"):
                                if not isinstance(entry.get(metric),
                                                  (int, float)):
                                    errors.append(
                                        "bench v6 server endpoint %r "
                                        "needs a numeric %s"
                                        % (cls, metric))
                errors += _server_profile_errors(server)
    elif kind == "delta":
        errors += _require(data, ["delta_fastpath"], kind)
        fastpath = data.get("delta_fastpath")
        if isinstance(fastpath, dict):
            errors += ["delta report delta_fastpath missing key %r" % key
                       for key in ("fast", "reference", "speedup",
                                   "byte_identical", "firmware_bytes")
                       if key not in fastpath]
            if fastpath.get("byte_identical") is not True:
                errors.append("delta fast path output is not byte-identical "
                              "to the reference path")
    elif kind == "chaos":
        errors += _require(data, ["calibration", "results", "bricked"],
                           kind)
        results = data.get("results")
        if isinstance(results, list):
            bricked = sum(1 for r in results
                          if isinstance(r, dict)
                          and r.get("status") == "bricked")
            if data.get("bricked") != bricked:
                errors.append(
                    "chaos bricked count %r does not match results (%d)"
                    % (data.get("bricked"), bricked))
            if version >= 2:
                missing = sum(1 for r in results
                              if isinstance(r, dict)
                              and "black_box" not in r)
                if missing:
                    errors.append("chaos v2 report has %d results with "
                                  "no black_box post-mortem" % missing)
        if version >= 3:
            phases = data.get("interrupted_phases")
            if not isinstance(phases, dict):
                errors.append("chaos v3 report needs an "
                              "interrupted_phases phase->count object")
        if version >= 4:
            if "correlated" not in data:
                errors.append("chaos v4 report needs a 'correlated' key "
                              "(null when the correlated sweep was not "
                              "run)")
            correlated = data.get("correlated")
            if isinstance(correlated, dict):
                errors += ["chaos correlated section missing key %r" % key
                           for key in ("devices", "grid_points",
                                       "domains", "results", "bricked",
                                       "kills", "resume_identical_all",
                                       "retry_amplification", "journal")
                           if key not in correlated]
                corr_results = correlated.get("results")
                if isinstance(corr_results, list):
                    corr_bricked = sum(
                        int(r.get("bricked", 0)) for r in corr_results
                        if isinstance(r, dict))
                    if correlated.get("bricked") != corr_bricked:
                        errors.append(
                            "chaos correlated bricked count %r does not "
                            "match results (%d)"
                            % (correlated.get("bricked"), corr_bricked))
                if correlated.get("kills") and \
                        correlated.get("resume_identical_all") is not True:
                    errors.append("chaos correlated coordinator-kill "
                                  "resume reports diverged from the "
                                  "uninterrupted twins")
            elif correlated is not None:
                errors.append("chaos correlated section must be an "
                              "object or null (got %s)"
                              % type(correlated).__name__)
    elif kind == "fleetview":
        errors += _require(data, ["devices", "slo_verdict", "campaign",
                                  "telemetry"], kind)
        if data.get("slo_verdict") not in ("ok", "breached"):
            errors.append("fleetview slo_verdict must be 'ok' or "
                          "'breached' (got %r)" % data.get("slo_verdict"))
        telemetry = data.get("telemetry")
        if isinstance(telemetry, dict):
            if data.get("slo_verdict") != telemetry.get("verdict"):
                errors.append("fleetview slo_verdict disagrees with "
                              "telemetry.verdict")
            for wave in telemetry.get("waves", []):
                if not isinstance(wave, dict) or "action" not in wave:
                    errors.append("fleetview telemetry wave entries "
                                  "need an 'action'")
                    break
        campaign = data.get("campaign")
        if isinstance(campaign, dict) and isinstance(
                data.get("devices"), int):
            accounted = sum(len(campaign.get(key, []))
                            for key in ("updated", "failed", "skipped",
                                        "quarantined", "pending"))
            if accounted != data["devices"]:
                errors.append(
                    "fleetview campaign accounts for %d devices, "
                    "fleet has %d" % (accounted, data["devices"]))
    elif kind == "trace":
        # The trace artifact *is* a Chrome-trace document (Perfetto and
        # chrome://tracing ignore the extra top-level keys).  v1 wrote
        # device-plane documents (`configurations` + `metrics`); v2
        # additionally recognises *merged* device+server documents from
        # ``cli swarm --trace``, stamped with a ``join`` section naming
        # the pid lane of each plane so the trace_id join can be
        # checked.
        errors += _require(data, ["traceEvents"], kind)
        if version >= 2 and "join" in data:
            join = data.get("join")
            if not isinstance(join, dict) or not {
                    "device_pid", "server_pid"} <= set(join):
                errors.append("trace join section needs "
                              "device_pid/server_pid")
                join = None
        else:
            # Device-plane document: the v1 shape stays valid under v2.
            errors += _require(data, ["metrics", "configurations"], kind)
            join = None
        events = data.get("traceEvents")
        if isinstance(events, list):
            from ..obs.trace import containment_errors
            errors += containment_errors(events)
            if join is not None:
                errors += _trace_join_errors(events, join)
        elif events is not None:
            errors.append("trace report traceEvents must be a list")
    return errors


def _server_profile_errors(server: Dict[str, object]) -> List[str]:
    """Validate the optional ``server.profile`` block (v6, from
    ``cli swarm --profile``): a per-endpoint phase breakdown aggregated
    from asynctrace spans.  Absent is fine — profiling is opt-in."""
    profile = server.get("profile")
    if profile is None:
        return []
    if not isinstance(profile, dict):
        return ["bench server profile must be an object (got %s)"
                % type(profile).__name__]
    errors: List[str] = []
    endpoints = profile.get("endpoints")
    if not isinstance(endpoints, dict):
        return ["bench server profile needs an 'endpoints' object"]
    for cls, entry in sorted(endpoints.items()):
        if not isinstance(entry, dict) or "requests" not in entry \
                or not isinstance(entry.get("phases"), dict):
            errors.append("bench server profile endpoint %r needs "
                          "requests + phases" % cls)
            continue
        for phase, stats in sorted(entry["phases"].items()):
            if not isinstance(stats, dict) or not {
                    "count", "p50_ms", "p99_ms",
                    "total_ms"} <= set(stats):
                errors.append(
                    "bench server profile phase %s.%s needs "
                    "count/p50_ms/p99_ms/total_ms" % (cls, phase))
    return errors


def _trace_join_errors(events: List[Dict[str, object]],
                       join: Dict[str, object]) -> List[str]:
    """Check that server-plane spans join device sessions by trace_id.

    A merged swarm trace carries one ``device.session`` root span per
    simulated device (``join["device_pid"]``) and one request root span
    per server-side request (``join["server_pid"]``).  Cross-process
    parentage is deliberately *not* expressed via parent_id (pids are
    separate span namespaces); the join contract is that every server
    root's ``args.trace_id`` was minted by some device session.
    """
    device_pid = join.get("device_pid")
    server_pid = join.get("server_pid")
    device_ids = set()
    server_roots = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args")
        if not isinstance(args, dict) or args.get("parent_id") is not None:
            continue  # only root spans carry the join contract
        trace_id = args.get("trace_id")
        if event.get("pid") == device_pid and trace_id is not None:
            device_ids.add(trace_id)
        elif event.get("pid") == server_pid:
            server_roots.append((event.get("name"), trace_id))
    errors = []
    if not device_ids:
        errors.append("trace join: no device-plane root spans with a "
                      "trace_id under pid %r" % device_pid)
    if not server_roots:
        errors.append("trace join: no server-plane root spans under "
                      "pid %r" % server_pid)
    orphans = sorted({str(tid) for name, tid in server_roots
                      if tid not in device_ids})
    if orphans:
        errors.append(
            "trace join: %d server root span(s) carry trace_ids minted "
            "by no device session (e.g. %s)"
            % (len(orphans), ", ".join(orphans[:3])))
    return errors


def validate_file(path: str) -> List[str]:
    """Load ``path`` and validate it; returns problems (empty = valid)."""
    try:
        kind, version, data = load_report(path)
    except (ReportError, OSError, json.JSONDecodeError) as exc:
        return [str(exc)]
    return validate_data(kind, version, data)
