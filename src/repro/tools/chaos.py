"""Chaos sweep: the anti-bricking invariant under an exhaustive fault grid.

UpKit's central robustness claim (Sect. III/IV): whatever fails during
an update — power, link, server, even the stored bits — the device
always boots a *valid, signed* image.  This harness makes the claim
executable:

1. **calibrate** — run one clean update on a pristine testbed and
   measure the fault axes (flash operations, bytes over the air);
2. **build a grid** — hundreds of :class:`~repro.faults.FaultPoint` s
   spread over every axis: power loss at each write/erase, link outages
   and loss bursts at byte offsets, reboots mid-transfer, bit-rot in
   both slots, server outage windows;
3. **run each point** — a fresh device replays the end-to-end update
   with that fault injected, surviving power cycles the way hardware
   does (RAM lost, flash kept, reboot, retry);
4. **assert the invariant** — after the dust settles a *fresh*
   bootloader (full double-signature + digest verification) must boot
   some valid image.  ``NoValidImage`` means the device is bricked:
   that is the failure the sweep exists to catch.

The sweep is deterministic end to end (seeded links, seeded jitter,
attempt-counted outages) and emits a machine-readable report
(``CHAOS_report.json`` via ``upkit chaos``), so a failing point can be
replayed in isolation from its serialized plan.

Expensive immutable artifacts (identities, signed releases, the factory
image) are built once per sweep in :class:`ChaosLab`; every point still
gets a pristine server, device and link.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core import (
    Bootloader,
    DeviceProfile,
    ENVELOPE_SIZE,
    NoValidImage,
    TransferAbandoned,
    UpdateServer,
    VendorServer,
    install_factory_image,
    make_factory_image,
    make_test_identities,
    provision_device,
)
from ..faults import DeviceRebooted, DomainEvent, DomainPlan, \
    FaultDomain, FaultInjector, FaultKind, FaultPlan, FaultPoint, \
    derive_seed
from ..fleet import (
    BreakerPolicy,
    Campaign,
    CampaignJournal,
    CoordinatorKilled,
    DeviceRecord,
    RetryBudget,
    RetryGovernor,
    RetryPolicy,
    RolloutPolicy,
)
from ..memory import MemoryLayout, PowerLossError
from ..net import BLE_GATT, COAP_6LOWPAN, PayloadBitFlipper, \
    PullTransport, PushTransport, TransportRetryPolicy
from ..platform import NRF52840, ZEPHYR
from ..sim.device import SimulatedDevice
from ..sim.runner import DEFAULT_APP_ID, DEFAULT_DEVICE_ID, \
    DEFAULT_LINK_OFFSET, Testbed
from ..workload import FirmwareGenerator

__all__ = ["ChaosLab", "Calibration", "PointResult", "ChaosReport",
           "calibrate", "build_grid", "run_point", "run_sweep",
           "write_report", "format_summary", "DEFAULT_POINTS",
           "DEFAULT_IMAGE_SIZE",
           "CorrelatedLab", "CorrelatedPoint", "CorrelatedResult",
           "CorrelatedReport", "build_correlated_grid",
           "run_correlated_point", "run_correlated_sweep",
           "format_correlated_summary", "CORRELATED_EVENT_KINDS",
           "KILL_POINTS", "DEFAULT_CORRELATED_DEVICES",
           "DEFAULT_CORRELATED_IMAGE_SIZE"]

DEFAULT_IMAGE_SIZE = 16 * 1024
#: Grid size of the full sweep (the acceptance floor is 200).
DEFAULT_POINTS = 216
#: A single fault point never needs more: one fired fault costs at most
#: a couple of power cycles (transfer + install).
MAX_POWER_CYCLES = 6
#: Transport resume budget during a sweep point: generous enough that a
#: multi-failure outage converges, bounded so a sweep never hangs.
SWEEP_TRANSPORT_RETRY = TransportRetryPolicy(max_attempts=8,
                                             backoff_initial=0.5)


class ChaosLab:
    """Shared, immutable sweep context: firmware, keys, signed releases.

    ``build()`` assembles a pristine testbed (fresh flash, fresh device,
    fresh server) around the cached artifacts — the per-point cost is
    flash allocation and one factory-image write, not key generation
    and signing.
    """

    def __init__(self, image_size: int = DEFAULT_IMAGE_SIZE,
                 slot_configuration: str = "b",
                 transport: str = "push", seed: int = 0) -> None:
        if slot_configuration not in ("a", "b"):
            raise ValueError("slot_configuration must be 'a' or 'b'")
        if transport not in ("push", "pull"):
            raise ValueError("transport must be 'push' or 'pull'")
        self.image_size = image_size
        self.slot_configuration = slot_configuration
        self.transport = transport
        self.seed = seed
        self.target_version = 2

        generator = FirmwareGenerator(seed=b"chaos-%d" % seed)
        self.base_firmware = generator.firmware(image_size, image_id=1)
        self.new_firmware = generator.os_version_change(self.base_firmware,
                                                        revision=2)
        vendor_id, self.server_identity, self.anchors = \
            make_test_identities()
        self.vendor = VendorServer(vendor_id, app_id=DEFAULT_APP_ID,
                                   link_offset=DEFAULT_LINK_OFFSET)
        self.releases = (self.vendor.release(self.base_firmware, 1),
                         self.vendor.release(self.new_firmware,
                                             self.target_version))
        self._factory_image = None

    def build(self) -> Testbed:
        """A pristine testbed: v1 installed, v2 published, zero cost."""
        server = UpdateServer(self.server_identity)
        server.publish(self.releases[0])
        if self._factory_image is None:
            # Signed against the v1-only server (factory state), then
            # reused byte-for-byte for every later device.
            self._factory_image = make_factory_image(server,
                                                     DEFAULT_DEVICE_ID)
        board = NRF52840
        internal = board.make_internal_flash()
        usable = internal.size - 2 * internal.page_size
        slot_size = usable // 2
        slot_size -= slot_size % internal.page_size
        if self.slot_configuration == "a":
            layout = MemoryLayout.configuration_a(internal, slot_size)
        else:
            external = (board.make_external_flash()
                        if board.has_external_flash else None)
            layout = MemoryLayout.configuration_b(internal, slot_size,
                                                  external=external)
        profile = DeviceProfile(
            device_id=DEFAULT_DEVICE_ID,
            app_id=DEFAULT_APP_ID,
            link_offset=DEFAULT_LINK_OFFSET,
            # Full images keep the fault axes identical across points.
            supports_differential=False,
        )
        device = SimulatedDevice(board=board, os_profile=ZEPHYR,
                                 layout=layout, profile=profile,
                                 anchors=self.anchors)
        install_factory_image(layout.get("a"), self._factory_image)
        server.publish(self.releases[1])
        for slot in layout.slots:
            slot.flash.stats.busy_seconds = 0.0
        device.backend.reset_counters()
        return Testbed(vendor=self.vendor, server=server, device=device,
                       anchors=self.anchors)

    def make_transport(self, bed: Testbed, link=None, retry=None):
        cls = PushTransport if self.transport == "push" else PullTransport
        return cls(bed.device, bed.server, link=link, retry=retry,
                   reboot_on_success=False)

    @property
    def link_profile(self):
        return BLE_GATT if self.transport == "push" else COAP_6LOWPAN


# -- calibration --------------------------------------------------------------


@dataclass(frozen=True)
class Calibration:
    """Measured fault-axis extents of one clean end-to-end update."""

    ops_any: int        # flash writes + erases, transfer through install
    ops_write: int
    ops_erase: int
    transfer_bytes: int  # bytes over the air
    fed_bytes: int       # bytes the agent consumed (envelope + payload)

    def to_dict(self) -> Dict[str, int]:
        return {"ops_any": self.ops_any, "ops_write": self.ops_write,
                "ops_erase": self.ops_erase,
                "transfer_bytes": self.transfer_bytes,
                "fed_bytes": self.fed_bytes}


def calibrate(lab: ChaosLab) -> Calibration:
    """Run one fault-free update and measure every fault axis."""
    bed = lab.build()
    device = bed.device
    flashes = FaultInjector._flash_devices(bed)

    fed = {"bytes": 0}
    original_feed = device.feed

    def feed(chunk):
        fed["bytes"] += len(chunk)
        return original_feed(chunk)

    device.feed = feed

    def ops() -> "tuple[int, int]":
        return (sum(flash.stats.write_calls for flash in flashes),
                sum(flash.stats.pages_erased for flash in flashes))

    writes0, erases0 = ops()
    outcome = lab.make_transport(bed).run_update()
    if not outcome.success:
        raise RuntimeError("calibration update failed: %s" % outcome.error)
    result = device.reboot()
    if result.version != lab.target_version:
        raise RuntimeError("calibration boot landed on v%d" % result.version)
    writes1, erases1 = ops()
    return Calibration(
        ops_any=(writes1 - writes0) + (erases1 - erases0),
        ops_write=writes1 - writes0,
        ops_erase=erases1 - erases0,
        transfer_bytes=outcome.bytes_over_air,
        fed_bytes=fed["bytes"],
    )


# -- grid ---------------------------------------------------------------------


def _spread(limit: int, count: int) -> List[int]:
    """``count`` distinct evenly spaced ints in [0, limit)."""
    if limit <= 0:
        return []
    count = max(1, min(count, limit))
    step = limit / count
    return sorted({int(index * step) for index in range(count)})


def build_grid(calibration: Calibration, seed: int = 0,
               points: int = DEFAULT_POINTS,
               image_size: int = DEFAULT_IMAGE_SIZE) -> FaultPlan:
    """Spread ``points`` fault points across every measured axis."""
    if points < 16:
        raise ValueError("a grid needs at least 16 points "
                         "(two per fault family)")
    server_windows = [(0, 1), (1, 1), (2, 1), (0, 2), (1, 2), (0, 3)]
    budget = points - len(server_windows)
    # Fraction of the budget per family; power loss dominates because it
    # is the axis that can actually brick a device.
    shares = [
        (FaultKind.POWER_LOSS_ANY, 0.25, calibration.ops_any, 0),
        (FaultKind.POWER_LOSS_WRITE, 0.14, calibration.ops_write, 0),
        (FaultKind.POWER_LOSS_ERASE, 0.10, calibration.ops_erase, 0),
        (FaultKind.LINK_OUTAGE, 0.14, calibration.transfer_bytes, 2),
        (FaultKind.REBOOT, 0.14, calibration.fed_bytes, 0),
        # A 4x mid-transfer slowdown never breaks the update; it is in
        # the grid so the sweep also proves *degraded* links converge
        # (and feeds the telemetry plane's straggler detector).
        (FaultKind.SLOW_LINK, 0.05, calibration.transfer_bytes, 4),
    ]
    grid: List[FaultPoint] = []
    for kind, share, limit, param in shares:
        for at in _spread(limit, max(2, round(budget * share))):
            grid.append(FaultPoint(kind, at, param))
    burst_width = max(256, calibration.transfer_bytes // 16)
    burst_span = max(1, calibration.transfer_bytes - burst_width)
    for at in _spread(burst_span, max(2, round(budget * 0.07))):
        grid.append(FaultPoint(FaultKind.LOSS_BURST, at, burst_width))
    rot_span = ENVELOPE_SIZE + image_size
    for slot_index in (0, 1):
        for at in _spread(rot_span, max(2, round(budget * 0.055))):
            grid.append(FaultPoint(FaultKind.BIT_ROT, at, slot_index))
    for at, length in server_windows:
        grid.append(FaultPoint(FaultKind.SERVER_OUTAGE, at, length))
    plan = FaultPlan(points=tuple(grid), seed=seed)
    # Small layouts offer fewer distinct flash-op coordinates than their
    # share asked for (configuration A skips the swap entirely), so the
    # deduplicated plan can fall short of the requested size.  Top up on
    # the byte-addressed link axis, whose coordinate space is ~the whole
    # transfer; param=1 outages never collide with the param=2 share.
    shortfall = points - len(plan)
    if shortfall > 0:
        extra = tuple(
            FaultPoint(FaultKind.LINK_OUTAGE, at + 1, 1)
            for at in _spread(calibration.transfer_bytes - 1, shortfall))
        plan = plan.merged_with(FaultPlan(points=extra, seed=seed))
    return plan


# -- per-point execution ------------------------------------------------------


@dataclass
class PointResult:
    """What one fault point did to one device."""

    point: FaultPoint
    status: str                 # "updated" | "not-updated" | "bricked"
    final_version: int
    power_cycles: int
    interruptions: int
    abandoned: bool
    error: Optional[str] = None
    #: The device's black-box post-mortem (``BlackBox.post_mortem``):
    #: what the flight recorder says happened, read back from flash
    #: *after* the injected faults — including which lifecycle phase an
    #: injected power loss interrupted.
    black_box: Optional[Dict[str, object]] = None

    @property
    def bricked(self) -> bool:
        return self.status == "bricked"

    def to_dict(self) -> Dict[str, object]:
        return {"point": self.point.to_dict(), "label": self.point.label,
                "status": self.status,
                "final_version": self.final_version,
                "power_cycles": self.power_cycles,
                "interruptions": self.interruptions,
                "abandoned": self.abandoned, "error": self.error,
                "black_box": self.black_box}


def run_point(lab: ChaosLab, point: FaultPoint) -> PointResult:
    """Replay one end-to-end update with ``point`` injected.

    Models what hardware does on a power cut: the agent's RAM state is
    lost (``power_cycle``), flash stays exactly as written, the device
    reboots through the bootloader (which may resume an interrupted
    swap), and the update is retried.  The final verdict comes from a
    *fresh* bootloader doing full verification.
    """
    bed = lab.build()
    device = bed.device
    injector = FaultInjector(FaultPlan(points=(point,), seed=lab.seed))
    link = injector.make_link(lab.link_profile)
    injector.arm(bed)

    power_cycles = 0
    abandoned = False
    error: Optional[str] = None
    bricked = False

    def survive_boot() -> bool:
        """Boot until stable; False when the power-cycle budget is out."""
        nonlocal power_cycles, error, bricked
        while True:
            try:
                device.reboot()
                return True
            except PowerLossError as exc:
                power_cycles += 1
                if power_cycles > MAX_POWER_CYCLES:
                    error = "boot never stabilised: %s" % exc
                    return False
                injector.rearm(bed)
            except NoValidImage as exc:
                bricked = True
                error = str(exc)
                return False

    # -- transfer phase: survive power cuts and injected reboots ----------
    while True:
        transport = lab.make_transport(bed, link=link,
                                       retry=SWEEP_TRANSPORT_RETRY)
        try:
            outcome = transport.run_update()
            if outcome.error is not None:
                abandoned = isinstance(outcome.error, TransferAbandoned)
                error = str(outcome.error)
            break
        except (PowerLossError, DeviceRebooted) as exc:
            power_cycles += 1
            if power_cycles > MAX_POWER_CYCLES:
                error = "gave up after %d power cycles: %s" \
                    % (power_cycles, exc)
                break
            device.agent.power_cycle()
            injector.rearm(bed)
            if not survive_boot():
                break

    # -- storage faults land before the decisive boot ---------------------
    injector.apply_pre_boot(bed)

    # -- install/boot phase -----------------------------------------------
    if not bricked:
        survive_boot()

    # -- the invariant: a fresh bootloader must find a valid image --------
    final_version = 0
    if not bricked:
        fresh = Bootloader(device.profile, device.layout, bed.anchors,
                           device.backend)
        try:
            final_version = fresh.boot().version
        except NoValidImage as exc:
            bricked = True
            error = str(exc)

    status = ("bricked" if bricked
              else "updated" if final_version == lab.target_version
              else "not-updated")
    return PointResult(
        point=point, status=status, final_version=final_version,
        power_cycles=power_cycles,
        interruptions=device.agent.stats.transfers_interrupted,
        abandoned=abandoned, error=error,
        # The black box lives on its own flash device (outside the
        # layout the injector arms), so this read-back survives every
        # injected power loss — exactly like pulling the flight
        # recorder after an incident.
        black_box=device.blackbox.post_mortem(),
    )


# -- the sweep ----------------------------------------------------------------


@dataclass
class ChaosReport:
    """Machine-readable outcome of one chaos sweep."""

    seed: int
    slot_configuration: str
    transport: str
    image_size: int
    calibration: Calibration
    results: List[PointResult] = field(default_factory=list)
    #: Correlated-sweep section (:meth:`CorrelatedReport.to_dict`),
    #: attached by ``upkit chaos --correlated``; None on plain sweeps
    #: (schema v4 keeps the key either way).
    correlated: Optional[Dict[str, object]] = None

    @property
    def bricked(self) -> List[PointResult]:
        return [result for result in self.results if result.bricked]

    @property
    def updated_count(self) -> int:
        return sum(1 for r in self.results if r.status == "updated")

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            key = result.point.kind.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def interrupted_phases(self) -> Dict[str, int]:
        """Sweep-wide census of black-box interruptions by lifecycle
        phase (:func:`~repro.obs.blackbox.aggregate_post_mortems` over
        every point's post-mortem)."""
        from ..obs.blackbox import aggregate_post_mortems

        return aggregate_post_mortems(
            [result.black_box for result in self.results
             if result.black_box is not None])

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "slot_configuration": self.slot_configuration,
            "transport": self.transport,
            "image_size": self.image_size,
            "calibration": self.calibration.to_dict(),
            "points": len(self.results),
            "kind_counts": self.kind_counts(),
            "interrupted_phases": self.interrupted_phases(),
            "updated": self.updated_count,
            "not_updated": sum(1 for r in self.results
                               if r.status == "not-updated"),
            "bricked": len(self.bricked),
            "results": [result.to_dict() for result in self.results],
            "correlated": self.correlated,
        }


ProgressFn = Callable[[int, int, PointResult], None]


def run_sweep(points: int = DEFAULT_POINTS, seed: int = 0,
              slot_configuration: str = "b", transport: str = "push",
              image_size: int = DEFAULT_IMAGE_SIZE,
              progress: Optional[ProgressFn] = None) -> ChaosReport:
    """Calibrate, build the grid, run every point, collect the report."""
    lab = ChaosLab(image_size=image_size,
                   slot_configuration=slot_configuration,
                   transport=transport, seed=seed)
    calibration = calibrate(lab)
    grid = build_grid(calibration, seed=seed, points=points,
                      image_size=image_size)
    report = ChaosReport(seed=seed, slot_configuration=slot_configuration,
                         transport=transport, image_size=image_size,
                         calibration=calibration)
    for index, point in enumerate(grid):
        result = run_point(lab, point)
        report.results.append(result)
        if progress is not None:
            progress(index + 1, len(grid), result)
    return report


def write_report(report: ChaosReport,
                 path: str = "CHAOS_report.json") -> str:
    """Write a schema-stamped chaos artifact (see ``tools/report.py``)."""
    from .report import write_report as write_artifact

    write_artifact(report.to_dict(), path, "chaos")
    return os.path.abspath(path)


def format_summary(report: ChaosReport) -> str:
    lines = [
        "chaos sweep: %d fault points (config %s, %s transport, %d B "
        "image, seed %d)"
        % (len(report.results), report.slot_configuration,
           report.transport, report.image_size, report.seed),
    ]
    for kind, count in sorted(report.kind_counts().items()):
        lines.append("  %-18s %4d points" % (kind, count))
    phases = report.interrupted_phases()
    if phases:
        lines.append("  interruptions by phase: %s"
                     % ", ".join("%s=%d" % (phase, count)
                                 for phase, count in phases.items()))
    lines.append("  updated %d / survived-on-old %d / BRICKED %d"
                 % (report.updated_count,
                    sum(1 for r in report.results
                        if r.status == "not-updated"),
                    len(report.bricked)))
    for result in report.bricked:
        lines.append("  BRICKED at %s: %s"
                     % (result.point.label, result.error))
    if not report.bricked:
        lines.append("  invariant holds: every device booted a valid, "
                     "signed image")
    return "\n".join(lines)


# -- correlated sweep ---------------------------------------------------------
#
# The per-device grid above injects one fault into one device.  Real
# fleets fail in *groups*: a regional link storm, a loss front, a
# thundering-herd reboot — and sometimes the update coordinator itself
# dies mid-wave.  The correlated sweep drives a whole hydrated fleet
# (journaled, governed) through a grid of domain-scoped events and
# asserts three properties per point:
#
# 1. the anti-bricking invariant still holds for every fleet member
#    (a fresh bootloader boots a valid, signed image);
# 2. with the retry budget + per-domain breakers attached, backhaul
#    amplification stays bounded (< 2x the clean campaign's request
#    count) while the ungoverned twin amplifies with storm severity;
# 3. a coordinator killed at an armed journal append resumes to a
#    byte-identical report with zero re-flashes and zero double-issued
#    tokens.

DEFAULT_CORRELATED_DEVICES = 12
DEFAULT_CORRELATED_IMAGE_SIZE = 4 * 1024

#: Grid axis "kinds" -> the correlated events scheduled on the plan.
CORRELATED_EVENT_KINDS: Dict[str, Tuple[FaultKind, ...]] = {
    "storm": (FaultKind.LINK_STORM,),
    "front": (FaultKind.LOSS_FRONT,),
    "herd": (FaultKind.HERD_REBOOT,),
    "storm+front": (FaultKind.LINK_STORM, FaultKind.LOSS_FRONT),
}
#: Coordinator-kill axis: no kill, or die early (while planning the
#: canary) or mid-campaign (between device outcomes of the big wave).
KILL_POINTS: Tuple[Optional[str], ...] = (None, "early", "mid")

#: Every correlated event covers the whole campaign window.  Admit
#: times then never gate activation, which is what keeps the sweep
#: comparable across fleet sizes (and the columnar parity tests sound).
_EVENT_DURATION = 3600.0

#: Transport resume budget during correlated runs.  Deliberately
#: tighter than :data:`SWEEP_TRANSPORT_RETRY`: a constrained device
#: gives up after two consecutive link failures, so a storm of
#: severity >= 3 fails the *attempt* and lands on the campaign's retry
#: path — which is the retry storm the governor exists to bound.
CORRELATED_TRANSPORT_RETRY = TransportRetryPolicy(max_attempts=3,
                                                  backoff_initial=0.5)


@dataclass(frozen=True)
class CorrelatedPoint:
    """One cell of the correlated grid."""

    domains: int
    severity: int
    kinds: str
    kill: Optional[str] = None

    def __post_init__(self) -> None:
        if self.domains < 1:
            raise ValueError("domains must be at least 1")
        if self.severity < 1:
            raise ValueError("severity must be at least 1")
        if self.kinds not in CORRELATED_EVENT_KINDS:
            raise ValueError("unknown event kinds %r (have: %s)"
                             % (self.kinds,
                                ", ".join(sorted(CORRELATED_EVENT_KINDS))))
        if self.kill not in KILL_POINTS:
            raise ValueError("kill must be one of %r" % (KILL_POINTS,))

    @property
    def label(self) -> str:
        suffix = "/kill-%s" % self.kill if self.kill else ""
        return "%s/d%d/s%d%s" % (self.kinds, self.domains,
                                 self.severity, suffix)

    def to_dict(self) -> Dict[str, object]:
        return {"domains": self.domains, "severity": self.severity,
                "kinds": self.kinds, "kill": self.kill}


def build_correlated_grid(
        domain_counts: Tuple[int, ...] = (2, 3),
        severities: Tuple[int, ...] = (2, 4, 6),
        kinds: Tuple[str, ...] = ("storm", "front", "herd",
                                  "storm+front"),
        kills: Tuple[Optional[str], ...] = KILL_POINTS,
) -> List[CorrelatedPoint]:
    """The full correlated grid: domains x severity x kinds x kill.

    Defaults give 2 * 3 * 4 * 3 = 72 points (the acceptance floor is
    64), a third of them with a coordinator kill armed.
    """
    grid = [CorrelatedPoint(domains=domains, severity=severity,
                            kinds=kind, kill=kill)
            for domains in domain_counts
            for severity in severities
            for kind in kinds
            for kill in kills]
    if not grid:
        raise ValueError("the correlated grid is empty")
    return grid


class CorrelatedLab:
    """Shared artifacts for correlated fleet sweeps.

    Mirrors :class:`ChaosLab` one level up: firmware, keys and signed
    releases are built once; every run gets a pristine server and a
    fresh hydrated fleet.  The last fleet member is the sweep's
    on-path adversary — a :class:`~repro.net.PayloadBitFlipper` whose
    RNG derives from the sweep seed (``derive_seed(seed, "attacker",
    index)``), so ``--seed`` reaches every attacker stream the same
    way it reaches every domain stream.
    """

    def __init__(self, devices: int = DEFAULT_CORRELATED_DEVICES,
                 image_size: int = DEFAULT_CORRELATED_IMAGE_SIZE,
                 seed: int = 0) -> None:
        if devices < 4:
            raise ValueError("a correlated fleet needs at least 4 "
                             "devices (a canary plus a fleet)")
        self.devices = devices
        self.image_size = image_size
        self.seed = seed
        self.target_version = 2
        generator = FirmwareGenerator(seed=b"chaos-corr-%d" % seed)
        self.base_firmware = generator.firmware(image_size, image_id=1)
        self.new_firmware = generator.os_version_change(
            self.base_firmware, revision=2)
        vendor_id, self.server_identity, self.anchors = \
            make_test_identities()
        self.vendor = VendorServer(vendor_id, app_id=DEFAULT_APP_ID,
                                   link_offset=DEFAULT_LINK_OFFSET)
        self.releases = (self.vendor.release(self.base_firmware, 1),
                         self.vendor.release(self.new_firmware,
                                             self.target_version))

    def build_fleet(self, plan: Optional[DomainPlan] = None,
                    transfer_bytes: int = 0, attacker: bool = False):
        """``(server, fleet, domain_of)`` around the cached artifacts.

        With a ``plan``, every member's link carries its domain's
        correlated fault schedule (identical coordinates across the
        domain — that sameness *is* the correlation); ``domain_of``
        maps device name -> domain name for the governor's breakers.
        """
        server = UpdateServer(self.server_identity)
        server.publish(self.releases[0])
        domain_names: Dict[str, str] = {}
        fleet: List[DeviceRecord] = []
        for index in range(self.devices):
            internal = NRF52840.make_internal_flash()
            layout = MemoryLayout.configuration_a(internal, 64 * 1024)
            profile = DeviceProfile(
                device_id=0x7000 + index, app_id=DEFAULT_APP_ID,
                link_offset=DEFAULT_LINK_OFFSET,
                supports_differential=False)
            device = SimulatedDevice(board=NRF52840, os_profile=ZEPHYR,
                                     layout=layout, profile=profile,
                                     anchors=self.anchors)
            provision_device(server, layout.get("a"), profile.device_id)
            transport = "pull" if index % 2 else "push"
            name = "corr-%03d" % index
            link = None
            if plan is not None:
                domain = plan.domain_of(index, self.devices).name
                domain_names[name] = domain
                link = plan.link_for(
                    plan.position_of(domain), max(1, transfer_bytes),
                    profile=(BLE_GATT if transport == "push"
                             else COAP_6LOWPAN))
            interceptor = None
            if attacker and index == self.devices - 1:
                interceptor = PayloadBitFlipper(
                    seed=derive_seed(self.seed, "attacker", index))
            fleet.append(DeviceRecord(
                name=name, device=device, transport=transport,
                interceptor=interceptor, link=link))
        server.publish(self.releases[1])
        return server, fleet, domain_names.get


def _correlated_policy() -> RolloutPolicy:
    # No failure-rate abort: the sweep wants full-coverage outcomes per
    # point, not an early exit the moment a storm bites the canary.
    return RolloutPolicy(canary_fraction=0.25, abort_failure_rate=1.0,
                         max_attempts=2)


def _correlated_retry() -> RetryPolicy:
    # Four attempts with no jitter: aggressive enough that an
    # ungoverned fleet visibly amplifies a storm, deterministic enough
    # that two same-seed sweeps serialize identically.
    return RetryPolicy(max_attempts=4, backoff_initial=1.0, jitter=0.0,
                       quarantine_after=4,
                       transport_retry=CORRELATED_TRANSPORT_RETRY)


def make_correlated_governor(devices: int) -> RetryGovernor:
    """Deliberately tight knobs: a couple of devices' interruptions trip
    a domain's breaker, and the global budget covers only a handful of
    probes before the rest of the storm is shed."""
    return RetryGovernor(
        budget=RetryBudget(capacity=max(2, devices // 6)),
        breaker_policy=BreakerPolicy(pressure_threshold=3,
                                     open_seconds=30.0))


def _correlated_plan(point: CorrelatedPoint, seed: int) -> DomainPlan:
    domains = [FaultDomain("dom-%02d" % index, kind="gateway")
               for index in range(point.domains)]
    events = [DomainEvent(kind, at=0.0, duration=_EVENT_DURATION,
                          severity=point.severity)
              for kind in CORRELATED_EVENT_KINDS[point.kinds]]
    # The kill axis is excluded from the derivation: the killed run and
    # its uninterrupted twin must replay identical link schedules.
    return DomainPlan(domains, events,
                      seed=derive_seed(seed, "correlated", point.domains,
                                       point.severity, point.kinds))


def _fleet_flash_writes(fleet: List[DeviceRecord]) -> int:
    """Total flash write calls across a fleet (each device counted
    once per distinct flash part) — the passive re-flash detector."""
    total = 0
    seen = set()
    for record in fleet:
        for slot in record.device.layout.slots:
            if id(slot.flash) in seen:
                continue
            seen.add(id(slot.flash))
            total += slot.flash.stats.write_calls
    return total


def _fleet_bricked(fleet: List[DeviceRecord], anchors) -> int:
    """The invariant, fleet-wide: a fresh bootloader per member."""
    bricked = 0
    for record in fleet:
        fresh = Bootloader(record.device.profile, record.device.layout,
                           anchors, record.device.backend)
        try:
            fresh.boot()
        except NoValidImage:
            bricked += 1
    return bricked


@dataclass
class CorrelatedResult:
    """What one correlated grid point did to one (or two) fleets."""

    point: CorrelatedPoint
    plan: Dict[str, object]
    updated: int
    failed: int
    quarantined: int
    requests: int
    #: Backhaul amplification of the governed run relative to the
    #: clean campaign (1.0 = no storm traffic at all).
    amplification: float
    #: Same ratio for the ungoverned twin (kill-free points only).
    unbounded_amplification: Optional[float]
    bricked: int
    governor: Dict[str, object]
    journal: Dict[str, object]
    #: Coordinator-kill verdicts (kill points only).
    kill: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {"point": self.point.to_dict(),
                "label": self.point.label, "plan": self.plan,
                "updated": self.updated, "failed": self.failed,
                "quarantined": self.quarantined,
                "requests": self.requests,
                "amplification": round(self.amplification, 6),
                "unbounded_amplification": (
                    round(self.unbounded_amplification, 6)
                    if self.unbounded_amplification is not None
                    else None),
                "bricked": self.bricked, "governor": self.governor,
                "journal": self.journal, "kill": self.kill}


def run_correlated_point(lab: CorrelatedLab, point: CorrelatedPoint,
                         transfer_bytes: int,
                         clean_requests: int) -> CorrelatedResult:
    """Run one correlated grid point.

    Always runs the governed, journaled campaign.  Kill-free points
    additionally run the *ungoverned* twin to measure how much a
    budget-less fleet amplifies the storm; kill points instead re-run
    the same campaign with the journal armed to die at an append
    index, then :meth:`~repro.fleet.Campaign.resume` and compare the
    resumed report, the server's request count (double-issued tokens)
    and the fleet's flash write count (re-flashes) against the
    uninterrupted twin.
    """
    plan = _correlated_plan(point, lab.seed)
    policy = _correlated_policy()
    retry = _correlated_retry()

    server, fleet, domain_of = lab.build_fleet(
        plan, transfer_bytes, attacker=True)
    journal = CampaignJournal()
    campaign = Campaign(server, fleet, policy, retry=retry,
                        journal=journal,
                        governor=make_correlated_governor(lab.devices),
                        domain_of=domain_of)
    report = campaign.run()
    requests = server.stats.requests
    amplification = requests / clean_requests
    bricked = _fleet_bricked(fleet, lab.anchors)
    journal_stats = journal.stats()
    twin_json = json.dumps(report.to_dict(), sort_keys=True)
    twin_writes = _fleet_flash_writes(fleet)

    unbounded: Optional[float] = None
    kill_info: Optional[Dict[str, object]] = None
    if point.kill is None:
        server_u, fleet_u, _ = lab.build_fleet(plan, transfer_bytes,
                                               attacker=True)
        Campaign(server_u, fleet_u, policy, retry=retry).run()
        unbounded = server_u.stats.requests / clean_requests
        bricked += _fleet_bricked(fleet_u, lab.anchors)
    else:
        appends = int(journal_stats["appends"])
        kill_at = 2 if point.kill == "early" else max(3, appends // 2)
        killed_journal = CampaignJournal()
        killed_journal.arm_kill(kill_at)
        server_k, fleet_k, domain_of_k = lab.build_fleet(
            plan, transfer_bytes, attacker=True)
        killed = Campaign(server_k, fleet_k, policy, retry=retry,
                          journal=killed_journal,
                          governor=make_correlated_governor(lab.devices),
                          domain_of=domain_of_k)
        try:
            killed.run()
            raise RuntimeError("armed coordinator crash at append %d "
                               "never fired" % kill_at)
        except CoordinatorKilled:
            pass
        resumed = Campaign.resume(
            server_k, fleet_k, killed_journal, policy=policy,
            retry=retry, governor=make_correlated_governor(lab.devices),
            domain_of=domain_of_k)
        resumed_json = json.dumps(resumed.run().to_dict(),
                                  sort_keys=True)
        bricked += _fleet_bricked(fleet_k, lab.anchors)
        journal_stats = killed_journal.stats()
        kill_info = {
            "append_index": kill_at,
            "twin_appends": appends,
            "resume_identical": resumed_json == twin_json,
            "token_parity": server_k.stats.requests == requests,
            "reflash_free": _fleet_flash_writes(fleet_k) == twin_writes,
            "appends_converged":
                int(journal_stats["appends"]) == appends,
        }
        # Serialize the plan *with* the crash event it actually ran
        # (severity carries the armed append index).
        plan = DomainPlan(
            list(plan.domains),
            list(plan.events) + [DomainEvent(
                FaultKind.COORDINATOR_CRASH, at=0.0,
                duration=_EVENT_DURATION, severity=kill_at)],
            seed=plan.seed, assignment=plan.assignment)

    return CorrelatedResult(
        point=point, plan=plan.to_dict(), updated=len(report.updated),
        failed=len(report.failed), quarantined=len(report.quarantined),
        requests=requests, amplification=amplification,
        unbounded_amplification=unbounded, bricked=bricked,
        governor=campaign.governor.to_dict(), journal=journal_stats,
        kill=kill_info)


@dataclass
class CorrelatedReport:
    """Machine-readable outcome of one correlated sweep."""

    seed: int
    devices: int
    image_size: int
    transfer_bytes: int
    clean_requests: int
    results: List[CorrelatedResult] = field(default_factory=list)

    @property
    def bricked_total(self) -> int:
        return sum(result.bricked for result in self.results)

    @property
    def budgeted_max(self) -> float:
        return max((result.amplification for result in self.results),
                   default=0.0)

    @property
    def unbounded_max(self) -> float:
        return max((result.unbounded_amplification
                    for result in self.results
                    if result.unbounded_amplification is not None),
                   default=0.0)

    @property
    def kill_count(self) -> int:
        return sum(1 for result in self.results
                   if result.kill is not None)

    @property
    def resume_identical_all(self) -> bool:
        return all(result.kill["resume_identical"]
                   for result in self.results
                   if result.kill is not None)

    def journal_totals(self) -> Dict[str, int]:
        return {
            "appends": sum(int(result.journal.get("appends", 0))
                           for result in self.results),
            "torn_skipped": sum(
                int(result.journal.get("torn_skipped", 0))
                for result in self.results),
            "campaigns": len(self.results),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "devices": self.devices,
            "image_size": self.image_size,
            "transfer_bytes": self.transfer_bytes,
            "clean_requests": self.clean_requests,
            "grid_points": len(self.results),
            "domains": sorted({result.point.domains
                               for result in self.results}),
            "kills": self.kill_count,
            "resume_identical_all": self.resume_identical_all,
            "retry_amplification": {
                "budgeted_max": round(self.budgeted_max, 6),
                "unbounded_max": round(self.unbounded_max, 6),
            },
            "journal": self.journal_totals(),
            "bricked": self.bricked_total,
            "results": [result.to_dict() for result in self.results],
        }


def run_correlated_sweep(devices: int = DEFAULT_CORRELATED_DEVICES,
                         seed: int = 0,
                         image_size: int =
                         DEFAULT_CORRELATED_IMAGE_SIZE,
                         grid: Optional[List[CorrelatedPoint]] = None,
                         progress: Optional[Callable[
                             [int, int, CorrelatedResult], None]] = None
                         ) -> CorrelatedReport:
    """Clean-calibrate the fleet, then run every correlated grid point."""
    lab = CorrelatedLab(devices=devices, image_size=image_size,
                        seed=seed)
    if grid is None:
        grid = build_correlated_grid()
    if not grid:
        raise ValueError("the correlated grid is empty")

    # Clean baseline: same fleet shape (attacker included), no faults.
    # Yields the request-count denominator for amplification and the
    # measured transfer size the domain plans scale coordinates to.
    server, fleet, _ = lab.build_fleet(attacker=True)
    clean = Campaign(server, fleet, _correlated_policy(),
                     retry=_correlated_retry()).run()
    if len(clean.updated) < devices - 1:
        raise RuntimeError("clean correlated baseline failed: %r"
                           % clean.to_dict())
    clean_requests = server.stats.requests
    transfer_bytes = min(record.last_outcome.bytes_over_air
                         for record in fleet
                         if record.last_outcome is not None
                         and record.last_outcome.success)

    report = CorrelatedReport(seed=seed, devices=devices,
                              image_size=image_size,
                              transfer_bytes=transfer_bytes,
                              clean_requests=clean_requests)
    for index, point in enumerate(grid):
        result = run_correlated_point(lab, point, transfer_bytes,
                                      clean_requests)
        report.results.append(result)
        if progress is not None:
            progress(index + 1, len(grid), result)
    return report


def format_correlated_summary(report: CorrelatedReport) -> str:
    sheds = sum(int(result.governor.get("sheds", 0))
                for result in report.results)
    defers = sum(int(result.governor.get("defers", 0))
                 for result in report.results)
    journal = report.journal_totals()
    lines = [
        "correlated sweep: %d grid points x %d devices (%d B image, "
        "seed %d)"
        % (len(report.results), report.devices, report.image_size,
           report.seed),
        "  retry amplification: budgeted max %.2fx / unbounded max "
        "%.2fx (clean = 1.0x)"
        % (report.budgeted_max, report.unbounded_max),
        "  governor: %d retries shed, %d attempts deferred"
        % (sheds, defers),
        "  coordinator kills: %d armed, resumes byte-identical: %s"
        % (report.kill_count,
           "yes" if report.resume_identical_all else "NO"),
        "  journal: %d appends across %d campaigns, %d torn lines "
        "skipped"
        % (journal["appends"], journal["campaigns"],
           journal["torn_skipped"]),
    ]
    if report.bricked_total:
        lines.append("  BRICKED devices: %d" % report.bricked_total)
    else:
        lines.append("  invariant holds: every fleet member booted a "
                     "valid, signed image")
    return "\n".join(lines)
