"""Chaos sweep: the anti-bricking invariant under an exhaustive fault grid.

UpKit's central robustness claim (Sect. III/IV): whatever fails during
an update — power, link, server, even the stored bits — the device
always boots a *valid, signed* image.  This harness makes the claim
executable:

1. **calibrate** — run one clean update on a pristine testbed and
   measure the fault axes (flash operations, bytes over the air);
2. **build a grid** — hundreds of :class:`~repro.faults.FaultPoint` s
   spread over every axis: power loss at each write/erase, link outages
   and loss bursts at byte offsets, reboots mid-transfer, bit-rot in
   both slots, server outage windows;
3. **run each point** — a fresh device replays the end-to-end update
   with that fault injected, surviving power cycles the way hardware
   does (RAM lost, flash kept, reboot, retry);
4. **assert the invariant** — after the dust settles a *fresh*
   bootloader (full double-signature + digest verification) must boot
   some valid image.  ``NoValidImage`` means the device is bricked:
   that is the failure the sweep exists to catch.

The sweep is deterministic end to end (seeded links, seeded jitter,
attempt-counted outages) and emits a machine-readable report
(``CHAOS_report.json`` via ``upkit chaos``), so a failing point can be
replayed in isolation from its serialized plan.

Expensive immutable artifacts (identities, signed releases, the factory
image) are built once per sweep in :class:`ChaosLab`; every point still
gets a pristine server, device and link.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core import (
    Bootloader,
    DeviceProfile,
    ENVELOPE_SIZE,
    NoValidImage,
    TransferAbandoned,
    UpdateServer,
    VendorServer,
    install_factory_image,
    make_factory_image,
    make_test_identities,
)
from ..faults import DeviceRebooted, FaultInjector, FaultKind, FaultPlan, \
    FaultPoint
from ..memory import MemoryLayout, PowerLossError
from ..net import BLE_GATT, COAP_6LOWPAN, PullTransport, PushTransport, \
    TransportRetryPolicy
from ..platform import NRF52840, ZEPHYR
from ..sim.device import SimulatedDevice
from ..sim.runner import DEFAULT_APP_ID, DEFAULT_DEVICE_ID, \
    DEFAULT_LINK_OFFSET, Testbed
from ..workload import FirmwareGenerator

__all__ = ["ChaosLab", "Calibration", "PointResult", "ChaosReport",
           "calibrate", "build_grid", "run_point", "run_sweep",
           "write_report", "format_summary", "DEFAULT_POINTS",
           "DEFAULT_IMAGE_SIZE"]

DEFAULT_IMAGE_SIZE = 16 * 1024
#: Grid size of the full sweep (the acceptance floor is 200).
DEFAULT_POINTS = 216
#: A single fault point never needs more: one fired fault costs at most
#: a couple of power cycles (transfer + install).
MAX_POWER_CYCLES = 6
#: Transport resume budget during a sweep point: generous enough that a
#: multi-failure outage converges, bounded so a sweep never hangs.
SWEEP_TRANSPORT_RETRY = TransportRetryPolicy(max_attempts=8,
                                             backoff_initial=0.5)


class ChaosLab:
    """Shared, immutable sweep context: firmware, keys, signed releases.

    ``build()`` assembles a pristine testbed (fresh flash, fresh device,
    fresh server) around the cached artifacts — the per-point cost is
    flash allocation and one factory-image write, not key generation
    and signing.
    """

    def __init__(self, image_size: int = DEFAULT_IMAGE_SIZE,
                 slot_configuration: str = "b",
                 transport: str = "push", seed: int = 0) -> None:
        if slot_configuration not in ("a", "b"):
            raise ValueError("slot_configuration must be 'a' or 'b'")
        if transport not in ("push", "pull"):
            raise ValueError("transport must be 'push' or 'pull'")
        self.image_size = image_size
        self.slot_configuration = slot_configuration
        self.transport = transport
        self.seed = seed
        self.target_version = 2

        generator = FirmwareGenerator(seed=b"chaos-%d" % seed)
        self.base_firmware = generator.firmware(image_size, image_id=1)
        self.new_firmware = generator.os_version_change(self.base_firmware,
                                                        revision=2)
        vendor_id, self.server_identity, self.anchors = \
            make_test_identities()
        self.vendor = VendorServer(vendor_id, app_id=DEFAULT_APP_ID,
                                   link_offset=DEFAULT_LINK_OFFSET)
        self.releases = (self.vendor.release(self.base_firmware, 1),
                         self.vendor.release(self.new_firmware,
                                             self.target_version))
        self._factory_image = None

    def build(self) -> Testbed:
        """A pristine testbed: v1 installed, v2 published, zero cost."""
        server = UpdateServer(self.server_identity)
        server.publish(self.releases[0])
        if self._factory_image is None:
            # Signed against the v1-only server (factory state), then
            # reused byte-for-byte for every later device.
            self._factory_image = make_factory_image(server,
                                                     DEFAULT_DEVICE_ID)
        board = NRF52840
        internal = board.make_internal_flash()
        usable = internal.size - 2 * internal.page_size
        slot_size = usable // 2
        slot_size -= slot_size % internal.page_size
        if self.slot_configuration == "a":
            layout = MemoryLayout.configuration_a(internal, slot_size)
        else:
            external = (board.make_external_flash()
                        if board.has_external_flash else None)
            layout = MemoryLayout.configuration_b(internal, slot_size,
                                                  external=external)
        profile = DeviceProfile(
            device_id=DEFAULT_DEVICE_ID,
            app_id=DEFAULT_APP_ID,
            link_offset=DEFAULT_LINK_OFFSET,
            # Full images keep the fault axes identical across points.
            supports_differential=False,
        )
        device = SimulatedDevice(board=board, os_profile=ZEPHYR,
                                 layout=layout, profile=profile,
                                 anchors=self.anchors)
        install_factory_image(layout.get("a"), self._factory_image)
        server.publish(self.releases[1])
        for slot in layout.slots:
            slot.flash.stats.busy_seconds = 0.0
        device.backend.reset_counters()
        return Testbed(vendor=self.vendor, server=server, device=device,
                       anchors=self.anchors)

    def make_transport(self, bed: Testbed, link=None, retry=None):
        cls = PushTransport if self.transport == "push" else PullTransport
        return cls(bed.device, bed.server, link=link, retry=retry,
                   reboot_on_success=False)

    @property
    def link_profile(self):
        return BLE_GATT if self.transport == "push" else COAP_6LOWPAN


# -- calibration --------------------------------------------------------------


@dataclass(frozen=True)
class Calibration:
    """Measured fault-axis extents of one clean end-to-end update."""

    ops_any: int        # flash writes + erases, transfer through install
    ops_write: int
    ops_erase: int
    transfer_bytes: int  # bytes over the air
    fed_bytes: int       # bytes the agent consumed (envelope + payload)

    def to_dict(self) -> Dict[str, int]:
        return {"ops_any": self.ops_any, "ops_write": self.ops_write,
                "ops_erase": self.ops_erase,
                "transfer_bytes": self.transfer_bytes,
                "fed_bytes": self.fed_bytes}


def calibrate(lab: ChaosLab) -> Calibration:
    """Run one fault-free update and measure every fault axis."""
    bed = lab.build()
    device = bed.device
    flashes = FaultInjector._flash_devices(bed)

    fed = {"bytes": 0}
    original_feed = device.feed

    def feed(chunk):
        fed["bytes"] += len(chunk)
        return original_feed(chunk)

    device.feed = feed

    def ops() -> "tuple[int, int]":
        return (sum(flash.stats.write_calls for flash in flashes),
                sum(flash.stats.pages_erased for flash in flashes))

    writes0, erases0 = ops()
    outcome = lab.make_transport(bed).run_update()
    if not outcome.success:
        raise RuntimeError("calibration update failed: %s" % outcome.error)
    result = device.reboot()
    if result.version != lab.target_version:
        raise RuntimeError("calibration boot landed on v%d" % result.version)
    writes1, erases1 = ops()
    return Calibration(
        ops_any=(writes1 - writes0) + (erases1 - erases0),
        ops_write=writes1 - writes0,
        ops_erase=erases1 - erases0,
        transfer_bytes=outcome.bytes_over_air,
        fed_bytes=fed["bytes"],
    )


# -- grid ---------------------------------------------------------------------


def _spread(limit: int, count: int) -> List[int]:
    """``count`` distinct evenly spaced ints in [0, limit)."""
    if limit <= 0:
        return []
    count = max(1, min(count, limit))
    step = limit / count
    return sorted({int(index * step) for index in range(count)})


def build_grid(calibration: Calibration, seed: int = 0,
               points: int = DEFAULT_POINTS,
               image_size: int = DEFAULT_IMAGE_SIZE) -> FaultPlan:
    """Spread ``points`` fault points across every measured axis."""
    if points < 16:
        raise ValueError("a grid needs at least 16 points "
                         "(two per fault family)")
    server_windows = [(0, 1), (1, 1), (2, 1), (0, 2), (1, 2), (0, 3)]
    budget = points - len(server_windows)
    # Fraction of the budget per family; power loss dominates because it
    # is the axis that can actually brick a device.
    shares = [
        (FaultKind.POWER_LOSS_ANY, 0.25, calibration.ops_any, 0),
        (FaultKind.POWER_LOSS_WRITE, 0.14, calibration.ops_write, 0),
        (FaultKind.POWER_LOSS_ERASE, 0.10, calibration.ops_erase, 0),
        (FaultKind.LINK_OUTAGE, 0.14, calibration.transfer_bytes, 2),
        (FaultKind.REBOOT, 0.14, calibration.fed_bytes, 0),
        # A 4x mid-transfer slowdown never breaks the update; it is in
        # the grid so the sweep also proves *degraded* links converge
        # (and feeds the telemetry plane's straggler detector).
        (FaultKind.SLOW_LINK, 0.05, calibration.transfer_bytes, 4),
    ]
    grid: List[FaultPoint] = []
    for kind, share, limit, param in shares:
        for at in _spread(limit, max(2, round(budget * share))):
            grid.append(FaultPoint(kind, at, param))
    burst_width = max(256, calibration.transfer_bytes // 16)
    burst_span = max(1, calibration.transfer_bytes - burst_width)
    for at in _spread(burst_span, max(2, round(budget * 0.07))):
        grid.append(FaultPoint(FaultKind.LOSS_BURST, at, burst_width))
    rot_span = ENVELOPE_SIZE + image_size
    for slot_index in (0, 1):
        for at in _spread(rot_span, max(2, round(budget * 0.055))):
            grid.append(FaultPoint(FaultKind.BIT_ROT, at, slot_index))
    for at, length in server_windows:
        grid.append(FaultPoint(FaultKind.SERVER_OUTAGE, at, length))
    plan = FaultPlan(points=tuple(grid), seed=seed)
    # Small layouts offer fewer distinct flash-op coordinates than their
    # share asked for (configuration A skips the swap entirely), so the
    # deduplicated plan can fall short of the requested size.  Top up on
    # the byte-addressed link axis, whose coordinate space is ~the whole
    # transfer; param=1 outages never collide with the param=2 share.
    shortfall = points - len(plan)
    if shortfall > 0:
        extra = tuple(
            FaultPoint(FaultKind.LINK_OUTAGE, at + 1, 1)
            for at in _spread(calibration.transfer_bytes - 1, shortfall))
        plan = plan.merged_with(FaultPlan(points=extra, seed=seed))
    return plan


# -- per-point execution ------------------------------------------------------


@dataclass
class PointResult:
    """What one fault point did to one device."""

    point: FaultPoint
    status: str                 # "updated" | "not-updated" | "bricked"
    final_version: int
    power_cycles: int
    interruptions: int
    abandoned: bool
    error: Optional[str] = None
    #: The device's black-box post-mortem (``BlackBox.post_mortem``):
    #: what the flight recorder says happened, read back from flash
    #: *after* the injected faults — including which lifecycle phase an
    #: injected power loss interrupted.
    black_box: Optional[Dict[str, object]] = None

    @property
    def bricked(self) -> bool:
        return self.status == "bricked"

    def to_dict(self) -> Dict[str, object]:
        return {"point": self.point.to_dict(), "label": self.point.label,
                "status": self.status,
                "final_version": self.final_version,
                "power_cycles": self.power_cycles,
                "interruptions": self.interruptions,
                "abandoned": self.abandoned, "error": self.error,
                "black_box": self.black_box}


def run_point(lab: ChaosLab, point: FaultPoint) -> PointResult:
    """Replay one end-to-end update with ``point`` injected.

    Models what hardware does on a power cut: the agent's RAM state is
    lost (``power_cycle``), flash stays exactly as written, the device
    reboots through the bootloader (which may resume an interrupted
    swap), and the update is retried.  The final verdict comes from a
    *fresh* bootloader doing full verification.
    """
    bed = lab.build()
    device = bed.device
    injector = FaultInjector(FaultPlan(points=(point,), seed=lab.seed))
    link = injector.make_link(lab.link_profile)
    injector.arm(bed)

    power_cycles = 0
    abandoned = False
    error: Optional[str] = None
    bricked = False

    def survive_boot() -> bool:
        """Boot until stable; False when the power-cycle budget is out."""
        nonlocal power_cycles, error, bricked
        while True:
            try:
                device.reboot()
                return True
            except PowerLossError as exc:
                power_cycles += 1
                if power_cycles > MAX_POWER_CYCLES:
                    error = "boot never stabilised: %s" % exc
                    return False
                injector.rearm(bed)
            except NoValidImage as exc:
                bricked = True
                error = str(exc)
                return False

    # -- transfer phase: survive power cuts and injected reboots ----------
    while True:
        transport = lab.make_transport(bed, link=link,
                                       retry=SWEEP_TRANSPORT_RETRY)
        try:
            outcome = transport.run_update()
            if outcome.error is not None:
                abandoned = isinstance(outcome.error, TransferAbandoned)
                error = str(outcome.error)
            break
        except (PowerLossError, DeviceRebooted) as exc:
            power_cycles += 1
            if power_cycles > MAX_POWER_CYCLES:
                error = "gave up after %d power cycles: %s" \
                    % (power_cycles, exc)
                break
            device.agent.power_cycle()
            injector.rearm(bed)
            if not survive_boot():
                break

    # -- storage faults land before the decisive boot ---------------------
    injector.apply_pre_boot(bed)

    # -- install/boot phase -----------------------------------------------
    if not bricked:
        survive_boot()

    # -- the invariant: a fresh bootloader must find a valid image --------
    final_version = 0
    if not bricked:
        fresh = Bootloader(device.profile, device.layout, bed.anchors,
                           device.backend)
        try:
            final_version = fresh.boot().version
        except NoValidImage as exc:
            bricked = True
            error = str(exc)

    status = ("bricked" if bricked
              else "updated" if final_version == lab.target_version
              else "not-updated")
    return PointResult(
        point=point, status=status, final_version=final_version,
        power_cycles=power_cycles,
        interruptions=device.agent.stats.transfers_interrupted,
        abandoned=abandoned, error=error,
        # The black box lives on its own flash device (outside the
        # layout the injector arms), so this read-back survives every
        # injected power loss — exactly like pulling the flight
        # recorder after an incident.
        black_box=device.blackbox.post_mortem(),
    )


# -- the sweep ----------------------------------------------------------------


@dataclass
class ChaosReport:
    """Machine-readable outcome of one chaos sweep."""

    seed: int
    slot_configuration: str
    transport: str
    image_size: int
    calibration: Calibration
    results: List[PointResult] = field(default_factory=list)

    @property
    def bricked(self) -> List[PointResult]:
        return [result for result in self.results if result.bricked]

    @property
    def updated_count(self) -> int:
        return sum(1 for r in self.results if r.status == "updated")

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            key = result.point.kind.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def interrupted_phases(self) -> Dict[str, int]:
        """Sweep-wide census of black-box interruptions by lifecycle
        phase (:func:`~repro.obs.blackbox.aggregate_post_mortems` over
        every point's post-mortem)."""
        from ..obs.blackbox import aggregate_post_mortems

        return aggregate_post_mortems(
            [result.black_box for result in self.results
             if result.black_box is not None])

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "slot_configuration": self.slot_configuration,
            "transport": self.transport,
            "image_size": self.image_size,
            "calibration": self.calibration.to_dict(),
            "points": len(self.results),
            "kind_counts": self.kind_counts(),
            "interrupted_phases": self.interrupted_phases(),
            "updated": self.updated_count,
            "not_updated": sum(1 for r in self.results
                               if r.status == "not-updated"),
            "bricked": len(self.bricked),
            "results": [result.to_dict() for result in self.results],
        }


ProgressFn = Callable[[int, int, PointResult], None]


def run_sweep(points: int = DEFAULT_POINTS, seed: int = 0,
              slot_configuration: str = "b", transport: str = "push",
              image_size: int = DEFAULT_IMAGE_SIZE,
              progress: Optional[ProgressFn] = None) -> ChaosReport:
    """Calibrate, build the grid, run every point, collect the report."""
    lab = ChaosLab(image_size=image_size,
                   slot_configuration=slot_configuration,
                   transport=transport, seed=seed)
    calibration = calibrate(lab)
    grid = build_grid(calibration, seed=seed, points=points,
                      image_size=image_size)
    report = ChaosReport(seed=seed, slot_configuration=slot_configuration,
                         transport=transport, image_size=image_size,
                         calibration=calibration)
    for index, point in enumerate(grid):
        result = run_point(lab, point)
        report.results.append(result)
        if progress is not None:
            progress(index + 1, len(grid), result)
    return report


def write_report(report: ChaosReport,
                 path: str = "CHAOS_report.json") -> str:
    """Write a schema-stamped chaos artifact (see ``tools/report.py``)."""
    from .report import write_report as write_artifact

    write_artifact(report.to_dict(), path, "chaos")
    return os.path.abspath(path)


def format_summary(report: ChaosReport) -> str:
    lines = [
        "chaos sweep: %d fault points (config %s, %s transport, %d B "
        "image, seed %d)"
        % (len(report.results), report.slot_configuration,
           report.transport, report.image_size, report.seed),
    ]
    for kind, count in sorted(report.kind_counts().items()):
        lines.append("  %-18s %4d points" % (kind, count))
    phases = report.interrupted_phases()
    if phases:
        lines.append("  interruptions by phase: %s"
                     % ", ".join("%s=%d" % (phase, count)
                                 for phase, count in phases.items()))
    lines.append("  updated %d / survived-on-old %d / BRICKED %d"
                 % (report.updated_count,
                    sum(1 for r in report.results
                        if r.status == "not-updated"),
                    len(report.bricked)))
    for result in report.bricked:
        lines.append("  BRICKED at %s: %s"
                     % (result.point.label, result.error))
    if not report.bricked:
        lines.append("  invariant holds: every device booted a valid, "
                     "signed image")
    return "\n".join(lines)
