"""Fleet telemetry harness: a campaign under full observability.

``cli fleetview`` runs a seeded staged rollout (mirroring the bench
harness's fleet construction) with the telemetry plane attached, plus
two deliberately unhealthy devices so the detectors have something to
find:

* a **straggler** — its link carries a 4x
  :class:`~repro.net.link.Slowdown` from byte 0 (built through the
  fault injector, same as a chaos ``slow-link`` point), so its per-kB
  transfer latency sits far outside the fleet's robust z-score band;
* a **storm device** — four scheduled link outages mid-transfer; the
  transport-level resume policy carries it through, but the telemetry
  plane flags the interruption pile-up as a retry storm.

Both devices still update successfully: the point of the harness is
that telemetry *sees* them without changing the rollout.  Tightening
the SLO thresholds (``--slo-*`` flags) turns detection into control —
a breach pauses, slows or aborts the campaign, and the exit status
reports it.  Artifacts: a schema-versioned ``fleetview`` JSON document
and an OpenMetrics text file of every device registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import (
    DeviceProfile,
    UpdateServer,
    VendorServer,
    make_test_identities,
    provision_device,
)
from ..faults import FaultInjector, FaultKind, FaultPlan
from ..fleet import Campaign, DeviceRecord, RetryPolicy, RolloutPolicy
from ..memory import MemoryLayout
from ..net import BLE_GATT, COAP_6LOWPAN
from ..net.transports import TransportRetryPolicy
from ..obs.export import to_openmetrics, write_fleetview_report, \
    write_openmetrics
from ..obs.health import HealthThresholds
from ..obs.slo import DEFAULT_SLOS, FleetTelemetry, SLO
from ..platform import NRF52840, ZEPHYR
from ..sim import SimulatedDevice
from ..workload import FirmwareGenerator

__all__ = ["FleetviewResult", "build_fleet", "run_fleetview",
           "write_artifacts", "format_summary", "DEFAULT_DEVICES",
           "DEFAULT_IMAGE_SIZE"]

APP_ID = 0x55504B49
LINK_OFFSET = 0x8000

DEFAULT_DEVICES = 50
DEFAULT_IMAGE_SIZE = 24 * 1024

#: Where the unhealthy devices sit, as fleet fractions — both land in
#: the main wave (the canary is the first 10 %), so the canary stays
#: clean and the detectors fire on the big wave.
_STRAGGLER_FRACTION = 0.5
_STORM_FRACTION = 0.3
#: The straggler's link runs this many times slower from byte 0.
_STRAGGLER_FACTOR = 4
#: Outage count injected on the storm device's link (>= the default
#: :class:`~repro.obs.health.HealthThresholds` retry-storm trigger).
_STORM_OUTAGES = 4


def build_fleet(device_count: int = DEFAULT_DEVICES,
                image_size: int = DEFAULT_IMAGE_SIZE,
                seed: bytes = b"fleetview"):
    """A seeded fleet at v1 with v2 published, plus two sick devices.

    Returns ``(server, fleet, straggler_name, storm_name)``.  Fully
    deterministic, same shape as the bench harness fleet: alternating
    push (BLE) / pull (CoAP) transports, configuration-A layouts.
    """
    if device_count < 10:
        raise ValueError("fleetview needs at least 10 devices "
                         "(a clean canary plus a fleet to profile)")
    generator = FirmwareGenerator(seed=seed)
    fw_v1 = generator.firmware(image_size, image_id=1)
    fw_v2 = generator.os_version_change(fw_v1, revision=2)
    vendor_id, server_id, anchors = make_test_identities()
    vendor = VendorServer(vendor_id, app_id=APP_ID,
                          link_offset=LINK_OFFSET)
    server = UpdateServer(server_id)
    server.publish(vendor.release(fw_v1, 1))

    straggler_index = int(device_count * _STRAGGLER_FRACTION)
    storm_index = int(device_count * _STORM_FRACTION)
    fleet: List[DeviceRecord] = []
    for index in range(device_count):
        internal = NRF52840.make_internal_flash()
        layout = MemoryLayout.configuration_a(internal, 128 * 1024)
        profile = DeviceProfile(device_id=0x6000 + index, app_id=APP_ID,
                                link_offset=LINK_OFFSET)
        device = SimulatedDevice(
            board=NRF52840, os_profile=ZEPHYR, layout=layout,
            profile=profile, anchors=anchors,
        )
        provision_device(server, layout.get("a"), profile.device_id)
        transport = "pull" if index % 2 else "push"
        link_profile = COAP_6LOWPAN if transport == "pull" else BLE_GATT
        link = None
        if index == straggler_index:
            plan = FaultPlan.single(FaultKind.SLOW_LINK, 0,
                                    param=_STRAGGLER_FACTOR)
            link = FaultInjector(plan).make_link(link_profile)
        elif index == storm_index:
            # Early, closely spaced outages: the transport resumes
            # through each one, racking up interruptions.  Offsets stay
            # within the first kilobyte of link traffic so every outage
            # fires even when the payload is a small delta.
            plan = FaultPlan.build(
                [(FaultKind.LINK_OUTAGE,
                  [96 * (n + 1) for n in range(_STORM_OUTAGES)], 1)])
            link = FaultInjector(plan).make_link(link_profile)
        fleet.append(DeviceRecord(
            name="fleet-%03d" % index,
            device=device,
            transport=transport,
            link=link,
        ))

    server.publish(vendor.release(fw_v2, 2))
    return (server, fleet, fleet[straggler_index].name,
            fleet[storm_index].name)


@dataclass
class FleetviewResult:
    """Everything one fleetview run produced."""

    devices: int
    image_bytes: int
    straggler: str
    storm: str
    campaign_report: Dict[str, object]
    telemetry: FleetTelemetry
    openmetrics: str

    def to_dict(self) -> Dict[str, object]:
        """The ``fleetview`` JSON artifact body (pre-stamping)."""
        return {
            "devices": self.devices,
            "image_bytes": self.image_bytes,
            "injected": {"straggler": self.straggler,
                         "storm": self.storm},
            "slo_verdict": self.telemetry.verdict(),
            "campaign": self.campaign_report,
            "telemetry": self.telemetry.to_dict(),
        }


def run_fleetview(device_count: int = DEFAULT_DEVICES,
                  image_size: int = DEFAULT_IMAGE_SIZE,
                  slos: Sequence[SLO] = DEFAULT_SLOS,
                  thresholds: Optional[HealthThresholds] = None,
                  ) -> FleetviewResult:
    """Run the instrumented campaign and collect every artifact."""
    server, fleet, straggler, storm = build_fleet(device_count,
                                                 image_size)
    telemetry = FleetTelemetry(slos=slos, thresholds=thresholds)
    campaign = Campaign(
        server, fleet,
        RolloutPolicy(canary_fraction=0.1),
        retry=RetryPolicy(
            max_attempts=2,
            transport_retry=TransportRetryPolicy(max_attempts=8)),
        telemetry=telemetry,
    )
    report = campaign.run()
    openmetrics = to_openmetrics(
        [(record.name, record.device.metrics) for record in fleet])
    return FleetviewResult(
        devices=device_count,
        image_bytes=image_size,
        straggler=straggler,
        storm=storm,
        campaign_report=report.to_dict(),
        telemetry=telemetry,
        openmetrics=openmetrics,
    )


def write_artifacts(result: FleetviewResult, json_path: str,
                    metrics_path: str) -> None:
    """Write the stamped JSON document and the OpenMetrics text file."""
    write_fleetview_report(result.to_dict(), json_path)
    with open(metrics_path, "w", encoding="utf-8") as fh:
        fh.write(result.openmetrics)


def format_summary(result: FleetviewResult) -> str:
    """Human-readable fleetview digest: waves, anomalies, verdict."""
    campaign = result.campaign_report
    lines = [
        "fleetview: %d devices, %d-byte image "
        "(straggler: %s, storm: %s)"
        % (result.devices, result.image_bytes, result.straggler,
           result.storm),
        "  updated %d / failed %d / quarantined %d / skipped %d"
        % (len(campaign["updated"]), len(campaign["failed"]),
           len(campaign["quarantined"]), len(campaign["skipped"])),
    ]
    for verdict in result.telemetry.verdicts:
        scores = verdict.health.scores
        worst = sorted(scores, key=lambda name: scores[name])[:3]
        lines.append(
            "  wave %d: %d devices, action=%s, %d anomal%s"
            % (verdict.wave, len(scores), verdict.action.value,
               len(verdict.health.anomalies),
               "y" if len(verdict.health.anomalies) == 1 else "ies"))
        for name in worst:
            kinds = verdict.health.kinds_for(name)
            lines.append("    %-12s health %5.1f%s"
                         % (name, scores[name],
                            "  [%s]" % ", ".join(kinds) if kinds else ""))
        for breach in verdict.breaches:
            lines.append(
                "    BREACH %s: %s %.3f > %.3f -> %s"
                % (breach.name, breach.metric, breach.observed,
                   breach.threshold, breach.action.value))
    lines.append("  SLO verdict: %s" % result.telemetry.verdict())
    return "\n".join(lines)
