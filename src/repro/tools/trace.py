"""Traced end-to-end updates: the flight recorder's host-side harness.

``upkit trace`` runs one complete update per slot configuration with
the device's :class:`~repro.obs.Tracer` enabled, then writes a single
Chrome-trace JSON artifact (open it in ``chrome://tracing`` or
Perfetto) whose extra top-level keys carry the per-configuration
metrics snapshots.  Each configuration exports under its own ``pid``
with a named process, so the A/B and static timelines sit side by side
in the viewer.

The timeline covers the full lifecycle the ISSUE names: release
generation and signing, token issuance, the per-block transfer with
retry/backoff annotations, the receive pipeline, agent verification,
and the reboot through the bootloader (slot swap / boot selection).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

from ..obs import MetricsRegistry, merge_chrome_traces
from ..sim import Testbed
from ..workload import FirmwareGenerator
from .report import write_report

__all__ = ["run_traced_update", "run_trace", "write_trace",
           "format_summary", "DEFAULT_IMAGE_SIZE"]

DEFAULT_IMAGE_SIZE = 16 * 1024


def run_traced_update(slot_configuration: str = "a",
                      transport: str = "push",
                      image_size: int = DEFAULT_IMAGE_SIZE,
                      pid: int = 1,
                      seed: bytes = b"upkit-trace") -> Dict[str, object]:
    """One traced end-to-end update; returns a per-configuration record.

    The record holds the configuration's Chrome-trace document (under
    its own ``pid``), the device's metrics snapshot, and the outcome
    summary.  Raises ``RuntimeError`` if the update does not succeed —
    a trace of a broken update is a debugging artifact, not a report.
    """
    generator = FirmwareGenerator(seed=seed)
    base = generator.firmware(image_size, image_id=1)
    bed = Testbed.create(slot_configuration=slot_configuration,
                         initial_firmware=base)
    device = bed.device
    device.tracer.enabled = True

    new = generator.os_version_change(base, revision=2)
    with device.tracer.span("generation", category="server",
                            version=2, nbytes=len(new)):
        bed.release(new, 2)

    outcome = (bed.push_update() if transport == "push"
               else bed.pull_update())
    if not outcome.success:
        raise RuntimeError("traced update failed (%s slots, %s): %s"
                           % (slot_configuration, transport,
                              outcome.error))

    label = "config-%s/%s" % (slot_configuration, transport)
    document = device.tracer.to_chrome_trace(pid=pid, process_name=label)
    return {
        "label": label,
        "slot_configuration": slot_configuration,
        "transport": transport,
        "image_bytes": image_size,
        "pid": pid,
        "booted_version": outcome.booted_version,
        "total_seconds": round(outcome.total_seconds, 6),
        "bytes_over_air": outcome.bytes_over_air,
        "total_energy_mj": round(outcome.total_energy_mj, 6),
        "spans": len(device.tracer.spans),
        "chrome": document,
        "metrics": device.metrics.snapshot(),
    }


def run_trace(slot_configurations: tuple = ("a", "b"),
              transport: str = "push",
              image_size: int = DEFAULT_IMAGE_SIZE) -> Dict[str, object]:
    """Traced updates on every requested slot configuration, merged."""
    records: List[Dict[str, object]] = []
    for index, slots in enumerate(slot_configurations):
        records.append(run_traced_update(
            slot_configuration=slots, transport=transport,
            image_size=image_size, pid=index + 1))
    merged = merge_chrome_traces([record.pop("chrome")
                                  for record in records])
    metrics = {record["label"]: record.pop("metrics")
               for record in records}
    document: Dict[str, object] = dict(merged)
    document["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                             time.gmtime())
    document["host"] = {"python": sys.version.split()[0]}
    document["configurations"] = records
    document["metrics"] = metrics
    return document


def write_trace(document: Dict[str, object], path: str) -> str:
    """Write a schema-stamped trace artifact (see ``tools/report.py``)."""
    return write_report(document, path, "trace")


def format_summary(document: Dict[str, object],
                   metrics_table: bool = True) -> str:
    """Human-readable digest: one line per configuration + metrics."""
    lines: List[str] = []
    for record in document["configurations"]:
        lines.append(
            "%-16s booted v%d in %8.2f s virtual, %6d B over air, "
            "%7.1f mJ, %d spans"
            % (record["label"], record["booted_version"],
               record["total_seconds"], record["bytes_over_air"],
               record["total_energy_mj"], record["spans"]))
    if metrics_table:
        formatter = MetricsRegistry()
        for label, snapshot in sorted(document["metrics"].items()):
            lines.append("")
            lines.append("-- metrics: %s " % label + "-" * 30)
            lines.append(formatter.format_table(snapshot))
    return "\n".join(lines)
