"""Update-generation and signing tooling (command line).

The host-side half of UpKit: generate keys, turn a firmware binary into
a signed vendor release, specialise it for a device token (the update
server's double signature), and verify/inspect images — all on files,
so the tooling works without any network.

Subcommands::

    upkit keygen  --out keys/ [--vendor-seed S] [--server-seed S]
    upkit release --firmware fw.bin --version N --app-id A
                  --link-offset L --vendor-key keys/vendor.key
                  --out release.bin
    upkit prepare --release release.bin --server-key keys/server.key
                  --device-id D --nonce X [--current-version V
                  --old-firmware old.bin] --out image.bin
    upkit verify  --image image.bin --vendor-pub keys/vendor.pub
                  --server-pub keys/server.pub
    upkit inspect --image image.bin
    upkit bench   [--devices N] [--image-size BYTES] [--workers W]
                  [--out BENCH_fleet.json] [--baseline PREV.json]
                  [--tolerance F] [--strict] [--io-rtt S]
                  [--delta-out BENCH_delta.json] [--delta-size BYTES]
    upkit chaos   [--points N] [--seed S] [--slots a|b]
                  [--transport push|pull] [--image-size BYTES]
                  [--correlated] [--devices N] [--domains N]
                  [--grid N] [--out CHAOS_report.json]
    upkit trace   [--slots a|b|both] [--transport push|pull]
                  [--image-size BYTES] [--out trace.json]
    upkit fleetview [--devices N] [--image-size BYTES]
                  [--slo-p95 S] [--slo-failure-rate F] [--slo-energy MJ]
                  [--out FLEET_telemetry.json]
                  [--metrics-out FLEET_metrics.prom]
    upkit report  [--validate] PATH...

Run as ``python -m repro.tools.cli <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..compression import compress as lzss_compress
from ..core import (
    DeviceToken,
    PayloadKind,
    SignedManifest,
    SigningIdentity,
    TrustAnchors,
    UpdateImage,
    VendorRelease,
    VendorServer,
    Verifier,
)
from ..crypto import PrivateKey, PublicKey, generate_keypair, get_backend
from ..delta import diff as bsdiff_diff

__all__ = ["main"]


def _write(path: str, data: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(data)


def _read(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _load_private(path: str) -> PrivateKey:
    return PrivateKey(int(_read(path).decode("ascii").strip(), 16))


def _load_public(path: str) -> PublicKey:
    return PublicKey.decode(bytes.fromhex(_read(path).decode("ascii").strip()))


# -- subcommands -----------------------------------------------------------------


def cmd_keygen(args: argparse.Namespace) -> int:
    os.makedirs(args.out, exist_ok=True)
    for role, seed in (("vendor", args.vendor_seed),
                       ("server", args.server_seed)):
        key = generate_keypair(seed.encode("utf-8"))
        _write(os.path.join(args.out, "%s.key" % role),
               ("%064x" % key.scalar).encode("ascii"))
        _write(os.path.join(args.out, "%s.pub" % role),
               key.public_key().encode().hex().encode("ascii"))
    print("wrote vendor.key/.pub and server.key/.pub to %s" % args.out)
    return 0


def cmd_release(args: argparse.Namespace) -> int:
    firmware = _read(args.firmware)
    identity = SigningIdentity("vendor", _load_private(args.vendor_key))
    vendor = VendorServer(identity, app_id=args.app_id,
                          link_offset=args.link_offset)
    release = vendor.release(firmware, args.version)
    blob = (release.manifest.pack() + release.vendor_signature
            + release.firmware)
    _write(args.out, blob)
    print("release v%d: %d firmware bytes, digest %s..."
          % (args.version, len(firmware),
             release.manifest.digest.hex()[:16]))
    return 0


def _load_release(path: str) -> VendorRelease:
    from ..core.manifest import MANIFEST_SIZE, Manifest

    blob = _read(path)
    manifest = Manifest.unpack(blob[:MANIFEST_SIZE])
    signature = blob[MANIFEST_SIZE:MANIFEST_SIZE + 64]
    firmware = blob[MANIFEST_SIZE + 64:]
    return VendorRelease(manifest=manifest, vendor_signature=signature,
                         firmware=firmware)


def cmd_prepare(args: argparse.Namespace) -> int:
    release = _load_release(args.release)
    identity = SigningIdentity("update-server",
                               _load_private(args.server_key))
    token = DeviceToken(device_id=args.device_id, nonce=args.nonce,
                        current_version=args.current_version)

    payload = release.firmware
    payload_kind = PayloadKind.FULL
    old_version = 0
    if args.current_version and args.old_firmware:
        old = _read(args.old_firmware)
        delta = lzss_compress(bsdiff_diff(old, release.firmware))
        if len(delta) < len(release.firmware):
            payload = delta
            payload_kind = PayloadKind.DELTA_LZSS
            old_version = args.current_version

    manifest = release.manifest.bind_token(
        token, payload_kind=payload_kind, payload_size=len(payload),
        old_version=old_version)
    envelope = SignedManifest(
        manifest=manifest,
        vendor_signature=release.vendor_signature,
        server_signature=identity.sign(
            manifest.pack() + release.vendor_signature),
    )
    image = UpdateImage(envelope=envelope, payload=payload)
    _write(args.out, image.pack())
    kind = "delta" if manifest.is_delta else "full"
    print("image for device 0x%08X nonce 0x%08X: %s payload, %d bytes"
          % (args.device_id, args.nonce, kind, image.total_size))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    image = UpdateImage.unpack(_read(args.image))
    anchors = TrustAnchors(vendor=_load_public(args.vendor_pub),
                           server=_load_public(args.server_pub))
    verifier = Verifier(anchors, get_backend("tinycrypt"))
    try:
        verifier.verify_signatures(image.envelope)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print("INVALID: %s" % exc)
        return 1
    print("OK: both signatures verify (version %d, %s payload)"
          % (image.manifest.version,
             "delta" if image.manifest.is_delta else "full"))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one simulated update end to end and print the breakdown."""
    from ..platform import get_board, get_os
    from ..sim import Testbed
    from ..workload import FirmwareGenerator

    generator = FirmwareGenerator(seed=args.seed.encode("utf-8"))
    base = generator.firmware(args.size, image_id=1)
    testbed = Testbed.create(
        board=get_board(args.board),
        os_profile=get_os(args.os),
        crypto_library=args.crypto,
        slot_configuration=args.slots,
        initial_firmware=base,
        supports_differential=not args.full,
    )
    new = generator.os_version_change(base, revision=2)
    testbed.release(new, 2)
    outcome = (testbed.push_update() if args.transport == "push"
               else testbed.pull_update())
    if not outcome.success:
        print("update FAILED: %s" % outcome.error)
        return 1
    print("booted version %d on %s/%s (%s, %s slots, %s)"
          % (outcome.booted_version, args.board, args.os, args.crypto,
             "A/B" if args.slots == "a" else "static", args.transport))
    print("bytes over air : %d (image: %d)"
          % (outcome.bytes_over_air, len(new)))
    print("total time     : %.1f s" % outcome.total_seconds)
    for phase in ("propagation", "verification", "loading"):
        seconds = outcome.phases.get(phase, 0.0)
        print("  %-13s: %7.2f s  (%4.1f%%)"
              % (phase, seconds, 100 * seconds / outcome.total_seconds))
    print("energy         : %.1f mJ" % outcome.total_energy_mj)
    for component, energy in sorted(outcome.energy_mj.items()):
        print("  %-13s: %7.1f mJ" % (component, energy))
    return 0


def cmd_export_suit(args: argparse.Namespace) -> int:
    """Export a vendor release as a signed IETF SUIT envelope."""
    from ..suit import export_release

    release = _load_release(args.release)
    key = _load_private(args.vendor_key)
    blob = export_release(release, key)
    _write(args.out, blob)
    print("SUIT envelope for v%d: %d bytes of CBOR"
          % (release.version, len(blob)))
    return 0


def cmd_import_suit(args: argparse.Namespace) -> int:
    """Verify a SUIT envelope and print the recovered UpKit manifest."""
    from ..suit import SuitEnvelope, SuitError, suit_to_upkit

    try:
        envelope = SuitEnvelope.from_cbor(_read(args.envelope))
    except SuitError as exc:
        print("INVALID: %s" % exc)
        return 1
    if not envelope.verify(_load_public(args.vendor_pub)):
        print("INVALID: COSE signature does not verify")
        return 1
    try:
        manifest = suit_to_upkit(envelope.manifest)
    except ValueError as exc:
        print("INVALID: %s" % exc)
        return 1
    print(json.dumps({
        "sequence_number": envelope.manifest.sequence_number,
        "version": manifest.version,
        "size": manifest.size,
        "digest": manifest.digest.hex(),
        "app_id": "0x%08X" % manifest.app_id,
        "link_offset": "0x%08X" % manifest.link_offset,
    }, indent=2))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the fleet-scale performance harness; write BENCH_fleet.json.

    With ``--baseline``, gate the fresh run against a previous bench
    artifact: exit status 1 when any engine configuration's campaign
    wall-clock regressed by more than ``--tolerance`` (default +20 %),
    or when the columnar ``fleet_scale`` section lost more than the
    tolerance in devices/s or gained it in peak RSS.  Executor
    inversions (a pooled executor losing to serial on the same
    profile) are printed as warnings; ``--strict`` turns them into exit
    status 1.  ``--delta-out`` additionally runs the delta fast-path
    benchmark and writes its artifact (BENCH_delta.json by convention).

    ``--devices`` sizes the columnar fleet-scale campaign; the hydrated
    executor-comparison campaigns are capped at 200 devices (hydrating
    a million full simulators is what the columnar path exists to
    avoid), so ``upkit bench --devices 1000000`` is a bounded-memory
    million-device run.
    """
    from . import bench, report as report_mod

    hydrated = min(args.devices or 50, 200)
    results = bench.run_all(device_count=hydrated,
                            image_size=args.image_size,
                            max_workers=args.workers,
                            io_rtt_seconds=args.io_rtt,
                            scale_devices=args.devices)
    path = bench.write_results(results, args.out)
    print(bench.format_summary(results))
    print("wrote %s" % path)
    inversions = bench.find_inversions(results)
    for inversion in inversions:
        print("WARNING: executor inversion: %s" % inversion)
    if args.delta_out is not None:
        delta_results = bench.run_delta(image_size=args.delta_size)
        delta_path = bench.write_delta_results(delta_results, args.delta_out)
        print(bench.format_delta_summary(delta_results))
        print("wrote %s" % delta_path)
    if inversions and args.strict:
        print("STRICT: %d executor inversion(s); failing" % len(inversions))
        return 1
    if args.baseline is None:
        return 0
    try:
        kind, _version, baseline = report_mod.load_report(args.baseline)
    except (report_mod.ReportError, OSError, ValueError) as exc:
        print("baseline %s: UNUSABLE (%s)" % (args.baseline, exc))
        return 1
    if kind != "bench":
        print("baseline %s is a %r report, not bench"
              % (args.baseline, kind))
        return 1
    problems = bench.compare_to_baseline(results, baseline,
                                         tolerance=args.tolerance)
    for problem in problems:
        print("REGRESSION: %s" % problem)
    if not problems:
        print("within %.0f%% of baseline %s"
              % (100.0 * args.tolerance, args.baseline))
    return 1 if problems else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the fault-injection sweep; write CHAOS_report.json.

    ``--correlated`` additionally runs the correlated fleet sweep
    (fault domains x storm severity x coordinator kills) and embeds its
    section in the same artifact (schema v4).  Exit status 1 when any
    fault point bricked a device, when the correlated sweep bricked a
    fleet member, or when a coordinator-kill resume diverged from its
    uninterrupted twin.
    """
    from . import chaos

    def progress(done: int, total: int, result) -> None:
        if args.verbose:
            print("[%3d/%3d] %-28s %s"
                  % (done, total, result.point.label, result.status))

    report = chaos.run_sweep(points=args.points, seed=args.seed,
                             slot_configuration=args.slots,
                             transport=args.transport,
                             image_size=args.image_size,
                             progress=progress)
    failed = bool(report.bricked)
    print(chaos.format_summary(report))

    if args.correlated:
        def corr_progress(done: int, total: int, result) -> None:
            if args.verbose:
                print("[%3d/%3d] %-28s amp=%.2fx bricked=%d"
                      % (done, total, result.point.label,
                         result.amplification, result.bricked))

        grid = None
        if args.domains is not None:
            grid = chaos.build_correlated_grid(
                domain_counts=(args.domains,))
        if args.grid is not None:
            grid = (grid if grid is not None
                    else chaos.build_correlated_grid())[:args.grid]
        correlated = chaos.run_correlated_sweep(
            devices=args.devices, seed=args.seed, grid=grid,
            progress=corr_progress)
        report.correlated = correlated.to_dict()
        print(chaos.format_correlated_summary(correlated))
        failed = failed or bool(correlated.bricked_total) \
            or not correlated.resume_identical_all

    path = chaos.write_report(report, args.out)
    print("wrote %s" % path)
    return 1 if failed else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run traced updates and write a Chrome-trace artifact."""
    from . import trace

    slot_configurations = (("a", "b") if args.slots == "both"
                           else (args.slots,))
    document = trace.run_trace(slot_configurations=slot_configurations,
                               transport=args.transport,
                               image_size=args.image_size)
    path = trace.write_trace(document, args.out)
    print(trace.format_summary(document))
    print("wrote %s (load it in chrome://tracing or ui.perfetto.dev)"
          % path)
    return 0


def cmd_fleetview(args: argparse.Namespace) -> int:
    """Run an instrumented campaign under the fleet telemetry plane.

    Writes the schema-versioned ``fleetview`` JSON artifact plus an
    OpenMetrics text file of every device registry.  Exit status 1 when
    any SLO breached — the summary names the breach and the action it
    forced on the rollout.
    """
    from ..obs.slo import SLO, Action
    from . import fleetview

    slos = (
        SLO("update-time-p95", "p95_update_seconds", args.slo_p95,
            Action.PAUSE),
        SLO("failure-rate", "failure_rate", args.slo_failure_rate,
            Action.ABORT),
        SLO("energy-per-update", "max_energy_mj", args.slo_energy,
            Action.SLOW),
    )
    result = fleetview.run_fleetview(device_count=args.devices,
                                     image_size=args.image_size,
                                     slos=slos)
    fleetview.write_artifacts(result, args.out, args.metrics_out)
    print(fleetview.format_summary(result))
    print("wrote %s and %s" % (args.out, args.metrics_out))
    return 1 if result.telemetry.breached else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the fleet API server (HTTP face) until interrupted.

    Stands up one :class:`~repro.serve.service.FleetService` with the
    demo release channels seeded, journaling network-created campaigns
    under ``--journal-dir`` so a killed server resumes them
    byte-identically (``POST /campaigns/{name}/resume``).  With
    ``--access-log`` every request is appended to a JSON-lines file
    (route, status, bytes, duration, trace_id).
    """
    import asyncio

    from ..serve import FleetService, HttpServer, ServeTelemetry

    service = FleetService(journal_dir=args.journal_dir,
                           chunk_size=args.chunk_size)
    service.seed_channels(image_size=args.image_size)
    telemetry = ServeTelemetry(service.metrics,
                               access_log_path=args.access_log)

    async def run() -> None:
        async with HttpServer(service, host=args.host, port=args.port,
                              telemetry=telemetry) as server:
            print("upkit serve: http://%s:%d (channels: %s)"
                  % (args.host, server.port,
                     ", ".join(sorted(service.channels))))
            if args.journal_dir:
                print("campaign WAL dir: %s" % args.journal_dir)
            if args.access_log:
                print("access log: %s" % args.access_log)
            try:
                await asyncio.Event().wait()
            except asyncio.CancelledError:
                pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("upkit serve: shutting down")
    finally:
        telemetry.close()
    return 0


def cmd_swarm(args: argparse.Namespace) -> int:
    """Swarm-bench the fleet API server; write BENCH_server.json.

    Self-hosts a server in-process and drives ``--sessions`` full
    register → token → manifest → chunked download → report flows
    against it, recording per-endpoint p50/p99, req/s and peak RSS
    (bench schema v5).  Exit status 1 when any session failed, or —
    with ``--baseline`` — when p99/RSS grew or req/s dropped by more
    than ``--tolerance`` against a previous artifact.

    With ``--trace`` the swarm runs twice — tracing off for the gated
    numbers, then on — writing one merged device+server Chrome-trace
    (``--trace-out``, trace schema v2) and a ``trace_overhead`` block
    into the bench artifact; the run fails when tracing-on costs more
    than ``--trace-budget`` of req/s.

    With ``--profile`` a server-traced re-run is aggregated into a
    ``server.profile`` block: per endpoint class, where the
    milliseconds went (parse / signer-pool queue wait / sign /
    serialize / socket write).  The gated numbers stay from the
    untraced run.
    """
    from . import bench, report as report_mod, swarm

    trace_problems: list = []
    trace_path = None
    if args.trace:
        results, trace_doc = swarm.run_traced_benchmark(
            sessions=args.sessions, concurrency=args.concurrency,
            image_size=args.image_size, chunk_bytes=args.chunk_bytes)
        trace_path = report_mod.write_report(trace_doc, args.trace_out,
                                             "trace")
        trace_problems = swarm.trace_overhead_problems(
            results.get("server", {}), budget=args.trace_budget)
        if args.profile:
            results["server"]["profile"] = swarm.profile_section(
                sessions=args.sessions, concurrency=args.concurrency,
                image_size=args.image_size,
                chunk_bytes=args.chunk_bytes)
    elif args.profile:
        results = swarm.run_profiled_benchmark(
            sessions=args.sessions, concurrency=args.concurrency,
            image_size=args.image_size, chunk_bytes=args.chunk_bytes)
    else:
        results = swarm.run_benchmark(sessions=args.sessions,
                                      concurrency=args.concurrency,
                                      image_size=args.image_size,
                                      chunk_bytes=args.chunk_bytes)
    path = swarm.write_results(results, args.out)
    print(swarm.format_summary(results))
    print("wrote %s" % path)
    if trace_path is not None:
        print("wrote %s" % trace_path)
    server = results.get("server", {})
    failed = server.get("failed_sessions", 0)
    if failed:
        for failure in server.get("failures", []):
            print("FAILED: %s" % failure)
        print("%d of %d sessions failed" % (failed,
                                            server.get("sessions", 0)))
        return 1
    for problem in trace_problems:
        print("TRACE OVERHEAD: %s" % problem)
    if trace_problems:
        return 1
    if args.baseline is None:
        return 0
    try:
        kind, _version, baseline = report_mod.load_report(args.baseline)
    except (report_mod.ReportError, OSError, ValueError) as exc:
        print("baseline %s: UNUSABLE (%s)" % (args.baseline, exc))
        return 1
    if kind != "bench":
        print("baseline %s is a %r report, not bench"
              % (args.baseline, kind))
        return 1
    problems = bench.compare_to_baseline(results, baseline,
                                         tolerance=args.tolerance)
    for problem in problems:
        print("REGRESSION: %s" % problem)
    if not problems:
        print("within %.0f%% of baseline %s"
              % (100.0 * args.tolerance, args.baseline))
    return 1 if problems else 0


def cmd_report(args: argparse.Namespace) -> int:
    """Inspect (and optionally validate) schema-stamped JSON artifacts.

    With ``--validate``, exit status 1 when any artifact fails its
    kind's schema checks — this is the CI guard against silent drift.
    """
    from . import report as report_mod

    drifted = False
    for path in args.paths:
        try:
            kind, version, _data = report_mod.load_report(path)
        except (report_mod.ReportError, OSError, ValueError) as exc:
            print("%s: UNRECOGNISED (%s)" % (path, exc))
            drifted = True
            continue
        current = report_mod.SCHEMA_VERSIONS.get(kind)
        print("%s: %s report, schema v%d (current: v%s)"
              % (path, kind, version, current))
        if args.validate:
            problems = report_mod.validate_file(path)
            for problem in problems:
                print("  DRIFT: %s" % problem)
            if problems:
                drifted = True
            else:
                print("  ok")
    return 1 if drifted else 0


def cmd_inspect(args: argparse.Namespace) -> int:
    image = UpdateImage.unpack(_read(args.image))
    manifest = image.manifest
    print(json.dumps({
        "version": manifest.version,
        "old_version": manifest.old_version,
        "device_id": "0x%08X" % manifest.device_id,
        "nonce": "0x%08X" % manifest.nonce,
        "size": manifest.size,
        "payload_size": manifest.payload_size,
        "payload_kind": manifest.payload_kind,
        "is_delta": manifest.is_delta,
        "link_offset": "0x%08X" % manifest.link_offset,
        "app_id": "0x%08X" % manifest.app_id,
        "digest": manifest.digest.hex(),
    }, indent=2))
    return 0


# -- argument parsing ---------------------------------------------------------------


def _hex_int(text: str) -> int:
    return int(text, 0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="upkit", description="UpKit update-generation tooling")
    sub = parser.add_subparsers(dest="command", required=True)

    keygen = sub.add_parser("keygen", help="generate vendor + server keys")
    keygen.add_argument("--out", required=True)
    keygen.add_argument("--vendor-seed", default="upkit-vendor")
    keygen.add_argument("--server-seed", default="upkit-server")
    keygen.set_defaults(func=cmd_keygen)

    release = sub.add_parser("release", help="sign a vendor release")
    release.add_argument("--firmware", required=True)
    release.add_argument("--version", type=int, required=True)
    release.add_argument("--app-id", type=_hex_int, required=True)
    release.add_argument("--link-offset", type=_hex_int, required=True)
    release.add_argument("--vendor-key", required=True)
    release.add_argument("--out", required=True)
    release.set_defaults(func=cmd_release)

    prepare = sub.add_parser(
        "prepare", help="bind a release to a device token and double-sign")
    prepare.add_argument("--release", required=True)
    prepare.add_argument("--server-key", required=True)
    prepare.add_argument("--device-id", type=_hex_int, required=True)
    prepare.add_argument("--nonce", type=_hex_int, required=True)
    prepare.add_argument("--current-version", type=int, default=0)
    prepare.add_argument("--old-firmware", default=None)
    prepare.add_argument("--out", required=True)
    prepare.set_defaults(func=cmd_prepare)

    verify = sub.add_parser("verify", help="verify an update image")
    verify.add_argument("--image", required=True)
    verify.add_argument("--vendor-pub", required=True)
    verify.add_argument("--server-pub", required=True)
    verify.set_defaults(func=cmd_verify)

    inspect = sub.add_parser("inspect", help="print an image's manifest")
    inspect.add_argument("--image", required=True)
    inspect.set_defaults(func=cmd_inspect)

    export_suit = sub.add_parser(
        "export-suit", help="export a release as an IETF SUIT envelope")
    export_suit.add_argument("--release", required=True)
    export_suit.add_argument("--vendor-key", required=True)
    export_suit.add_argument("--out", required=True)
    export_suit.set_defaults(func=cmd_export_suit)

    import_suit = sub.add_parser(
        "import-suit", help="verify a SUIT envelope and print its manifest")
    import_suit.add_argument("--envelope", required=True)
    import_suit.add_argument("--vendor-pub", required=True)
    import_suit.set_defaults(func=cmd_import_suit)

    simulate = sub.add_parser(
        "simulate", help="run one simulated update and print its cost")
    simulate.add_argument("--board", default="nrf52840",
                          choices=("nrf52840", "cc2650", "cc2538"))
    simulate.add_argument("--os", default="zephyr",
                          choices=("zephyr", "riot", "contiki"))
    simulate.add_argument("--crypto", default="tinycrypt",
                          choices=("tinydtls", "tinycrypt",
                                   "cryptoauthlib"))
    simulate.add_argument("--slots", default="a", choices=("a", "b"))
    simulate.add_argument("--transport", default="push",
                          choices=("push", "pull"))
    simulate.add_argument("--size", type=int, default=64 * 1024)
    simulate.add_argument("--full", action="store_true",
                          help="force a full-image update (no delta)")
    simulate.add_argument("--seed", default="upkit-simulate")
    simulate.set_defaults(func=cmd_simulate)

    bench = sub.add_parser(
        "bench", help="run the fleet-scale performance benchmark harness")
    bench.add_argument("--devices", type=int, default=None,
                       help="fleet size for the columnar fleet_scale "
                            "campaign; hydrated executor comparisons "
                            "cap at 200 (default: 50 hydrated, "
                            "10000 columnar)")
    bench.add_argument("--image-size", type=int, default=24 * 1024,
                       help="firmware image size in bytes (default: 24576)")
    bench.add_argument("--workers", type=int, default=None,
                       help="parallel executor worker count "
                            "(default: CPU count, capped at 16)")
    bench.add_argument("--out", default="BENCH_fleet.json",
                       help="result file (default: ./BENCH_fleet.json)")
    bench.add_argument("--baseline", default=None,
                       help="previous bench artifact to regression-gate "
                            "against (exit 1 on >tolerance slowdown)")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       help="allowed fractional slowdown vs baseline "
                            "(default: 0.20)")
    bench.add_argument("--strict", action="store_true",
                       help="exit 1 when a pooled executor is slower "
                            "than serial on any profile")
    bench.add_argument("--io-rtt", type=float, default=0.05,
                       help="host RTT in seconds for the campaign_io "
                            "profile (default: 0.05)")
    bench.add_argument("--delta-out", default=None,
                       help="also run the delta fast-path benchmark and "
                            "write its artifact here (e.g. "
                            "BENCH_delta.json)")
    bench.add_argument("--delta-size", type=int, default=96 * 1024,
                       help="firmware size for the delta fast-path "
                            "benchmark (default: 98304)")
    bench.set_defaults(func=cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="run the fault-injection anti-bricking sweep")
    chaos.add_argument("--points", type=int, default=216,
                       help="fault grid size (default: 216)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="sweep seed (links, jitter; default: 0)")
    chaos.add_argument("--slots", default="b", choices=("a", "b"),
                       help="slot configuration under test (default: b)")
    chaos.add_argument("--transport", default="push",
                       choices=("push", "pull"))
    chaos.add_argument("--image-size", type=int, default=16 * 1024,
                       help="firmware image size in bytes (default: 16384)")
    chaos.add_argument("--verbose", action="store_true",
                       help="print each fault point as it completes")
    chaos.add_argument("--correlated", action="store_true",
                       help="additionally run the correlated fleet "
                            "sweep (fault domains x storm severity x "
                            "coordinator kills)")
    chaos.add_argument("--devices", type=int, default=12,
                       help="fleet size for --correlated (default: 12)")
    chaos.add_argument("--domains", type=int, default=None,
                       help="fix the correlated grid to one fault-"
                            "domain count (default: sweep 2 and 3)")
    chaos.add_argument("--grid", type=int, default=None,
                       help="cap the correlated grid to its first N "
                            "points (default: the full 72-point grid)")
    chaos.add_argument("--out", default="CHAOS_report.json",
                       help="report file (default: ./CHAOS_report.json)")
    chaos.set_defaults(func=cmd_chaos)

    trace = sub.add_parser(
        "trace", help="run traced updates and emit Chrome-trace JSON")
    trace.add_argument("--slots", default="both",
                       choices=("a", "b", "both"),
                       help="slot configuration(s) to trace "
                            "(default: both)")
    trace.add_argument("--transport", default="push",
                       choices=("push", "pull"))
    trace.add_argument("--image-size", type=int, default=16 * 1024,
                       help="firmware image size in bytes (default: 16384)")
    trace.add_argument("--out", default="trace.json",
                       help="trace artifact (default: ./trace.json)")
    trace.set_defaults(func=cmd_trace)

    fleetview = sub.add_parser(
        "fleetview",
        help="run an instrumented campaign with the telemetry plane")
    fleetview.add_argument("--devices", type=int, default=50,
                           help="campaign fleet size (default: 50)")
    fleetview.add_argument("--image-size", type=int, default=24 * 1024,
                           help="firmware image size in bytes "
                                "(default: 24576)")
    fleetview.add_argument("--slo-p95", type=float, default=600.0,
                           help="SLO: p95 update seconds; breach pauses "
                                "the rollout (default: 600)")
    fleetview.add_argument("--slo-failure-rate", type=float, default=0.2,
                           help="SLO: max wave failure rate; breach "
                                "aborts (default: 0.2)")
    fleetview.add_argument("--slo-energy", type=float, default=10000.0,
                           help="SLO: max per-update energy in mJ; "
                                "breach slows the rollout "
                                "(default: 10000)")
    fleetview.add_argument("--out", default="FLEET_telemetry.json",
                           help="JSON artifact "
                                "(default: ./FLEET_telemetry.json)")
    fleetview.add_argument("--metrics-out", default="FLEET_metrics.prom",
                           help="OpenMetrics text file "
                                "(default: ./FLEET_metrics.prom)")
    fleetview.set_defaults(func=cmd_fleetview)

    serve = sub.add_parser(
        "serve", help="run the fleet API server (HTTP face)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8777)
    serve.add_argument("--chunk-size", type=int, default=2048,
                       help="advertised image chunk size (bytes)")
    serve.add_argument("--image-size", type=int, default=8 * 1024,
                       help="demo channel firmware size (bytes)")
    serve.add_argument("--access-log", default=None,
                       help="append one JSON line per request "
                            "(route, status, bytes, duration, trace_id)")
    serve.add_argument("--journal-dir", default=None,
                       help="directory for campaign WALs + specs "
                            "(enables kill-and-resume)")
    serve.set_defaults(func=cmd_serve)

    swarm = sub.add_parser(
        "swarm", help="swarm-bench the fleet API server")
    swarm.add_argument("--sessions", type=int, default=1000,
                       help="concurrent device sessions to drive")
    swarm.add_argument("--concurrency", type=int, default=256,
                       help="simultaneous open connections")
    swarm.add_argument("--image-size", type=int, default=8 * 1024)
    swarm.add_argument("--chunk-bytes", type=int, default=2048,
                       help="ranged-download chunk size")
    swarm.add_argument("--out", default="BENCH_server.json")
    swarm.add_argument("--baseline", default=None,
                       help="bench artifact to regression-gate "
                            "against (exit 1 on regression)")
    swarm.add_argument("--tolerance", type=float, default=0.20)
    swarm.add_argument("--trace", action="store_true",
                       help="also run with distributed tracing on and "
                            "write a merged device+server Chrome trace")
    swarm.add_argument("--trace-out", default="SWARM_trace.json")
    swarm.add_argument("--profile", action="store_true",
                       help="re-run with the server tracer on and "
                            "write a per-endpoint phase breakdown "
                            "(queue wait/sign/serialize/write) into "
                            "the artifact")
    swarm.add_argument("--trace-budget", type=float, default=0.15,
                       help="max fraction of req/s tracing may cost "
                            "before the run fails")
    swarm.set_defaults(func=cmd_swarm)

    report = sub.add_parser(
        "report", help="inspect/validate schema-stamped JSON artifacts")
    report.add_argument("paths", nargs="+",
                        help="artifact files (bench/chaos/trace JSON)")
    report.add_argument("--validate", action="store_true",
                        help="run schema validation; exit 1 on drift")
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
