"""Host-side tooling: key generation, release signing, image preparation."""

from .cli import build_parser, main

__all__ = ["build_parser", "main"]
