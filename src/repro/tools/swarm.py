"""Swarm bench: tens of thousands of device sessions, one server.

The serve plane's load proof.  Each session is the paper's full pull
flow spoken over real HTTP/1.1 on a keep-alive connection: register →
token → manifest → chunked ranged download (digest-verified) → report.
Sessions run concurrently under a semaphore against a single
:class:`~repro.serve.httpd.HttpServer` process, and the harness
records what CI gates on: per-endpoint-class p50/p99 latency,
end-to-end session latency, aggregate req/s, and peak RSS — the
``server`` section of the ``BENCH_server.json`` artifact (bench
schema v5), wired into ``cli report --validate`` and the
``--baseline`` regression gate in :mod:`repro.tools.bench`.

A session that deviates anywhere — unexpected status, digest
mismatch, short read — counts as *failed*, and schema v5 refuses
artifacts with ``failed_sessions != 0``: the bench is only meaningful
over a fully correct run.
"""

from __future__ import annotations

import asyncio
import json
import resource
import time
from hashlib import sha256
from typing import Dict, List, Optional, Tuple

from ..obs.slo import percentile

__all__ = [
    "DEFAULT_SESSIONS",
    "DEFAULT_CONCURRENCY",
    "DEFAULT_IMAGE_SIZE",
    "DEFAULT_CHUNK_BYTES",
    "ENDPOINT_CLASSES",
    "SwarmHttpClient",
    "SwarmError",
    "run_swarm",
    "run_benchmark",
    "write_results",
    "format_summary",
]

DEFAULT_SESSIONS = 1000
DEFAULT_CONCURRENCY = 256
DEFAULT_IMAGE_SIZE = 8 * 1024
DEFAULT_CHUNK_BYTES = 2048
DEVICE_ID_BASE = 0x40000000
ENDPOINT_CLASSES = ("register", "token", "manifest", "chunk",
                    "report")


class SwarmError(RuntimeError):
    """A session deviated from the expected flow."""


class SwarmHttpClient:
    """Minimal keep-alive HTTP/1.1 client on raw asyncio streams.

    Deliberately not a generic HTTP client: exactly what the swarm
    (and the protocol-parity tests) need — JSON requests, binary
    ranged reads, chunked-response re-assembly for ``/metrics``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "SwarmHttpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "SwarmHttpClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, object]] = None,
                      headers: Optional[Dict[str, str]] = None
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """One round-trip; returns ``(status, headers, body)``."""
        if self._writer is None or self._reader is None:
            raise SwarmError("client is not connected")
        payload = b"" if body is None else json.dumps(
            body, sort_keys=True).encode("utf-8")
        lines = ["%s %s HTTP/1.1" % (method, path),
                 "Host: %s:%d" % (self.host, self.port)]
        if payload:
            lines.append("Content-Type: application/json")
        lines.append("Content-Length: %d" % len(payload))
        for name, value in (headers or {}).items():
            lines.append("%s: %s" % (name, value))
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n")
                           .encode("latin-1") + payload)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(
            self) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise SwarmError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise SwarmError("unparseable status line %r"
                             % status_line)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if not raw:
                raise SwarmError("connection died inside headers")
            if raw in (b"\r\n", b"\n"):
                break
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body = await self._read_chunked()
        else:
            length = int(headers.get("content-length", "0") or "0")
            body = await self._reader.readexactly(length) \
                if length else b""
        return status, headers, body

    async def _read_chunked(self) -> bytes:
        assert self._reader is not None
        body = bytearray()
        while True:
            size_line = await self._reader.readline()
            try:
                size = int(size_line.strip().split(b";")[0], 16)
            except ValueError:
                # An empty line means the server closed mid-body; a
                # SwarmError fails just this session instead of
                # detonating the whole gather.
                raise SwarmError("bad chunk-size line %r" % size_line)
            if size == 0:
                await self._reader.readline()   # trailing CRLF
                return bytes(body)
            body.extend(await self._reader.readexactly(size))
            await self._reader.readexactly(2)   # chunk CRLF


async def run_http_session(client: SwarmHttpClient, device_id: int,
                           chunk_bytes: int,
                           channel: str = "stable",
                           timings: Optional[
                               Dict[str, List[float]]] = None
                           ) -> Dict[str, object]:
    """The full device flow on an open client; returns the
    device-visible outcome (same shape as the CoAP client's)."""

    async def timed(cls: str, method: str, path: str,
                    body=None, headers=None, expect=(200, 201)):
        start = time.perf_counter()
        status, resp_headers, resp = await client.request(
            method, path, body, headers)
        if timings is not None:
            timings[cls].append(
                (time.perf_counter() - start) * 1000.0)
        if status not in expect:
            raise SwarmError("%s %s -> %d: %s"
                             % (method, path, status,
                                resp[:200].decode("utf-8", "replace")))
        return status, resp_headers, resp

    _s, _h, raw = await timed(
        "register", "POST", "/devices",
        {"device_id": device_id, "channel": channel,
         "current_version": 1})
    register = json.loads(raw)
    _s, _h, raw = await timed(
        "token", "POST", "/devices/%d/token" % device_id, {})
    token_hex = str(json.loads(raw)["token"])
    _s, _h, raw = await timed("manifest", "GET",
                              "/manifests/%s" % token_hex)
    manifest = json.loads(raw)
    total = int(manifest["payload_size"])
    payload = bytearray()
    offset = 0
    while offset < total:
        end = min(total, offset + chunk_bytes) - 1
        _s, _h, raw = await timed(
            "chunk", "GET", "/images/%s" % token_hex,
            headers={"Range": "bytes=%d-%d" % (offset, end)},
            expect=(206,))
        if not raw:
            raise SwarmError("empty chunk at offset %d" % offset)
        payload.extend(raw)
        offset += len(raw)
    digest_ok = (sha256(bytes(payload)).hexdigest()
                 == manifest["payload_sha256"])
    if not digest_ok:
        raise SwarmError("payload digest mismatch for device %d"
                         % device_id)
    _s, _h, raw = await timed("report", "POST",
                              "/reports/%s" % token_hex,
                              {"status": "updated"})
    report = json.loads(raw)
    if report.get("acknowledged") is not True:
        raise SwarmError("report was not acknowledged")
    return {
        "register": register,
        "token": token_hex,
        "envelope": manifest["envelope"],
        "version": int(manifest["version"]),
        "payload": bytes(payload),
        "digest_ok": digest_ok,
        "report": report,
    }


async def run_swarm(host: str, port: int,
                    sessions: int = DEFAULT_SESSIONS,
                    concurrency: int = DEFAULT_CONCURRENCY,
                    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                    device_id_base: int = DEVICE_ID_BASE
                    ) -> Dict[str, object]:
    """Drive ``sessions`` full device flows; returns the ``server``
    metrics section (see module docstring for the contract)."""
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    semaphore = asyncio.Semaphore(concurrency)
    timings: Dict[str, List[float]] = {cls: []
                                       for cls in ENDPOINT_CLASSES}
    session_ms: List[float] = []
    failures: List[str] = []

    async def one(index: int) -> None:
        async with semaphore:
            start = time.perf_counter()
            client = SwarmHttpClient(host, port)
            try:
                await client.connect()
                await run_http_session(client,
                                       device_id_base + index,
                                       chunk_bytes, timings=timings)
                session_ms.append(
                    (time.perf_counter() - start) * 1000.0)
            except (SwarmError, OSError, asyncio.IncompleteReadError,
                    json.JSONDecodeError, KeyError) as exc:
                if len(failures) < 5:
                    failures.append("session %d: %s" % (index, exc))
                else:
                    failures.append("session %d" % index)
            finally:
                await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(one(index) for index in range(sessions)))
    elapsed = time.perf_counter() - started

    requests = sum(len(values) for values in timings.values())
    endpoints: Dict[str, object] = {}
    mix: Dict[str, int] = {}
    for cls in ENDPOINT_CLASSES:
        values = timings[cls]
        endpoints[cls] = {
            "count": len(values),
            "p50_ms": round(percentile(values, 50.0), 3)
            if values else None,
            "p99_ms": round(percentile(values, 99.0), 3)
            if values else None,
        }
        # Sessions are identical by construction, so the per-session
        # request count per class is exact — the workload fingerprint
        # the baseline gate matches on.
        mix[cls] = len(values) // sessions
    return {
        "sessions": sessions,
        "failed_sessions": len(failures),
        "failures": failures[:5],
        "concurrency": concurrency,
        "chunk_bytes": chunk_bytes,
        "requests": requests,
        "elapsed_seconds": round(elapsed, 3),
        "req_per_s": round(requests / elapsed, 1) if elapsed else 0.0,
        "p50_session_ms": round(percentile(session_ms, 50.0), 3)
        if session_ms else None,
        "p99_session_ms": round(percentile(session_ms, 99.0), 3)
        if session_ms else None,
        "endpoints": endpoints,
        "endpoint_mix": mix,
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
    }


def run_benchmark(sessions: int = DEFAULT_SESSIONS,
                  concurrency: int = DEFAULT_CONCURRENCY,
                  image_size: int = DEFAULT_IMAGE_SIZE,
                  chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                  host: str = "127.0.0.1") -> Dict[str, object]:
    """Self-hosted bench: stand up one server process' worth of
    service + HTTP face, swarm it, tear it down.  Returns the full
    artifact document (``{"server": ...}``)."""
    from ..serve import FleetService, HttpServer

    async def main() -> Dict[str, object]:
        service = FleetService()
        service.seed_channels(image_size=image_size)
        async with HttpServer(service, host=host) as server:
            section = await run_swarm(
                host, server.port, sessions=sessions,
                concurrency=concurrency, chunk_bytes=chunk_bytes)
        section["image_bytes"] = image_size
        section["served_devices"] = service.device_count()
        return {"server": section}

    return asyncio.run(main())


def write_results(results: Dict[str, object], path: str) -> str:
    from .report import write_report
    return write_report(results, path, "bench")


def format_summary(results: Dict[str, object]) -> str:
    server = results.get("server")
    if not isinstance(server, dict):
        return "swarm: no server section"
    endpoints = server.get("endpoints", {})
    lines = [
        "swarm: %d sessions (%d failed), %d requests in %.1fs "
        "-> %.0f req/s"
        % (server.get("sessions", 0),
           server.get("failed_sessions", 0),
           server.get("requests", 0),
           server.get("elapsed_seconds", 0.0),
           server.get("req_per_s", 0.0)),
        "  session latency p50 %.1f ms  p99 %.1f ms   peak RSS %d kB"
        % (server.get("p50_session_ms") or 0.0,
           server.get("p99_session_ms") or 0.0,
           server.get("peak_rss_kb", 0)),
    ]
    for cls in ENDPOINT_CLASSES:
        entry = endpoints.get(cls)
        if isinstance(entry, dict) and entry.get("count"):
            lines.append(
                "  %-9s %6d reqs  p50 %8.2f ms  p99 %8.2f ms"
                % (cls, entry["count"], entry.get("p50_ms") or 0.0,
                   entry.get("p99_ms") or 0.0))
    return "\n".join(lines)
