"""Swarm bench: tens of thousands of device sessions, one server.

The serve plane's load proof.  Each session is the paper's full pull
flow spoken over real HTTP/1.1 on a keep-alive connection: register →
token → manifest → chunked ranged download (digest-verified) → report.
Sessions run concurrently under a semaphore against a single
:class:`~repro.serve.httpd.HttpServer` process, and the harness
records what CI gates on: per-endpoint-class p50/p99 latency,
end-to-end session latency, aggregate req/s, and peak RSS — the
``server`` section of the ``BENCH_server.json`` artifact (bench
schema v5), wired into ``cli report --validate`` and the
``--baseline`` regression gate in :mod:`repro.tools.bench`.

A session that deviates anywhere — unexpected status, digest
mismatch, short read — counts as *failed*, and schema v5 refuses
artifacts with ``failed_sessions != 0``: the bench is only meaningful
over a fully correct run.

Tracing (PR 9): ``run_traced_benchmark`` runs the bench twice —
tracing off (the gated numbers) then tracing on — and records the
overhead (req/s and p99 delta) into the ``server`` section's
``trace_overhead`` block, gated against
:data:`TRACE_OVERHEAD_BUDGET` by ``--baseline`` comparisons.  The
traced run also yields one *merged* Chrome-trace document: device
session spans (pid 1) and the server request spans they caused
(pid 2), joined by the trace_id each session propagated through its
``traceparent`` headers.
"""

from __future__ import annotations

import asyncio
import json
import resource
import time
from hashlib import sha256
from typing import Dict, List, Optional, Tuple

from ..obs.asynctrace import AsyncTracer, NULL_ASYNC_TRACER, \
    TRACEPARENT_HEADER
from ..obs.slo import percentile
from ..obs.trace import merge_chrome_traces

__all__ = [
    "DEFAULT_SESSIONS",
    "DEFAULT_CONCURRENCY",
    "DEFAULT_IMAGE_SIZE",
    "DEFAULT_CHUNK_BYTES",
    "DEVICE_TRACE_PID",
    "SERVER_TRACE_PID",
    "TRACE_OVERHEAD_BUDGET",
    "ENDPOINT_CLASSES",
    "PROFILE_PHASES",
    "SwarmHttpClient",
    "SwarmError",
    "run_swarm",
    "run_benchmark",
    "run_traced_benchmark",
    "run_profiled_benchmark",
    "profile_section",
    "aggregate_server_profile",
    "trace_overhead_problems",
    "write_results",
    "format_summary",
]

DEFAULT_SESSIONS = 1000
DEFAULT_CONCURRENCY = 256
DEFAULT_IMAGE_SIZE = 8 * 1024
DEFAULT_CHUNK_BYTES = 2048
DEVICE_ID_BASE = 0x40000000
ENDPOINT_CLASSES = ("register", "token", "manifest", "chunk",
                    "report")

#: Export pids of the merged swarm trace: device plane vs serve plane.
DEVICE_TRACE_PID = 1
SERVER_TRACE_PID = 2

#: Tracing-on must keep at least (1 - budget) of tracing-off req/s.
TRACE_OVERHEAD_BUDGET = 0.15

#: Request phases ``cli swarm --profile`` breaks out per endpoint
#: class, aggregated from the server tracer's spans: header parse,
#: signer-pool queue wait (``sign.queue``), service execution
#: (``service.*`` — ECDSA-dominated on manifests, hence "sign"),
#: response serialization, and the socket write.
PROFILE_PHASES = ("parse", "queue_wait", "sign", "serialize", "write")

#: Server-side HTTP route labels folded onto swarm endpoint classes.
_ROUTE_TO_CLASS = {
    "POST /devices": "register",
    "POST /devices/{id}/token": "token",
    "GET /manifests/{token}": "manifest",
    "GET /images/{token}": "chunk",
    "POST /reports/{token}": "report",
}

#: Direct span-name -> phase folds; ``service.*`` folds to "sign".
_SPAN_TO_PHASE = {"parse": "parse", "sign.queue": "queue_wait",
                  "serialize": "serialize", "write": "write"}


class SwarmError(RuntimeError):
    """A session deviated from the expected flow."""


class SwarmHttpClient:
    """Minimal keep-alive HTTP/1.1 client on raw asyncio streams.

    Deliberately not a generic HTTP client: exactly what the swarm
    (and the protocol-parity tests) need — JSON requests, binary
    ranged reads, chunked-response re-assembly for ``/metrics``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "SwarmHttpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "SwarmHttpClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, object]] = None,
                      headers: Optional[Dict[str, str]] = None
                      ) -> Tuple[int, Dict[str, str], bytes]:
        """One round-trip; returns ``(status, headers, body)``."""
        if self._writer is None or self._reader is None:
            raise SwarmError("client is not connected")
        payload = b"" if body is None else json.dumps(
            body, sort_keys=True).encode("utf-8")
        lines = ["%s %s HTTP/1.1" % (method, path),
                 "Host: %s:%d" % (self.host, self.port)]
        if payload:
            lines.append("Content-Type: application/json")
        lines.append("Content-Length: %d" % len(payload))
        for name, value in (headers or {}).items():
            lines.append("%s: %s" % (name, value))
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n")
                           .encode("latin-1") + payload)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(
            self) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None
        # The whole head in one readuntil: one event-loop trip for
        # headers plus one for the body, instead of a readline per
        # header line (the per-await scheduling cost dominates at
        # swarm concurrency).
        try:
            head = await self._reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                raise SwarmError("server closed the connection")
            raise SwarmError("connection died inside headers")
        raw_lines = head[:-4].split(b"\r\n")
        parts = raw_lines[0].decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise SwarmError("unparseable status line %r"
                             % raw_lines[0])
        status = int(parts[1])
        headers: Dict[str, str] = {}
        for raw in raw_lines[1:]:
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body = await self._read_chunked()
        else:
            length = int(headers.get("content-length", "0") or "0")
            body = await self._reader.readexactly(length) \
                if length else b""
        return status, headers, body

    async def _read_chunked(self) -> bytes:
        assert self._reader is not None
        body = bytearray()
        while True:
            size_line = await self._reader.readline()
            try:
                size = int(size_line.strip().split(b";")[0], 16)
            except ValueError:
                # An empty line means the server closed mid-body; a
                # SwarmError fails just this session instead of
                # detonating the whole gather.
                raise SwarmError("bad chunk-size line %r" % size_line)
            if size == 0:
                await self._reader.readline()   # trailing CRLF
                return bytes(body)
            body.extend(await self._reader.readexactly(size))
            await self._reader.readexactly(2)   # chunk CRLF


async def run_http_session(client: SwarmHttpClient, device_id: int,
                           chunk_bytes: int,
                           channel: str = "stable",
                           timings: Optional[
                               Dict[str, List[float]]] = None,
                           tracer: Optional[AsyncTracer] = None
                           ) -> Dict[str, object]:
    """The full device flow on an open client; returns the
    device-visible outcome (same shape as the CoAP client's).

    With an enabled ``tracer``, the session becomes a
    ``device.session`` root span, each request a child span whose
    traceparent rides the HTTP header — the server grafts its request
    spans onto that trace_id, which is the cross-plane join the trace
    validator checks."""
    tracer = tracer or NULL_ASYNC_TRACER
    with tracer.span("device.session", category="device",
                     device_id=device_id, proto="http"):
        return await _run_http_flow(client, device_id, chunk_bytes,
                                    channel, timings, tracer)


async def _run_http_flow(client: SwarmHttpClient, device_id: int,
                         chunk_bytes: int, channel: str,
                         timings: Optional[Dict[str, List[float]]],
                         tracer: AsyncTracer) -> Dict[str, object]:
    async def timed(cls: str, method: str, path: str,
                    body=None, headers=None, expect=(200, 201)):
        with tracer.span("http.%s" % cls, category="device"):
            traceparent = tracer.current_traceparent()
            if traceparent is not None:
                headers = dict(headers or {})
                headers[TRACEPARENT_HEADER] = traceparent
            start = time.perf_counter()
            status, resp_headers, resp = await client.request(
                method, path, body, headers)
        if timings is not None:
            timings[cls].append(
                (time.perf_counter() - start) * 1000.0)
        if status not in expect:
            raise SwarmError("%s %s -> %d: %s"
                             % (method, path, status,
                                resp[:200].decode("utf-8", "replace")))
        return status, resp_headers, resp

    _s, _h, raw = await timed(
        "register", "POST", "/devices",
        {"device_id": device_id, "channel": channel,
         "current_version": 1})
    register = json.loads(raw)
    _s, _h, raw = await timed(
        "token", "POST", "/devices/%d/token" % device_id, {})
    token_hex = str(json.loads(raw)["token"])
    _s, _h, raw = await timed("manifest", "GET",
                              "/manifests/%s" % token_hex)
    manifest = json.loads(raw)
    total = int(manifest["payload_size"])
    payload = bytearray()
    offset = 0
    while offset < total:
        end = min(total, offset + chunk_bytes) - 1
        _s, _h, raw = await timed(
            "chunk", "GET", "/images/%s" % token_hex,
            headers={"Range": "bytes=%d-%d" % (offset, end)},
            expect=(206,))
        if not raw:
            raise SwarmError("empty chunk at offset %d" % offset)
        payload.extend(raw)
        offset += len(raw)
    digest_ok = (sha256(bytes(payload)).hexdigest()
                 == manifest["payload_sha256"])
    if not digest_ok:
        raise SwarmError("payload digest mismatch for device %d"
                         % device_id)
    _s, _h, raw = await timed("report", "POST",
                              "/reports/%s" % token_hex,
                              {"status": "updated"})
    report = json.loads(raw)
    if report.get("acknowledged") is not True:
        raise SwarmError("report was not acknowledged")
    return {
        "register": register,
        "token": token_hex,
        "envelope": manifest["envelope"],
        "version": int(manifest["version"]),
        "payload": bytes(payload),
        "digest_ok": digest_ok,
        "report": report,
    }


async def run_swarm(host: str, port: int,
                    sessions: int = DEFAULT_SESSIONS,
                    concurrency: int = DEFAULT_CONCURRENCY,
                    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                    device_id_base: int = DEVICE_ID_BASE,
                    tracer: Optional[AsyncTracer] = None
                    ) -> Dict[str, object]:
    """Drive ``sessions`` full device flows; returns the ``server``
    metrics section (see module docstring for the contract)."""
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    semaphore = asyncio.Semaphore(concurrency)
    timings: Dict[str, List[float]] = {cls: []
                                       for cls in ENDPOINT_CLASSES}
    session_ms: List[float] = []
    failures: List[str] = []

    async def one(index: int) -> None:
        async with semaphore:
            start = time.perf_counter()
            client = SwarmHttpClient(host, port)
            try:
                await client.connect()
                await run_http_session(client,
                                       device_id_base + index,
                                       chunk_bytes, timings=timings,
                                       tracer=tracer)
                session_ms.append(
                    (time.perf_counter() - start) * 1000.0)
            except (SwarmError, OSError, asyncio.IncompleteReadError,
                    json.JSONDecodeError, KeyError) as exc:
                if len(failures) < 5:
                    failures.append("session %d: %s" % (index, exc))
                else:
                    failures.append("session %d" % index)
            finally:
                await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(one(index) for index in range(sessions)))
    elapsed = time.perf_counter() - started

    requests = sum(len(values) for values in timings.values())
    endpoints: Dict[str, object] = {}
    mix: Dict[str, int] = {}
    for cls in ENDPOINT_CLASSES:
        values = timings[cls]
        endpoints[cls] = {
            "count": len(values),
            "p50_ms": round(percentile(values, 50.0), 3)
            if values else None,
            "p99_ms": round(percentile(values, 99.0), 3)
            if values else None,
        }
        # Sessions are identical by construction, so the per-session
        # request count per class is exact — the workload fingerprint
        # the baseline gate matches on.
        mix[cls] = len(values) // sessions
    return {
        "sessions": sessions,
        "failed_sessions": len(failures),
        "failures": failures[:5],
        "concurrency": concurrency,
        "chunk_bytes": chunk_bytes,
        "requests": requests,
        "elapsed_seconds": round(elapsed, 3),
        "req_per_s": round(requests / elapsed, 1) if elapsed else 0.0,
        "p50_session_ms": round(percentile(session_ms, 50.0), 3)
        if session_ms else None,
        "p99_session_ms": round(percentile(session_ms, 99.0), 3)
        if session_ms else None,
        "endpoints": endpoints,
        "endpoint_mix": mix,
        "peak_rss_kb": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
    }


def run_benchmark(sessions: int = DEFAULT_SESSIONS,
                  concurrency: int = DEFAULT_CONCURRENCY,
                  image_size: int = DEFAULT_IMAGE_SIZE,
                  chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                  host: str = "127.0.0.1") -> Dict[str, object]:
    """Self-hosted bench: stand up one server process' worth of
    service + HTTP face, swarm it, tear it down.  Returns the full
    artifact document (``{"server": ...}``)."""
    return _run_benchmark(sessions, concurrency, image_size,
                          chunk_bytes, host)


def _run_benchmark(sessions: int, concurrency: int, image_size: int,
                   chunk_bytes: int, host: str,
                   client_tracer: Optional[AsyncTracer] = None,
                   server_tracer: Optional[AsyncTracer] = None
                   ) -> Dict[str, object]:
    from ..serve import FleetService, HttpServer

    async def main() -> Dict[str, object]:
        service = FleetService()
        service.seed_channels(image_size=image_size)
        pool_before = service.signer.stats_snapshot().to_dict()
        cache_before = service.signer.signatures \
            .stats_snapshot().to_dict()
        async with HttpServer(service, host=host,
                              tracer=server_tracer) as server:
            section = await run_swarm(
                host, server.port, sessions=sessions,
                concurrency=concurrency, chunk_bytes=chunk_bytes,
                tracer=client_tracer)
        section["image_bytes"] = image_size
        section["served_devices"] = service.device_count()
        # The signer pool (and its signature cache) are process-wide,
        # so report this run's *delta*, not the cumulative counters.
        pool_after = service.signer.stats_snapshot().to_dict()
        cache_after = service.signer.signatures \
            .stats_snapshot().to_dict()
        section["signer_pool"] = {
            key: pool_after[key] - pool_before[key]
            for key in ("signs", "jobs", "batches")}
        section["signer_pool"]["max_batch"] = pool_after["max_batch"]
        section["signer_pool"]["signature_cache"] = {
            key: cache_after[key] - cache_before[key]
            for key in ("hits", "misses", "coalesced", "evictions")}
        return {"server": section}

    return asyncio.run(main())


def run_traced_benchmark(sessions: int = DEFAULT_SESSIONS,
                         concurrency: int = DEFAULT_CONCURRENCY,
                         image_size: int = DEFAULT_IMAGE_SIZE,
                         chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                         host: str = "127.0.0.1"
                         ) -> Tuple[Dict[str, object],
                                    Dict[str, object]]:
    """The overhead-accounted bench: tracing off, then tracing on.

    Returns ``(results, trace_doc)``.  ``results`` is the tracing-off
    artifact (so ``--baseline`` comparisons against plain runs stay
    apples-to-apples) with a ``server.trace_overhead`` block recording
    both runs' req/s and p99; ``trace_doc`` is the merged Chrome-trace
    document (device plane at :data:`DEVICE_TRACE_PID`, server at
    :data:`SERVER_TRACE_PID`, ``join`` metadata for the validator's
    trace_id-join check).
    """
    results = _run_benchmark(sessions, concurrency, image_size,
                             chunk_bytes, host)
    client_tracer = AsyncTracer(enabled=True)
    server_tracer = AsyncTracer(enabled=True)
    traced = _run_benchmark(sessions, concurrency, image_size,
                            chunk_bytes, host,
                            client_tracer=client_tracer,
                            server_tracer=server_tracer)
    server = results["server"]
    on_server = traced["server"]
    off_rps = float(server.get("req_per_s") or 0.0)
    on_rps = float(on_server.get("req_per_s") or 0.0)
    off_p99 = float(server.get("p99_session_ms") or 0.0)
    on_p99 = float(on_server.get("p99_session_ms") or 0.0)
    server["trace_overhead"] = {
        "req_per_s_off": off_rps,
        "req_per_s_on": on_rps,
        "req_per_s_delta_pct":
            round(100.0 * (off_rps - on_rps) / off_rps, 1)
            if off_rps else 0.0,
        "p99_session_ms_off": off_p99,
        "p99_session_ms_on": on_p99,
        "p99_session_delta_pct":
            round(100.0 * (on_p99 - off_p99) / off_p99, 1)
            if off_p99 else 0.0,
        "failed_sessions_on": on_server.get("failed_sessions", 0),
    }
    trace_doc = merge_chrome_traces([
        client_tracer.to_chrome_trace(pid=DEVICE_TRACE_PID,
                                      process_name="swarm-devices"),
        server_tracer.to_chrome_trace(pid=SERVER_TRACE_PID,
                                      process_name="upkit-serve"),
    ])
    trace_doc["join"] = {"device_pid": DEVICE_TRACE_PID,
                         "server_pid": SERVER_TRACE_PID}
    return results, trace_doc


def aggregate_server_profile(tracer: AsyncTracer) -> Dict[str, object]:
    """Fold a server tracer's spans into a per-endpoint phase profile.

    Each ``http.request`` root span is classed by its route label;
    every descendant span folds onto one of :data:`PROFILE_PHASES`
    (``service.*`` counts as the "sign" phase — on manifests it is
    the ECDSA-bearing resolution, on control endpoints the in-memory
    service call).  Phases report count/p50/p99/total in ms, which is
    what makes "where did the milliseconds go" answerable per
    endpoint class straight from ``BENCH_server.json``.
    """
    with tracer._lock:
        spans = list(tracer.spans)
    by_parent: Dict[int, List[object]] = {}
    roots = []
    for span in spans:
        if span.parent_id is None:
            if span.name == "http.request":
                roots.append(span)
        else:
            by_parent.setdefault(span.parent_id, []).append(span)
    per_class: Dict[str, Dict[str, object]] = {}
    for root in roots:
        cls = _ROUTE_TO_CLASS.get(root.args.get("route"))
        if cls is None:
            continue
        entry = per_class.setdefault(
            cls, {"requests": 0,
                  "phases": {phase: [] for phase in PROFILE_PHASES}})
        entry["requests"] += 1
        frontier = list(by_parent.get(root.span_id, ()))
        while frontier:
            node = frontier.pop()
            phase = _SPAN_TO_PHASE.get(node.name)
            if phase is None and node.name.startswith("service."):
                phase = "sign"
            if phase is not None:
                entry["phases"][phase].append(node.duration * 1000.0)
            frontier.extend(by_parent.get(node.span_id, ()))
    endpoints: Dict[str, object] = {}
    for cls, entry in sorted(per_class.items()):
        phases: Dict[str, object] = {}
        for phase in PROFILE_PHASES:
            values = entry["phases"][phase]
            if not values:
                continue
            phases[phase] = {
                "count": len(values),
                "p50_ms": round(percentile(values, 50.0), 3),
                "p99_ms": round(percentile(values, 99.0), 3),
                "total_ms": round(sum(values), 3),
            }
        endpoints[cls] = {"requests": entry["requests"],
                          "phases": phases}
    return {"endpoints": endpoints}


def run_profiled_benchmark(sessions: int = DEFAULT_SESSIONS,
                           concurrency: int = DEFAULT_CONCURRENCY,
                           image_size: int = DEFAULT_IMAGE_SIZE,
                           chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                           host: str = "127.0.0.1"
                           ) -> Dict[str, object]:
    """The phase-profiled bench: plain run for the gated numbers,
    then a re-run with the *server* tracer on, aggregated into a
    ``server.profile`` block (the gated req/s and latencies never
    carry tracer overhead)."""
    results = _run_benchmark(sessions, concurrency, image_size,
                             chunk_bytes, host)
    results["server"]["profile"] = profile_section(
        sessions, concurrency, image_size, chunk_bytes, host)
    return results


def profile_section(sessions: int = DEFAULT_SESSIONS,
                    concurrency: int = DEFAULT_CONCURRENCY,
                    image_size: int = DEFAULT_IMAGE_SIZE,
                    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                    host: str = "127.0.0.1") -> Dict[str, object]:
    """One server-traced swarm run, aggregated into a ``profile``
    block (req/s of the profiled run recorded for context only)."""
    server_tracer = AsyncTracer(enabled=True)
    profiled = _run_benchmark(sessions, concurrency, image_size,
                              chunk_bytes, host,
                              server_tracer=server_tracer)
    profile = aggregate_server_profile(server_tracer)
    profile["req_per_s_profiled"] = \
        profiled["server"].get("req_per_s")
    profile["failed_sessions_profiled"] = \
        profiled["server"].get("failed_sessions", 0)
    return profile


def trace_overhead_problems(server: Dict[str, object],
                            budget: float = TRACE_OVERHEAD_BUDGET
                            ) -> List[str]:
    """Gate problems from a ``server`` section's ``trace_overhead``
    block; empty when the block is absent or within budget."""
    overhead = server.get("trace_overhead") \
        if isinstance(server, dict) else None
    if not isinstance(overhead, dict):
        return []
    problems: List[str] = []
    try:
        off = float(overhead["req_per_s_off"])     # type: ignore
        on = float(overhead["req_per_s_on"])       # type: ignore
    except (KeyError, TypeError, ValueError):
        return ["trace_overhead lacks numeric req_per_s_off/"
                "req_per_s_on"]
    if off <= 0.0:
        return ["trace_overhead records non-positive tracing-off "
                "req/s"]
    if on < off * (1.0 - budget):
        problems.append(
            "tracing overhead exceeds %.0f%% req/s budget: "
            "%.1f req/s on vs %.1f off (-%.1f%%)"
            % (budget * 100.0, on, off, 100.0 * (off - on) / off))
    failed = overhead.get("failed_sessions_on")
    if failed:
        problems.append("tracing-on run had %s failed sessions"
                        % failed)
    return problems


def write_results(results: Dict[str, object], path: str) -> str:
    from .report import write_report
    return write_report(results, path, "bench")


def format_summary(results: Dict[str, object]) -> str:
    server = results.get("server")
    if not isinstance(server, dict):
        return "swarm: no server section"
    endpoints = server.get("endpoints", {})
    lines = [
        "swarm: %d sessions (%d failed), %d requests in %.1fs "
        "-> %.0f req/s"
        % (server.get("sessions", 0),
           server.get("failed_sessions", 0),
           server.get("requests", 0),
           server.get("elapsed_seconds", 0.0),
           server.get("req_per_s", 0.0)),
        "  session latency p50 %.1f ms  p99 %.1f ms   peak RSS %d kB"
        % (server.get("p50_session_ms") or 0.0,
           server.get("p99_session_ms") or 0.0,
           server.get("peak_rss_kb", 0)),
    ]
    for cls in ENDPOINT_CLASSES:
        entry = endpoints.get(cls)
        if isinstance(entry, dict) and entry.get("count"):
            lines.append(
                "  %-9s %6d reqs  p50 %8.2f ms  p99 %8.2f ms"
                % (cls, entry["count"], entry.get("p50_ms") or 0.0,
                   entry.get("p99_ms") or 0.0))
    pool = server.get("signer_pool")
    if isinstance(pool, dict):
        cache = pool.get("signature_cache") or {}
        lines.append(
            "  signer pool: %d signs, %d jobs in %d batches "
            "(max %d)  sig-cache %d hits / %d misses "
            "(%d coalesced)"
            % (pool.get("signs", 0), pool.get("jobs", 0),
               pool.get("batches", 0), pool.get("max_batch", 0),
               cache.get("hits", 0), cache.get("misses", 0),
               cache.get("coalesced", 0)))
    overhead = server.get("trace_overhead")
    if isinstance(overhead, dict):
        lines.append(
            "  tracing overhead: %.0f req/s on vs %.0f off "
            "(%.1f%% drop)  p99 %.1f -> %.1f ms"
            % (overhead.get("req_per_s_on") or 0.0,
               overhead.get("req_per_s_off") or 0.0,
               overhead.get("req_per_s_delta_pct") or 0.0,
               overhead.get("p99_session_ms_off") or 0.0,
               overhead.get("p99_session_ms_on") or 0.0))
    profile = server.get("profile")
    if isinstance(profile, dict):
        for cls, entry in sorted(
                (profile.get("endpoints") or {}).items()):
            if not isinstance(entry, dict):
                continue
            parts = []
            for phase in PROFILE_PHASES:
                stats = (entry.get("phases") or {}).get(phase)
                if isinstance(stats, dict):
                    parts.append("%s p50 %.2f" % (
                        phase, stats.get("p50_ms") or 0.0))
            lines.append("  profile %-9s %s ms"
                         % (cls, "  ".join(parts)))
    return "\n".join(lines)
