"""mcumgr-style baseline update agent (push, no verification).

mcumgr only *distributes* firmware (Sect. II): it writes whatever
arrives over BLE into the staging slot and relies entirely on the
bootloader for validation.  Consequences the paper calls out, all
reproduced by this model:

* no device token and no freshness: a captured old image replays
  cleanly;
* tampered or corrupt images are stored in full and rejected only
  after a reboot — wasted radio time, flash wear and downtime;
* there is no early abort on a bad manifest, because the manifest is
  never inspected before reboot.

The class is interface-compatible with
:class:`repro.core.UpdateAgent` so the same transports and the same
:class:`repro.sim.SimulatedDevice` accounting drive it.
"""

from __future__ import annotations

from typing import Optional

from ..core import (
    AgentState,
    DeviceProfile,
    DeviceToken,
    FeedStatus,
    SizeExceeded,
    StateError,
)
from ..core.agent import AgentStats, inspect_slot
from ..core.image import ENVELOPE_SIZE, SignedManifest
from ..memory import MemoryLayout, OpenMode, Slot

__all__ = ["McumgrAgent"]


class McumgrAgent:
    """Store-and-forward agent: no signature, token or digest checks."""

    def __init__(self, profile: DeviceProfile, layout: MemoryLayout) -> None:
        self.profile = profile
        self.layout = layout
        self.stats = AgentStats()
        self.state = AgentState.WAITING
        self._target_slot: Optional[Slot] = None
        self._slot_file = None
        self._buf = bytearray()
        self._expected_payload: Optional[int] = None
        self._received = 0

    # -- UpdateAgent-compatible surface ----------------------------------------

    def running_slot(self) -> Optional[Slot]:
        best = None
        best_version = -1
        candidates = (self.layout.bootable_slots if self.layout.is_ab
                      else [self.layout.bootable_slots[0]])
        for slot in candidates:
            envelope = inspect_slot(slot)
            if envelope and envelope.manifest.version > best_version:
                best = slot
                best_version = envelope.manifest.version
        return best

    def installed_version(self) -> int:
        slot = self.running_slot()
        if slot is None:
            return 0
        envelope = inspect_slot(slot)
        return envelope.manifest.version if envelope else 0

    def request_token(self) -> DeviceToken:
        """mcumgr has no token concept; a null token keeps the transports
        uniform (the server then always serves a full image)."""
        if self.state is not AgentState.WAITING:
            raise StateError("upload already in progress")
        self.stats.tokens_issued += 1
        self._target_slot = self._staging_slot()
        self._slot_file = self._target_slot.open(OpenMode.WRITE_ALL)
        self._buf.clear()
        self._received = 0
        self._expected_payload = None
        self.state = AgentState.RECEIVE_MANIFEST
        return DeviceToken(device_id=self.profile.device_id, nonce=0,
                           current_version=0)

    def feed(self, data: bytes) -> FeedStatus:
        if self.state is AgentState.RECEIVE_MANIFEST:
            self._buf.extend(data)
            self.stats.manifest_bytes += len(data)
            if len(self._buf) < ENVELOPE_SIZE:
                return FeedStatus.NEED_MORE
            header = bytes(self._buf[:ENVELOPE_SIZE])
            extra = bytes(self._buf[ENVELOPE_SIZE:])
            self._buf.clear()
            # The header is stored, *not* validated — only its length
            # field is read to know when the upload ends.
            try:
                envelope = SignedManifest.unpack(header)
                self._expected_payload = envelope.manifest.payload_size
            except Exception:
                self._expected_payload = None
            self._slot_file.write(header)
            self.state = AgentState.RECEIVE_FIRMWARE
            if extra:
                return self.feed(extra)
            return FeedStatus.MANIFEST_VERIFIED

        if self.state is AgentState.RECEIVE_FIRMWARE:
            capacity = self._target_slot.size - ENVELOPE_SIZE
            if self._received + len(data) > capacity:
                self.cancel()
                raise SizeExceeded("upload exceeds slot capacity")
            self._slot_file.write(data)
            self._received += len(data)
            self.stats.payload_bytes += len(data)
            if (self._expected_payload is not None
                    and self._received >= self._expected_payload):
                self._slot_file.close()
                self.state = AgentState.READY_TO_REBOOT
                self.stats.updates_completed += 1
                return FeedStatus.FIRMWARE_COMPLETE
            return FeedStatus.NEED_MORE

        raise StateError("received bytes in state %s" % self.state.value)

    def cancel(self) -> None:
        if self._slot_file is not None:
            self._slot_file.close()
        self._slot_file = None
        self._target_slot = None
        self._buf.clear()
        self._received = 0
        self.state = AgentState.WAITING

    @property
    def ready_to_reboot(self) -> bool:
        return self.state is AgentState.READY_TO_REBOOT

    def acknowledge_reboot(self) -> None:
        if self.state is not AgentState.READY_TO_REBOOT:
            raise StateError("no completed upload")
        self.cancel()

    # -- helpers ------------------------------------------------------------------

    def _staging_slot(self) -> Slot:
        if self.layout.is_ab:
            running = self.running_slot()
            for slot in self.layout.bootable_slots:
                if slot is not running:
                    return slot
            return self.layout.bootable_slots[0]
        staging = self.layout.staging_slot
        if staging is None:
            raise StateError("no staging slot available")
        return staging
