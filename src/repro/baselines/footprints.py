"""Footprint models of the baseline builds (Fig. 7).

Each baseline shares the OS/crypto/network components with the
corresponding UpKit build and differs only in its own machinery, with
the deltas taken from the paper's measurements:

* mcuboot: +1600 B flash, +716 B RAM vs. UpKit's bootloader (Fig. 7a,
  Zephyr + tinycrypt);
* LwM2M: +4.8 kB flash, +2.4 kB RAM vs. UpKit's pull agent (Fig. 7b) —
  its embedded M2M object machinery, with non-update services disabled;
* mcumgr: +426 B flash, −1200 B RAM vs. UpKit's push agent (Fig. 7c) —
  no pipeline/verifier, but its own mgmt framework.
"""

from __future__ import annotations

from ..crypto.backends import CryptoProfile, TINYCRYPT, TINYDTLS
from ..footprint.model import (
    AGENT_GLUE_FLASH,
    BuildFootprint,
    Component,
    UPKIT_BOOT_COMMON,
)
from ..platform import OSProfile, ZEPHYR

__all__ = ["mcuboot_build", "mcumgr_build", "lwm2m_build"]

_MCUBOOT_EXTRA_FLASH = 1600
_MCUBOOT_EXTRA_RAM = 716
_LWM2M_EXTRA_FLASH = 4800
_LWM2M_EXTRA_RAM = 2400
_MCUMGR_EXTRA_FLASH = 426
_MCUMGR_RAM_SAVING = 1200

# UpKit's common agent modules, summed (fsm + pipeline + memory + verifier).
_UPKIT_AGENT_FLASH = 5756
_UPKIT_AGENT_RAM = 2937


def mcuboot_build(os_profile: OSProfile = ZEPHYR,
                  crypto: CryptoProfile = TINYCRYPT) -> BuildFootprint:
    """mcuboot bootloader: UpKit's boot components replaced by its own."""
    return BuildFootprint(
        name="mcuboot/%s/%s" % (os_profile.name, crypto.name),
        components=[
            Component("crypto-%s" % crypto.name, crypto.flash_bytes,
                      crypto.ram_bytes),
            Component(
                "mcuboot-core",
                UPKIT_BOOT_COMMON.flash + _MCUBOOT_EXTRA_FLASH,
                UPKIT_BOOT_COMMON.ram + _MCUBOOT_EXTRA_RAM,
            ),
            Component("%s-boot-support" % os_profile.name,
                      os_profile.boot_glue_flash, os_profile.boot_ram,
                      platform_independent=False),
        ],
    )


def lwm2m_build(os_profile: OSProfile = ZEPHYR,
                crypto: CryptoProfile = TINYDTLS) -> BuildFootprint:
    """LwM2M pull client (firmware object only, other services disabled)."""
    return BuildFootprint(
        name="lwm2m/%s" % os_profile.name,
        components=[
            Component("%s-kernel" % os_profile.name, os_profile.kernel_flash,
                      os_profile.kernel_ram, platform_independent=False),
            Component("%s-stack-ram" % os_profile.name, 0,
                      os_profile.runtime_stack_ram,
                      platform_independent=False),
            Component("6lowpan-ipv6", os_profile.ipv6_stack_flash,
                      os_profile.ipv6_stack_ram, platform_independent=False),
            Component("coap-%s" % os_profile.coap_library,
                      os_profile.coap_flash, os_profile.coap_ram,
                      platform_independent=False),
            Component("crypto-%s" % crypto.name, crypto.flash_bytes,
                      crypto.ram_bytes),
            Component("lwm2m-client",
                      _UPKIT_AGENT_FLASH + _LWM2M_EXTRA_FLASH,
                      _UPKIT_AGENT_RAM + _LWM2M_EXTRA_RAM),
            Component("agent-glue", AGENT_GLUE_FLASH, 0,
                      platform_independent=False),
        ],
    )


def mcumgr_build(os_profile: OSProfile = ZEPHYR,
                 crypto: CryptoProfile = TINYDTLS) -> BuildFootprint:
    """mcumgr push agent (fs/log/OS-management features disabled)."""
    return BuildFootprint(
        name="mcumgr/%s" % os_profile.name,
        components=[
            Component("%s-kernel" % os_profile.name, os_profile.kernel_flash,
                      os_profile.kernel_ram, platform_independent=False),
            Component("%s-stack-ram" % os_profile.name, 0,
                      os_profile.runtime_stack_ram,
                      platform_independent=False),
            Component("ble-gatt", os_profile.ble_stack_flash,
                      os_profile.ble_stack_ram, platform_independent=False),
            Component("crypto-%s" % crypto.name, crypto.flash_bytes,
                      crypto.ram_bytes),
            Component("mcumgr-mgmt",
                      _UPKIT_AGENT_FLASH + _MCUMGR_EXTRA_FLASH,
                      _UPKIT_AGENT_RAM - _MCUMGR_RAM_SAVING),
            Component("agent-glue", AGENT_GLUE_FLASH, 0,
                      platform_independent=False),
        ],
    )
