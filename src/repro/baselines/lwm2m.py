"""LwM2M-style baseline update agent (pull, TLS-based freshness).

LwM2M exposes a firmware object over CoAP and relies on **transport
layer security** for freshness (Sect. II): when a secure end-to-end
channel between server and device exists, an on-path attacker cannot
replay or tamper; when an intermediary (gateway, smartphone) breaks
end-to-end security, nothing protects freshness, and image validation
still waits for the bootloader.

:class:`Lwm2mAgent` therefore behaves like mcumgr on the device (store,
don't verify), and :class:`Lwm2mChannel` models the transport: with
``end_to_end_tls=True`` an interceptor's modification aborts the
session (TLS record MAC failure); with a gateway in the path the
modified bytes reach the device unchecked.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core import UpdateError
from ..net.transports import Interceptor
from .mcumgr import McumgrAgent

__all__ = ["Lwm2mAgent", "Lwm2mChannel", "TlsAbort"]


class TlsAbort(UpdateError):
    """The (D)TLS channel detected in-transit modification."""


class Lwm2mAgent(McumgrAgent):
    """Device-side behaviour matches mcumgr: store now, verify at boot.

    The difference between the two baselines lives in the transport
    (CoAP pull + optional DTLS, vs. BLE push) and in the footprint
    model (LwM2M's M2M machinery, Fig. 7b).
    """


class Lwm2mChannel:
    """Wraps an interceptor with the transport-security semantics.

    Use as the ``interceptor`` of a :class:`repro.net.PullTransport`.
    """

    def __init__(self, interceptor: Optional[Interceptor] = None,
                 end_to_end_tls: bool = True) -> None:
        self.interceptor = interceptor
        self.end_to_end_tls = end_to_end_tls
        self.aborted = False

    def __call__(self, envelope: bytes, payload: bytes) -> Tuple[bytes, bytes]:
        if self.interceptor is None:
            return envelope, payload
        new_envelope, new_payload = self.interceptor(envelope, payload)
        modified = (new_envelope != envelope or new_payload != payload)
        if modified and self.end_to_end_tls:
            # DTLS authenticates every record end-to-end: the device's
            # stack drops the session before any byte reaches the agent.
            self.aborted = True
            raise TlsAbort("DTLS record verification failed in transit")
        return new_envelope, new_payload
