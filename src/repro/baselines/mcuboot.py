"""mcuboot-style baseline bootloader.

mcuboot is the state-of-the-art portable bootloader the paper compares
against (Sect. II, Fig. 7a).  Functional differences from UpKit's
bootloader, all modeled here:

* **single signature** — only the vendor/image signature is checked;
  there is no update-server signature and no token binding, so a
  replayed old-but-valid image verifies;
* **no downgrade prevention** (mcuboot's default configuration): a
  valid staged image is installed regardless of its version;
* verification happens **only at boot** — the companion agents
  (:mod:`repro.baselines.mcumgr`, :mod:`repro.baselines.lwm2m`) store
  whatever arrives, so invalid images cost a full download *and* a
  reboot before rejection (the inefficiency Sect. II describes).

After a successful swap the staging slot's header is invalidated
(modeling mcuboot's swap-confirm trailer) so repeated boots do not
ping-pong between images.
"""

from __future__ import annotations

from typing import Optional

from ..core import (
    Bootloader,
    BootResult,
    SignedManifest,
    VerificationError,
)
from ..core.agent import inspect_slot
from ..core.errors import SignatureInvalid
from ..core.image import ENVELOPE_SIZE
from ..memory import Slot

__all__ = ["McubootBootloader"]


class McubootBootloader(Bootloader):
    """Vendor-signature-only, boot-time-only verification."""

    require_newer_staged = False

    def verify_slot(self, slot: Slot) -> Optional[SignedManifest]:
        envelope = inspect_slot(slot)
        if envelope is None:
            return None
        try:
            self._verify_vendor_only(envelope)
            self.verifier.verify_firmware(
                envelope.manifest,
                lambda offset, length: slot.read(ENVELOPE_SIZE + offset,
                                                 length),
            )
        except VerificationError:
            return None
        return envelope

    def _verify_vendor_only(self, envelope: SignedManifest) -> None:
        """mcuboot checks one image signature; nothing binds the request."""
        ok = self.verifier.backend.verify(
            self.verifier.anchors.vendor,
            envelope.decoded_vendor_signature(),
            envelope.manifest.canonical_bytes(),
        )
        if not ok:
            raise SignatureInvalid("vendor")

    def boot(self) -> BootResult:
        result = super().boot()
        if result.swapped and not result.rolled_back:
            staging = self._staging_slot()
            if staging is not None:
                # Swap-confirm: drop the test image's header so the next
                # boot does not swap back.
                staging.invalidate()
        return result
