"""Baseline systems the paper compares against: mcuboot, mcumgr, LwM2M."""

from .footprints import lwm2m_build, mcuboot_build, mcumgr_build
from .lwm2m import Lwm2mAgent, Lwm2mChannel, TlsAbort
from .mcuboot import McubootBootloader
from .mcumgr import McumgrAgent
from .smp import (
    SmpError,
    SmpHeader,
    SmpImageServer,
    smp_upload,
)

__all__ = [
    "Lwm2mAgent",
    "Lwm2mChannel",
    "McubootBootloader",
    "McumgrAgent",
    "SmpError",
    "SmpHeader",
    "SmpImageServer",
    "TlsAbort",
    "lwm2m_build",
    "mcuboot_build",
    "smp_upload",
    "mcumgr_build",
]
