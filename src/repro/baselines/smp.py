"""SMP: mcumgr's Simple Management Protocol (image upload subset).

The real mcumgr speaks SMP — an 8-byte header plus a CBOR body — over
BLE or a SLIP-framed serial shell.  This module implements the image-
upload command group faithfully enough to drive the
:class:`repro.baselines.McumgrAgent` with genuine SMP frames (reusing
the CBOR codec from :mod:`repro.suit`), completing the baseline's
protocol stack:

* header: ``op | flags | len(2) | group(2) | seq | id`` (big-endian);
* image upload: ``op=WRITE, group=IMAGE(1), id=UPLOAD(1)`` with body
  ``{"off": N, "data": bstr}`` (first chunk also carries ``"len"``);
* response: ``{"rc": 0, "off": next_offset}``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from ..core import FeedStatus, UpdateError
from ..suit import CborError, dumps, loads
from .mcumgr import McumgrAgent

__all__ = ["SmpHeader", "SmpError", "SmpImageServer", "smp_upload",
           "OP_WRITE", "OP_WRITE_RSP", "GROUP_IMAGE", "CMD_UPLOAD"]

_HEADER = struct.Struct(">BBHHBB")

OP_READ = 0
OP_READ_RSP = 1
OP_WRITE = 2
OP_WRITE_RSP = 3

GROUP_IMAGE = 1
CMD_UPLOAD = 1

RC_OK = 0
RC_EINVAL = 3
RC_BADSTATE = 6


class SmpError(ValueError):
    """Malformed SMP frame."""


@dataclass(frozen=True)
class SmpHeader:
    """The 8-byte SMP management header."""

    op: int
    flags: int
    length: int
    group: int
    seq: int
    command: int

    def pack(self) -> bytes:
        return _HEADER.pack(self.op, self.flags, self.length,
                            self.group, self.seq, self.command)

    @classmethod
    def unpack(cls, data: bytes) -> "SmpHeader":
        if len(data) < _HEADER.size:
            raise SmpError("frame shorter than the SMP header")
        return cls(*_HEADER.unpack(data[:_HEADER.size]))


def encode_frame(header: SmpHeader, body: dict) -> bytes:
    payload = dumps(body)
    fixed = SmpHeader(header.op, header.flags, len(payload),
                      header.group, header.seq, header.command)
    return fixed.pack() + payload


def decode_frame(frame: bytes) -> "tuple[SmpHeader, dict]":
    header = SmpHeader.unpack(frame)
    payload = frame[_HEADER.size:]
    if len(payload) != header.length:
        raise SmpError("header declares %d body bytes, frame has %d"
                       % (header.length, len(payload)))
    try:
        body = loads(payload)
    except CborError as exc:
        raise SmpError("body is not valid CBOR: %s" % exc) from exc
    if not isinstance(body, dict):
        raise SmpError("SMP body must be a CBOR map")
    return header, body


class SmpImageServer:
    """Device-side SMP endpoint wrapping the mcumgr agent."""

    def __init__(self, agent: McumgrAgent) -> None:
        self.agent = agent
        self._expected_offset = 0

    def handle(self, frame: bytes) -> bytes:
        header, body = decode_frame(frame)
        if (header.op != OP_WRITE or header.group != GROUP_IMAGE
                or header.command != CMD_UPLOAD):
            return self._response(header, {"rc": RC_EINVAL})
        offset = body.get("off")
        data = body.get("data")
        if not isinstance(offset, int) or not isinstance(data, bytes):
            return self._response(header, {"rc": RC_EINVAL})

        if offset == 0:
            self.agent.cancel()
            self.agent.request_token()  # arms the (null-token) agent
            self._expected_offset = 0
        if offset != self._expected_offset:
            return self._response(
                header, {"rc": RC_EINVAL, "off": self._expected_offset})
        try:
            status = self.agent.feed(data)
        except UpdateError:
            return self._response(header, {"rc": RC_BADSTATE})
        self._expected_offset += len(data)
        response = {"rc": RC_OK, "off": self._expected_offset}
        if status is FeedStatus.FIRMWARE_COMPLETE:
            response["match"] = True
        return self._response(header, response)

    @staticmethod
    def _response(request: SmpHeader, body: dict) -> bytes:
        return encode_frame(
            SmpHeader(OP_WRITE_RSP, 0, 0, request.group, request.seq,
                      request.command),
            body,
        )


def smp_upload(server: SmpImageServer, image_bytes: bytes,
               chunk_size: int = 128,
               on_exchange=None) -> bool:
    """Client side: upload ``image_bytes`` chunk by chunk.

    Returns True when the device confirmed the complete image.
    ``on_exchange(request, response)`` meters each round-trip.
    """
    offset = 0
    seq = 0
    complete = False
    while offset < len(image_bytes):
        chunk = image_bytes[offset:offset + chunk_size]
        body = {"off": offset, "data": chunk}
        if offset == 0:
            body["len"] = len(image_bytes)
        request = encode_frame(
            SmpHeader(OP_WRITE, 0, 0, GROUP_IMAGE, seq, CMD_UPLOAD),
            body)
        response_bytes = server.handle(request)
        if on_exchange is not None:
            on_exchange(request, response_bytes)
        _, response = decode_frame(response_bytes)
        if response.get("rc") != RC_OK:
            return False
        offset = response["off"]
        complete = bool(response.get("match"))
        seq = (seq + 1) & 0xFF
    return complete
