"""Deterministic fault plans: *what* goes wrong, *where*, *when*.

UpKit's safety argument (Sect. IV: double verification + slot
management means a device is never left unbootable) is only as strong
as the set of failure scenarios it is exercised against.  A
:class:`FaultPlan` is a seeded, reproducible schedule of
:class:`FaultPoint` s spanning every layer of the stack:

=====================  =====================================================
kind                   trigger semantics (``at`` / ``param``)
=====================  =====================================================
POWER_LOSS_WRITE       power loss at the ``at``-th flash *write*
POWER_LOSS_ERASE       power loss at the ``at``-th flash page *erase*
                       (leaves a half-erased page behind)
POWER_LOSS_ANY         power loss at the ``at``-th modifying flash op
                       (writes and erases interleaved — sweeps the agent
                       download *and* the bootloader install)
LINK_OUTAGE            link down once ``at`` cumulative bytes were
                       delivered; the next ``param`` transfer attempts fail
LOSS_BURST             packet-loss burst (50%) over cumulative bytes
                       [``at``, ``at + param``)
REBOOT                 device power-cycles (RAM lost, no cleaning) once
                       the agent has been fed ``at`` bytes
BIT_ROT                ``param`` selects the slot (0 = bootable, 1 =
                       staged/other); 4 bytes at slot offset ``at`` are
                       corrupted after transfer, before the next boot
SERVER_OUTAGE          the server's ``prepare_update`` raises
                       :class:`~repro.core.ServerUnavailable` for
                       requests ``at`` .. ``at + param - 1``
SLOW_LINK              the link degrades once ``at`` cumulative bytes
                       were delivered: per-packet costs are multiplied
                       by ``param`` (a marginal radio, not a dead one —
                       the straggler the fleet telemetry plane exists
                       to catch)
LINK_STORM             correlated outage: every link in a fault domain
                       drops at the same ``at`` cumulative bytes for
                       ``param`` consecutive attempts (a regional
                       backhaul/gateway failure, not one flaky radio)
LOSS_FRONT             correlated loss burst (a weather front): every
                       link in a domain suffers the burst over
                       cumulative bytes [``at``, ``at + param``)
HERD_REBOOT            thundering herd: every device in a domain drops
                       its connection at the same ``at`` cumulative
                       bytes (synchronized reboot), then all re-attach
                       at once — the retry-storm amplifier
COORDINATOR_CRASH      the *update coordinator* dies after its ``at``-th
                       durable journal append; the campaign must be
                       resumed from the write-ahead journal
                       (:mod:`repro.fleet.journal`)
=====================  =====================================================

Plans are value objects: hashable, sortable, JSON-serialisable — the
chaos sweep report (:mod:`repro.tools.chaos`) round-trips them so a
failing point can be replayed in isolation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["FaultKind", "FaultPoint", "FaultPlan"]


class FaultKind(enum.Enum):
    """Every fault the injector can schedule, across all layers."""

    POWER_LOSS_WRITE = "power-loss-write"
    POWER_LOSS_ERASE = "power-loss-erase"
    POWER_LOSS_ANY = "power-loss-any"
    LINK_OUTAGE = "link-outage"
    LOSS_BURST = "loss-burst"
    SLOW_LINK = "slow-link"
    REBOOT = "reboot"
    BIT_ROT = "bit-rot"
    SERVER_OUTAGE = "server-outage"
    # Correlated kinds (PR 7): scheduled by a DomainPlan against every
    # member of a fault domain rather than one device.
    LINK_STORM = "link-storm"
    LOSS_FRONT = "loss-front"
    HERD_REBOOT = "herd-reboot"
    COORDINATOR_CRASH = "coordinator-crash"


@dataclass(frozen=True)
class FaultPoint:
    """One scheduled fault: a kind plus its two trigger coordinates."""

    kind: FaultKind
    at: int
    param: int = 0

    def __post_init__(self) -> None:
        if self.at < 0 or self.param < 0:
            raise ValueError("fault coordinates must be non-negative")

    @property
    def label(self) -> str:
        """Stable human-readable id, e.g. ``power-loss-erase@7``."""
        if self.param:
            return "%s@%d/%d" % (self.kind.value, self.at, self.param)
        return "%s@%d" % (self.kind.value, self.at)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind.value, "at": self.at,
                "param": self.param}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPoint":
        return cls(kind=FaultKind(data["kind"]), at=int(data["at"]),
                   param=int(data.get("param", 0)))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, de-duplicated set of fault points plus its seed.

    The seed feeds every derived RNG (links, jitter) so one plan always
    replays to the same byte-level behaviour.
    """

    points: Tuple[FaultPoint, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        deduped = tuple(sorted(
            set(self.points),
            key=lambda p: (p.kind.value, p.at, p.param)))
        object.__setattr__(self, "points", deduped)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[FaultPoint]:
        return iter(self.points)

    def of_kind(self, kind: FaultKind) -> List[FaultPoint]:
        return [point for point in self.points if point.kind is kind]

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for point in self.points:
            counts[point.kind.value] = counts.get(point.kind.value, 0) + 1
        return counts

    def sample(self, stride: int, offset: int = 0) -> "FaultPlan":
        """Every ``stride``-th point (bounded tier-1 sweeps), kind-fair:
        the stride is applied per kind so no fault family drops out."""
        if stride < 1:
            raise ValueError("stride must be at least 1")
        kept: List[FaultPoint] = []
        for kind in FaultKind:
            family = self.of_kind(kind)
            kept.extend(family[offset % stride::stride])
        return FaultPlan(points=tuple(kept), seed=self.seed)

    def merged_with(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(points=self.points + other.points,
                         seed=self.seed)

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "points": [point.to_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        points = tuple(FaultPoint.from_dict(entry)
                       for entry in data["points"])  # type: ignore[index]
        return cls(points=points, seed=int(data.get("seed", 0)))

    @classmethod
    def single(cls, kind: FaultKind, at: int, param: int = 0,
               seed: int = 0) -> "FaultPlan":
        return cls(points=(FaultPoint(kind, at, param),), seed=seed)

    @classmethod
    def build(cls, axes: Sequence[Tuple[FaultKind, Sequence[int], int]],
              seed: int = 0) -> "FaultPlan":
        """Cartesian helper: ``(kind, at_values, param)`` per axis."""
        points = tuple(FaultPoint(kind, at, param)
                       for kind, ats, param in axes
                       for at in ats)
        return cls(points=points, seed=seed)
