"""Correlated fault domains: fleets fail in groups, not one at a time.

PR 2's fault plans model *per-device* failure; real fleets fail in
*correlated* ways — a regional backhaul outage takes every device
behind one gateway down at once, a weather front sweeps packet loss
across regions in sequence, a power blip reboots a whole building and
the devices re-attach as a thundering herd.  The FOTA survey
(Arakadakis et al.) names correlated loss and coordinator failure as
the dominant causes of stalled rollouts; this module makes them
first-class, schedulable, reproducible workloads.

Three value objects:

* :class:`FaultDomain` — a named group of devices/links (region,
  gateway, cohort).  Membership is assignment-rule based
  (:meth:`DomainPlan.domain_of`), never stored per device, so a
  million-device fleet costs nothing extra.
* :class:`DomainEvent` — one correlated event on the virtual clock:
  kind (``LINK_STORM`` / ``LOSS_FRONT`` / ``HERD_REBOOT`` /
  ``COORDINATOR_CRASH``), start time, duration, severity, and a
  ``sweep`` stagger that shifts the window per domain position (the
  weather front crossing regions one after another).
* :class:`DomainPlan` — domains + events + seed.  For any domain it
  derives a deterministic per-domain RNG (so ``cli chaos --seed``
  replays exactly, satellite of PR 7) and converts the time-windowed
  events active at a given admit time into a byte-coordinate
  :class:`~repro.faults.plan.FaultPlan` every member's link replays.

**Correlation mechanics.**  All members of one domain receive the
*same* byte coordinates for one event (drawn once from the domain's
RNG), which is exactly what makes the failure correlated rather than
independent — and what keeps columnar cohort replication sound: a
cohort mapped onto a domain shares its link schedule, so one hydrated
representative still speaks for every member.

**Event-boundedness.**  Faults quantize to *attempt* granularity: an
event applies to a device's update attempt when its (possibly swept)
window contains the attempt's admit time.  Nothing polls the clock —
a 100k-device correlated sweep stays bounded by scheduler events, not
by time resolution.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.link import COAP_6LOWPAN, Link, LinkProfile
from .injector import FaultInjector
from .plan import FaultKind, FaultPlan, FaultPoint

__all__ = ["FaultDomain", "DomainEvent", "DomainPlan", "derive_seed",
           "CORRELATED_KINDS"]

#: Domain-event kinds that land on member links (COORDINATOR_CRASH
#: lands on the campaign's journal instead).
CORRELATED_KINDS = (FaultKind.LINK_STORM, FaultKind.LOSS_FRONT,
                    FaultKind.HERD_REBOOT)


def derive_seed(seed: int, *parts: object) -> int:
    """Mix ``seed`` with labels into a stable derived seed.

    CRC-32 over the repr of each part, folded into the base seed — the
    one-way street from ``cli chaos --seed`` to every per-domain and
    per-attacker RNG, so two sweeps with the same seed replay
    bit-identically and different domains never share an RNG stream.
    """
    mixed = seed & 0xFFFFFFFF
    for part in parts:
        mixed = zlib.crc32(repr(part).encode("utf-8"), mixed) & 0xFFFFFFFF
    return mixed


@dataclass(frozen=True)
class FaultDomain:
    """One named failure-correlation group."""

    name: str
    #: What the grouping models: ``region`` | ``gateway`` | ``cohort``.
    kind: str = "region"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fault domain needs a name")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "kind": self.kind}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultDomain":
        return cls(name=str(data["name"]), kind=str(data.get("kind",
                                                             "region")))


@dataclass(frozen=True)
class DomainEvent:
    """One correlated event on the virtual clock.

    ``at``/``duration`` are virtual seconds; ``sweep`` shifts the
    window by ``sweep * position`` for the domain at ``position`` (a
    front crossing domains in order; 0 = simultaneous everywhere).
    ``severity`` scales the event: consecutive failed attempts for a
    storm, burst width share for a front, and is carried verbatim for
    a coordinator crash (the journal-append index to die at).
    """

    kind: FaultKind
    at: float = 0.0
    duration: float = 60.0
    severity: int = 1
    sweep: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CORRELATED_KINDS \
                and self.kind is not FaultKind.COORDINATOR_CRASH:
            raise ValueError("%s is not a correlated event kind"
                             % self.kind.value)
        if self.at < 0 or self.duration <= 0 or self.sweep < 0:
            raise ValueError("event window must be non-negative and "
                             "non-empty")
        if self.severity < 1:
            raise ValueError("severity must be at least 1")

    def window(self, position: int) -> Tuple[float, float]:
        """The [start, end) window as seen by domain ``position``."""
        start = self.at + self.sweep * position
        return start, start + self.duration

    def active_at(self, position: int, t: Optional[float]) -> bool:
        """Does this event hit an attempt admitted at ``t``?

        ``t=None`` means "ignore the clock" (whole-campaign events —
        what the cross-fleet-size parity tests use).
        """
        if t is None:
            return True
        start, end = self.window(position)
        return start <= t < end

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind.value, "at": self.at,
                "duration": self.duration, "severity": self.severity,
                "sweep": self.sweep}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DomainEvent":
        return cls(kind=FaultKind(data["kind"]), at=float(data["at"]),
                   duration=float(data["duration"]),
                   severity=int(data.get("severity", 1)),
                   sweep=float(data.get("sweep", 0.0)))


class DomainPlan:
    """Domains + correlated events + the seed that replays them.

    ``assignment`` maps fleet row/record index -> domain:

    * ``block`` — contiguous equal slices (devices behind one gateway
      are usually provisioned together);
    * ``hash`` — CRC-based scatter (geographic mixing).
    """

    def __init__(self, domains: List[FaultDomain],
                 events: List[DomainEvent], seed: int = 0,
                 assignment: str = "block") -> None:
        if not domains:
            raise ValueError("a domain plan needs at least one domain")
        names = [domain.name for domain in domains]
        if len(set(names)) != len(names):
            raise ValueError("duplicate domain names: %r" % names)
        if assignment not in ("block", "hash"):
            raise ValueError("assignment must be 'block' or 'hash'")
        self.domains: Tuple[FaultDomain, ...] = tuple(domains)
        self.events: Tuple[DomainEvent, ...] = tuple(events)
        self.seed = seed
        self.assignment = assignment
        self._positions = {domain.name: position
                           for position, domain in enumerate(self.domains)}

    # -- membership -----------------------------------------------------------

    def position_of(self, domain_name: str) -> int:
        try:
            return self._positions[domain_name]
        except KeyError:
            raise KeyError("unknown domain %r (have: %s)"
                           % (domain_name,
                              ", ".join(sorted(self._positions)))) \
                from None

    def domain_of(self, index: int, count: int) -> FaultDomain:
        """The domain of fleet member ``index`` of ``count``."""
        if not (0 <= index < count):
            raise ValueError("index %d outside fleet of %d"
                             % (index, count))
        if self.assignment == "block":
            position = index * len(self.domains) // count
        else:
            position = derive_seed(self.seed, "member", index) \
                % len(self.domains)
        return self.domains[position]

    def members(self, count: int) -> Dict[str, List[int]]:
        """Domain name -> member indices for a fleet of ``count``."""
        mapping: Dict[str, List[int]] = {domain.name: []
                                         for domain in self.domains}
        for index in range(count):
            mapping[self.domain_of(index, count).name].append(index)
        return mapping

    # -- per-domain fault derivation -----------------------------------------

    def domain_rng(self, domain_name: str, *parts: object) \
            -> random.Random:
        """The domain's deterministic RNG stream (optionally refined by
        extra labels, e.g. the event index)."""
        return random.Random(derive_seed(self.seed, "domain",
                                         domain_name, *parts))

    def fault_plan_for(self, position: int, transfer_bytes: int,
                       at_time: Optional[float] = None) -> FaultPlan:
        """Byte-coordinate fault plan for one domain member's attempt.

        Every member of the domain receives the *same* coordinates
        (drawn once per event from the domain's RNG) — that sameness
        is the correlation.  ``transfer_bytes`` scales byte positions
        to the actual transfer; ``at_time`` filters to events whose
        swept window covers the attempt's admit time (None = all).
        """
        if position < 0 or position >= len(self.domains):
            raise ValueError("no domain at position %d" % position)
        if transfer_bytes < 1:
            raise ValueError("transfer_bytes must be positive")
        domain = self.domains[position]
        points: List[FaultPoint] = []
        for event_index, event in enumerate(self.events):
            if event.kind not in CORRELATED_KINDS:
                continue
            if not event.active_at(position, at_time):
                continue
            rng = self.domain_rng(domain.name, "event", event_index)
            at = rng.randrange(1, max(2, transfer_bytes))
            if event.kind is FaultKind.LINK_STORM:
                points.append(FaultPoint(FaultKind.LINK_STORM, at,
                                         event.severity))
            elif event.kind is FaultKind.LOSS_FRONT:
                width = max(256, transfer_bytes // 8) \
                    * min(event.severity, 4)
                points.append(FaultPoint(FaultKind.LOSS_FRONT,
                                         min(at, max(0, transfer_bytes
                                                     - width)),
                                         width))
            else:  # HERD_REBOOT: one synchronized drop per member
                points.append(FaultPoint(FaultKind.HERD_REBOOT, at, 1))
        return FaultPlan(points=tuple(points),
                         seed=derive_seed(self.seed, "link",
                                          domain.name))

    def link_for(self, position: int, transfer_bytes: int,
                 profile: LinkProfile = COAP_6LOWPAN,
                 at_time: Optional[float] = None,
                 loss_rate: float = 0.0) -> Optional[Link]:
        """A fresh link carrying the domain's active correlated faults.

        None when no event is active — the caller keeps whatever
        healthy link it had, so domain wiring is a no-op off-storm.
        """
        plan = self.fault_plan_for(position, transfer_bytes,
                                   at_time=at_time)
        if not len(plan):
            return None
        return FaultInjector(plan).make_link(profile,
                                             loss_rate=loss_rate)

    # -- coordinator faults ---------------------------------------------------

    def coordinator_kills(self) -> List[int]:
        """Journal-append indices at which the coordinator dies
        (``COORDINATOR_CRASH`` events; severity is the index)."""
        return [event.severity for event in self.events
                if event.kind is FaultKind.COORDINATOR_CRASH]

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "assignment": self.assignment,
            "domains": [domain.to_dict() for domain in self.domains],
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DomainPlan":
        return cls(
            domains=[FaultDomain.from_dict(entry)
                     for entry in data["domains"]],  # type: ignore[index]
            events=[DomainEvent.from_dict(entry)
                    for entry in data["events"]],  # type: ignore[index]
            seed=int(data.get("seed", 0)),
            assignment=str(data.get("assignment", "block")),
        )
