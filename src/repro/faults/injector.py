"""The fault injector: wires a :class:`~repro.faults.plan.FaultPlan`
into a live testbed.

Each fault kind lands in the layer it belongs to:

* power-loss points arm the flash devices' own countdown
  (:meth:`~repro.memory.flash.FlashMemory.inject_power_loss`), filtered
  to writes, erases or both;
* link outages, loss bursts and slowdowns become the
  :class:`~repro.net.link.Link` fault schedule (build the link via
  :meth:`FaultInjector.make_link`);
* reboot points wrap the device's ``feed`` so the agent loses power —
  :class:`DeviceRebooted` propagates out of the transport, RAM state is
  gone, flash state stays exactly as written;
* server outage points wrap ``server.prepare_update`` to raise
  :class:`~repro.core.ServerUnavailable` for a window of requests;
* bit-rot points corrupt stored slot bytes *after* the transfer but
  before the decisive boot (:meth:`FaultInjector.apply_pre_boot`).

The wrappers are instance-level monkey-patches on the testbed's own
objects: a fresh testbed per point (the chaos runner's protocol) means
nothing leaks between points.
"""

from __future__ import annotations

from typing import List

from ..core import ServerUnavailable
from ..memory import FlashMemory
from ..net.link import COAP_6LOWPAN, Link, LinkProfile, LossBurst, \
    Outage, Slowdown
from .plan import FaultKind, FaultPlan, FaultPoint

__all__ = ["DeviceRebooted", "FaultInjector", "BURST_LOSS_RATE"]

#: Packet-loss rate inside an injected :class:`LossBurst` window.
BURST_LOSS_RATE = 0.5

#: Bytes corrupted by one bit-rot point.
_ROT_BYTES = 4

_DURING = {
    FaultKind.POWER_LOSS_WRITE: "write",
    FaultKind.POWER_LOSS_ERASE: "erase",
    FaultKind.POWER_LOSS_ANY: "any",
}


class DeviceRebooted(Exception):
    """Injected fault: the device power-cycled mid-transfer.

    Deliberately *not* an :class:`~repro.core.errors.UpdateError`: the
    transports must not swallow it as a failed update — it propagates
    out of ``run_update`` to the chaos runner, which models the power
    cycle (RAM lost via ``agent.power_cycle()``, flash kept) and the
    subsequent reboot.
    """


class FaultInjector:
    """Arms every fault of one plan against one testbed.

    Protocol (what :mod:`repro.tools.chaos` drives):

    1. build the link with :meth:`make_link` and hand it to the
       transport;
    2. :meth:`arm` before the first transfer attempt;
    3. after every power cycle call :meth:`rearm` (arms the next queued
       power-loss point, if the previous one fired);
    4. :meth:`apply_pre_boot` once the transfer is over, before the
       boot that decides the update.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Power-loss points are armed one at a time (a flash device
        #: holds a single countdown); each ``at`` counts operations from
        #: its own arming — i.e. from the previous power cycle.
        self._power_queue: List[FaultPoint] = [
            point for point in plan.points if point.kind in _DURING]

    # -- link-layer faults --------------------------------------------------

    def make_link(self, profile: LinkProfile = COAP_6LOWPAN,
                  loss_rate: float = 0.0) -> Link:
        """A link carrying the plan's outage/burst schedule.

        Reuse the same link across transfer attempts: outage schedules
        are cumulative-byte based, so a re-created link would replay
        already-survived outages.
        """
        # Correlated kinds share the per-device mechanics: a LINK_STORM
        # is an outage every domain member hits at the same byte, a
        # HERD_REBOOT is a single synchronized connection drop, a
        # LOSS_FRONT is a shared loss burst.  The *correlation* lives in
        # the DomainPlan handing every member the same coordinates; the
        # link replays them exactly like their per-device twins.
        outages = [Outage(at_byte=point.at,
                          failures=max(1, point.param))
                   for point in (self.plan.of_kind(FaultKind.LINK_OUTAGE)
                                 + self.plan.of_kind(FaultKind.LINK_STORM))]
        outages += [Outage(at_byte=point.at, failures=1)
                    for point in self.plan.of_kind(FaultKind.HERD_REBOOT)]
        bursts = [LossBurst(start_byte=point.at,
                            end_byte=point.at + max(1, point.param),
                            loss_rate=BURST_LOSS_RATE)
                  for point in (self.plan.of_kind(FaultKind.LOSS_BURST)
                                + self.plan.of_kind(FaultKind.LOSS_FRONT))]
        slowdowns = [Slowdown(at_byte=point.at,
                              factor=float(max(2, point.param)))
                     for point in self.plan.of_kind(FaultKind.SLOW_LINK)]
        return Link(profile, loss_rate=loss_rate, seed=self.plan.seed,
                    outages=outages, loss_bursts=bursts,
                    slowdowns=slowdowns)

    # -- device/server faults ----------------------------------------------

    def arm(self, bed) -> None:
        """Install all pre-transfer faults on ``bed`` (a Testbed)."""
        self._arm_next_power_fault(bed)
        self._arm_reboots(bed)
        self._arm_server_outages(bed)

    def rearm(self, bed) -> None:
        """After a power cycle: queue up the next power-loss point.

        A reboot injected while a power-loss countdown is still armed
        leaves that countdown in place — only a *fired* fault advances
        the queue.
        """
        if any(flash.fault_armed for flash in self._flash_devices(bed)):
            return
        self._arm_next_power_fault(bed)

    def apply_pre_boot(self, bed) -> None:
        """Bit-rot: corrupt stored slot bytes before the decisive boot.

        ``param`` selects the slot: 0 — slot ``"a"`` (the image the
        device left the factory with), 1 — slot ``"b"`` (where the
        fresh download landed).  ``at`` is the offset inside the slot.
        """
        for point in self.plan.of_kind(FaultKind.BIT_ROT):
            slot = bed.device.layout.get("b" if point.param else "a")
            offset = min(point.at, slot.size - _ROT_BYTES)
            absolute = slot.offset + offset
            stale = bytes(slot.flash.snapshot()[absolute:absolute
                                                + _ROT_BYTES])
            slot.flash.corrupt(absolute,
                               bytes(b ^ 0xA5 for b in stale))

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _flash_devices(bed) -> List[FlashMemory]:
        devices: List[FlashMemory] = []
        for slot in bed.device.layout.slots:
            if all(slot.flash is not known for known in devices):
                devices.append(slot.flash)
        return devices

    def _arm_next_power_fault(self, bed) -> None:
        if not self._power_queue:
            return
        point = self._power_queue.pop(0)
        # All devices share the countdown value; whichever reaches it
        # first fires (in the stock layouts every slot shares one
        # internal flash anyway).
        for flash in self._flash_devices(bed):
            flash.clear_fault()
            flash.inject_power_loss(point.at, during=_DURING[point.kind])

    def _arm_reboots(self, bed) -> None:
        points = self.plan.of_kind(FaultKind.REBOOT)
        if not points:
            return
        device = bed.device
        pending = sorted(point.at for point in points)
        state = {"fed": 0}
        original = device.feed

        def feed(chunk):
            status = original(chunk)
            state["fed"] += len(chunk)
            if pending and state["fed"] >= pending[0]:
                pending.pop(0)
                raise DeviceRebooted(
                    "device power-cycled after %d bytes fed"
                    % state["fed"])
            return status

        device.feed = feed

    def _arm_server_outages(self, bed) -> None:
        points = self.plan.of_kind(FaultKind.SERVER_OUTAGE)
        if not points:
            return
        server = bed.server
        windows = [(point.at, point.at + max(1, point.param))
                   for point in points]
        state = {"requests": 0}
        original = server.prepare_update

        def prepare_update(token):
            index = state["requests"]
            state["requests"] += 1
            for start, end in windows:
                if start <= index < end:
                    raise ServerUnavailable(
                        "update server unreachable (request %d in "
                        "outage window [%d, %d))" % (index, start, end))
            return original(token)

        server.prepare_update = prepare_update
