"""Deterministic fault injection across every layer of the stack.

:mod:`repro.faults.plan` describes *what* goes wrong (seeded, value-
object fault schedules); :mod:`repro.faults.injector` wires a plan into
a live testbed; :mod:`repro.faults.domains` groups devices into
correlated failure domains (regions, gateways, cohorts) and schedules
fleet-wide storms, loss fronts, thundering herds, and coordinator
crashes against them.  The chaos sweep (:mod:`repro.tools.chaos`)
drives all three to assert the paper's anti-bricking invariant under an
exhaustive grid of injected failures.
"""

from .domains import (
    CORRELATED_KINDS,
    DomainEvent,
    DomainPlan,
    FaultDomain,
    derive_seed,
)
from .injector import BURST_LOSS_RATE, DeviceRebooted, FaultInjector
from .plan import FaultKind, FaultPlan, FaultPoint

__all__ = [
    "BURST_LOSS_RATE",
    "CORRELATED_KINDS",
    "DeviceRebooted",
    "DomainEvent",
    "DomainPlan",
    "FaultDomain",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPoint",
    "derive_seed",
]
