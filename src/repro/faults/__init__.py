"""Deterministic fault injection across every layer of the stack.

:mod:`repro.faults.plan` describes *what* goes wrong (seeded, value-
object fault schedules); :mod:`repro.faults.injector` wires a plan into
a live testbed.  The chaos sweep (:mod:`repro.tools.chaos`) drives both
to assert the paper's anti-bricking invariant under an exhaustive grid
of injected failures.
"""

from .injector import BURST_LOSS_RATE, DeviceRebooted, FaultInjector
from .plan import FaultKind, FaultPlan, FaultPoint

__all__ = [
    "BURST_LOSS_RATE",
    "DeviceRebooted",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPoint",
]
