"""Crash-safe campaign durability: a CRC'd write-ahead journal.

The update *coordinator* is itself a failure domain: if the process
driving a million-device rollout dies mid-wave, the campaign must
resume without re-flashing devices that already updated or issuing a
second token to anyone.  :class:`CampaignJournal` is the substrate —
an append-only, CRC-32-framed record log of everything the campaign
decides (wave plans, per-device outcomes, SLO verdicts), written
*ahead* of any action that depends on it:

* ``campaign-start`` — target version, fleet size;
* ``wave-plan``     — the wave's member names, in order, before any
  member is driven;
* ``device-outcome`` — one device's terminal result (state, attempts,
  scalars, black-box phases, governor snapshot), appended the moment
  the device finishes — before the next device starts;
* ``wave-close``    — duration, verdict action, quarantine re-filings,
  breaches, the wave cap, abort/pause flags;
* ``campaign-end``  — the final report's SHA-256 (an integrity seal a
  resume can check itself against).

Line format: ``crc32:<8 hex> <canonical JSON>\\n``.  A torn tail
(power cut mid-append) or a rotted line fails its CRC and is *skipped*
on replay — the journal degrades, it never lies, exactly like the
on-device black box (:mod:`repro.obs.blackbox`).

**Crash model.**  :exc:`CoordinatorKilled` simulates the coordinator
dying *after* a durable append (``arm_kill``).  Because every outcome
is journaled synchronously before the campaign takes any further
action, the set of driven devices always equals the set of journaled
devices at a kill point — which is what makes
``Campaign.resume(journal)`` exact: zero re-flashes, zero double
tokens, byte-identical final report.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Dict, List, Optional

__all__ = ["CampaignJournal", "CoordinatorKilled", "JOURNAL_KINDS"]

#: Record kinds, in lifecycle order.
JOURNAL_KINDS = ("campaign-start", "wave-plan", "device-outcome",
                 "wave-close", "campaign-end")

_PREFIX = "crc32:"


class CoordinatorKilled(RuntimeError):
    """Injected fault: the campaign coordinator died.

    Raised by the journal immediately *after* the armed append was
    durably written — the record survives, the coordinator's RAM does
    not.  The campaign propagates it; ``Campaign.resume`` picks up
    from the journal.
    """

    def __init__(self, append_index: int) -> None:
        super().__init__("coordinator killed after journal append %d"
                         % append_index)
        self.append_index = append_index


def _encode(entry: Dict[str, object]) -> str:
    payload = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return "%s%08x %s\n" % (_PREFIX, crc, payload)


def _decode(line: str) -> Optional[Dict[str, object]]:
    """One journal line -> entry dict, or None for torn/rotted lines."""
    if not line.endswith("\n") or not line.startswith(_PREFIX):
        return None  # torn tail: the append never completed
    body = line[len(_PREFIX):-1]
    if len(body) < 10 or body[8] != " ":
        return None
    try:
        crc = int(body[:8], 16)
    except ValueError:
        return None
    payload = body[9:]
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        entry = json.loads(payload)
    except json.JSONDecodeError:  # pragma: no cover - CRC catches first
        return None
    return entry if isinstance(entry, dict) else None


class CampaignJournal:
    """Append-only campaign WAL, file-backed or in-memory.

    ``path=None`` keeps the journal in memory (tests, simulated
    kills); with a path every append is written and flushed before
    :meth:`append` returns — write-ahead, durably.  Re-opening an
    existing path resumes appending after its valid prefix.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._lines: List[str] = []
        self._torn = 0
        self._kill_at: Optional[int] = None
        self._lock = threading.Lock()
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8", newline="") as fh:
                raw = fh.read()
            self._lines = raw.splitlines(keepends=True)
        self._fh = (open(path, "a", encoding="utf-8", newline="")
                    if path is not None else None)

    # -- writing --------------------------------------------------------------

    def arm_kill(self, append_index: int) -> None:
        """Die (raise :exc:`CoordinatorKilled`) right after the
        ``append_index``-th append of this session (1-based) lands."""
        if append_index < 1:
            raise ValueError("append_index is 1-based")
        self._kill_at = append_index
        self._appends_armed = len(self._lines)

    def append(self, kind: str, **fields: object) -> Dict[str, object]:
        """Durably append one record; returns the entry written."""
        if kind not in JOURNAL_KINDS:
            raise ValueError("unknown journal record kind %r" % kind)
        entry: Dict[str, object] = {"kind": kind}
        entry.update(fields)
        line = _encode(entry)
        with self._lock:
            self._lines.append(line)
            if self._fh is not None:
                self._fh.write(line)
                self._fh.flush()
                os.fsync(self._fh.fileno())
            if self._kill_at is not None:
                since_armed = len(self._lines) - self._appends_armed
                if since_armed >= self._kill_at:
                    self._kill_at = None
                    self.close()
                    raise CoordinatorKilled(since_armed)
        return entry

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- replay ---------------------------------------------------------------

    def entries(self) -> List[Dict[str, object]]:
        """Every valid record, in append order; torn lines skipped
        (and tallied in :meth:`stats`)."""
        found: List[Dict[str, object]] = []
        torn = 0
        for line in self._lines:
            entry = _decode(line)
            if entry is None:
                torn += 1
                continue
            found.append(entry)
        self._torn = torn
        return found

    def stats(self) -> Dict[str, object]:
        """Journal health for reports: appends, torn lines, bytes."""
        entries = self.entries()
        kinds: Dict[str, int] = {}
        for entry in entries:
            kind = str(entry.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "appends": len(self._lines),
            "valid": len(entries),
            "torn_skipped": self._torn,
            "bytes": sum(len(line.encode("utf-8"))
                         for line in self._lines),
            "kinds": {kind: kinds[kind] for kind in sorted(kinds)},
        }

    # -- test/fuzz hooks ------------------------------------------------------

    def corrupt_line(self, index: int, mutation: str = "truncate") -> None:
        """Damage one stored line (fuzz tests): ``truncate`` cuts it
        mid-record, ``flip`` XORs a payload byte, ``drop`` removes it."""
        line = self._lines[index]
        if mutation == "truncate":
            self._lines[index] = line[:max(1, len(line) // 2)]
        elif mutation == "flip":
            middle = len(line) // 2
            self._lines[index] = (line[:middle]
                                  + chr(ord(line[middle]) ^ 0x01)
                                  + line[middle + 1:])
        elif mutation == "drop":
            del self._lines[index]
        else:
            raise ValueError("unknown mutation %r" % mutation)

    @property
    def line_count(self) -> int:
        return len(self._lines)
