"""Wave executors: how a campaign drives the devices of one wave.

``Campaign.run`` plans *waves* (canary first, then the rest) and models
their wall-clock as if devices within a wave updated in parallel — each
against its own radio.  Execution, however, was strictly serial.  This
module makes the execution strategy pluggable:

* :class:`SerialWaveExecutor` — the default; devices update one after
  the other on the calling thread.  Fully deterministic and the right
  choice for debugging and small fleets.
* :class:`ParallelWaveExecutor` — a persistent ``concurrent.futures``
  thread pool with configurable worker count and chunked dispatch.
  Threads overlap I/O waits (host-paced transports) but share the GIL,
  so they cannot speed up interpreter-bound device updates.
* :class:`ProcessWaveExecutor` — a process pool that sidesteps the GIL
  entirely: each worker receives a pickled copy of the server plus a
  chunk of device records, runs the per-device protocol on its own
  interpreter, and ships the mutated records (plus stats / cache
  deltas) back for a wave-order merge.

All three produce *identical* campaign results: each device is touched
by exactly one task, outcomes are merged back in wave order (so float
accumulation order matches the serial path bit-for-bit), and every
simulated cost comes off the device's own virtual clock — never the
host's.  ``tests/test_fleet_parallel.py`` asserts report equality.

:func:`select_executor` picks between the three from a cheap
:func:`calibrate` probe: thread-pool dispatch overhead, the pickle
round-trip cost of one device record, and the host core count.  On a
single-core host a CPU-bound wave stays serial — neither threads (GIL)
nor processes (no second core) can beat it, and the bench harness
flags the inversion rather than hiding it.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = [
    "WaveExecutor",
    "SerialWaveExecutor",
    "ParallelWaveExecutor",
    "ProcessWaveExecutor",
    "Calibration",
    "calibrate",
    "select_executor",
]

_Record = TypeVar("_Record")
_Outcome = TypeVar("_Outcome")

#: Called per device: (record, target_version) -> Optional[UpdateOutcome].
UpdateFn = Callable[[_Record, int], _Outcome]


class WaveExecutor:
    """Strategy interface: run one wave, return outcomes in wave order."""

    #: Optional :class:`~repro.obs.MetricsRegistry`: when set, each
    #: wave's *host* wall-clock (the executor's own cost, distinct from
    #: the devices' virtual time) is observed as
    #: ``executor.wave_host_seconds``.
    metrics = None
    #: Optional telemetry scrape hook, ``record -> None`` (set by the
    #: campaign when a :class:`~repro.obs.slo.FleetTelemetry` is
    #: attached).  Called once per device after its update finishes —
    #: a pure read of the device's metrics registry at its final
    #: virtual-clock time, so scraping never perturbs the simulation.
    #: The serial executor scrapes as it goes; the pooled executors
    #: scrape post-merge in wave order, so all yield the same store.
    scrape = None

    def run_wave(self, update: UpdateFn, wave: Sequence[_Record],
                 target: int) -> List[_Outcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker pool (no-op for poolless executors)."""

    def _scrape_wave(self, wave: Sequence[_Record]) -> None:
        if self.scrape is not None:
            for record in wave:
                self.scrape(record)

    def _observe_wave(self, host_seconds: float, devices: int) -> None:
        if self.metrics is None:
            return
        from ..obs.metrics import HOST_SECONDS_BUCKETS

        self.metrics.counter("executor.waves").inc()
        self.metrics.counter("executor.devices_driven").inc(devices)
        self.metrics.histogram("executor.wave_host_seconds",
                               HOST_SECONDS_BUCKETS).observe(host_seconds)


class SerialWaveExecutor(WaveExecutor):
    """One device after another on the calling thread (seed behaviour)."""

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics

    def run_wave(self, update: UpdateFn, wave: Sequence[_Record],
                 target: int) -> List[_Outcome]:
        start = time.perf_counter()
        outcomes = []
        for record in wave:
            outcomes.append(update(record, target))
            if self.scrape is not None:
                self.scrape(record)
        self._observe_wave(time.perf_counter() - start, len(wave))
        return outcomes


class ParallelWaveExecutor(WaveExecutor):
    """Thread-pool execution of a wave with chunked dispatch.

    ``max_workers`` bounds concurrency (default: CPU count, capped at
    16 — device updates are mostly interpreter-bound, so more threads
    only add contention).  ``chunk_size`` bounds how many device tasks
    are in flight at once, keeping memory flat on very large waves;
    it defaults to ``4 * max_workers``.

    The pool is created lazily on the first multi-device wave and
    **reused across waves** — per-wave pool construction used to cost
    more than the threads saved on I/O-light campaigns, inverting the
    speedup this executor exists to provide.  Call :meth:`close` (or
    rely on interpreter exit) to release the threads.

    Determinism: ``ThreadPoolExecutor.map`` yields results in
    submission order, each :class:`~repro.fleet.campaign.DeviceRecord`
    is owned by exactly one task, and shared components (the update
    server, the fast crypto engine's caches) take locks internally.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None, metrics=None) -> None:
        if max_workers is None:
            max_workers = min(16, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is None:
            chunk_size = 4 * max_workers
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.metrics = metrics
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_wave(self, update: UpdateFn, wave: Sequence[_Record],
                 target: int) -> List[_Outcome]:
        start_host = time.perf_counter()
        if len(wave) <= 1:
            results = [update(record, target) for record in wave]
            self._scrape_wave(wave)
            self._observe_wave(time.perf_counter() - start_host, len(wave))
            return results
        results: List[_Outcome] = []
        pool = self._ensure_pool()
        for start in range(0, len(wave), self.chunk_size):
            chunk = wave[start:start + self.chunk_size]
            results.extend(pool.map(update, chunk, repeat(target)))
        # Scrape post-merge, in wave order: worker threads never touch
        # the shared time-series store, so it fills deterministically.
        self._scrape_wave(wave)
        self._observe_wave(time.perf_counter() - start_host, len(wave))
        return results


def _run_process_chunk(payload):
    """Process-pool worker: update one chunk of devices start-to-finish.

    The payload carries pickled copies of the campaign's server, its
    policies, and the chunk's device records.  The worker zeroes the
    copied stats, snapshots the cache key sets and the crypto engine's
    counters, then drives each record through the campaign's own
    ``_update_device`` — the exact code path the serial executor runs —
    and returns everything the parent needs to merge: the mutated
    records, the outcomes, and the *deltas* this chunk contributed
    (server counters, new delta-cache entries, new artifact-cache
    entries, artifact counters, engine counter diffs).
    """
    server, policy, retry, records, target, engine_name = payload
    from ..core.server import ServerStats
    from ..crypto.engine import get_engine, use_engine
    from ..delta.artifacts import ArtifactStats
    from .campaign import Campaign

    delta_keys = server.delta_cache_keys()
    artifact_keys = server.artifacts.snapshot_keys()
    server.stats = ServerStats()
    server.artifacts.stats = ArtifactStats()
    with use_engine(engine_name):
        engine = get_engine()
        snapshot = getattr(engine, "stats_snapshot", None)
        engine_baseline = snapshot() if snapshot is not None else None
        campaign = Campaign(server, list(records), policy=policy,
                            retry=retry)
        outcomes = [campaign._update_device(record, target)
                    for record in records]
        engine_delta = (engine.stats_snapshot().diff(engine_baseline)
                        if engine_baseline is not None else None)
    return (
        list(records),
        outcomes,
        server.stats,
        server.export_deltas_since(delta_keys),
        server.artifacts.export_since(artifact_keys),
        server.artifacts.stats,
        engine_delta,
    )


class ProcessWaveExecutor(WaveExecutor):
    """Process-pool execution of a wave — the GIL does not apply.

    Each worker process receives a pickled (server, policies, record
    chunk) payload, runs the chunk with the campaign's own per-device
    code, and returns the mutated records plus stats/cache deltas.
    The parent merges chunks strictly in wave order:

    * each local :class:`~repro.fleet.campaign.DeviceRecord` adopts its
      worker twin's state wholesale (``__dict__`` swap — the worker
      copy *is* the authoritative post-update device);
    * server counters fold in via ``UpdateServer.merge_stats``, new
      delta-cache and artifact-cache entries via ``adopt_deltas`` /
      ``ArtifactCache.merge`` (content-addressed, so duplicates across
      chunks collapse to identical bytes);
    * fast-engine counters fold in via ``FastEngine.merge_stats``.

    Because the merge replays in wave order and every simulated cost
    lives on per-device virtual clocks, the campaign report is
    byte-identical to the serial executor's.

    ``chunk_size`` defaults to an even split of the wave across
    ``max_workers`` — one payload per worker amortises the pickled
    server copy.  Non-campaign update callables and waves smaller than
    ``min_fork_wave`` (default: ``max_workers``) fall back to
    in-process serial execution: a wave that cannot keep every worker
    busy does not amortise the dispatch, and running the small canary
    wave in-process warms the parent's crypto caches so the
    fork-context workers *inherit* them copy-on-write instead of each
    rebuilding the ECDSA tables from scratch.

    The pool is fork-context where available (cheap worker start, no
    re-import) and persists across waves; call :meth:`close` to reap.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 min_fork_wave: Optional[int] = None, metrics=None) -> None:
        if max_workers is None:
            max_workers = min(16, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if min_fork_wave is None:
            min_fork_wave = max_workers
        if min_fork_wave < 2:
            min_fork_wave = 2
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.min_fork_wave = min_fork_wave
        self.metrics = metrics
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                import multiprocessing

                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                context = None
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _chunks(self, wave: Sequence[_Record]) -> List[Sequence[_Record]]:
        size = self.chunk_size
        if size is None:
            size = -(-len(wave) // min(self.max_workers, len(wave)))
        return [wave[start:start + size]
                for start in range(0, len(wave), size)]

    def run_wave(self, update: UpdateFn, wave: Sequence[_Record],
                 target: int) -> List[_Outcome]:
        start_host = time.perf_counter()
        campaign = getattr(update, "__self__", None)
        if (campaign is None or len(wave) < self.min_fork_wave
                or self.max_workers < 2):
            # Nothing to parallelise (or a bare callable we cannot
            # ship to a worker): run in-process, identical to serial.
            results = [update(record, target) for record in wave]
            self._scrape_wave(wave)
            self._observe_wave(time.perf_counter() - start_host, len(wave))
            return results

        from ..crypto.engine import get_engine

        engine_name = get_engine().name
        chunks = self._chunks(wave)
        payloads = [(campaign.server, campaign.policy, campaign.retry,
                     list(chunk), target, engine_name) for chunk in chunks]
        pool = self._ensure_pool()
        results: List[_Outcome] = []
        # map() yields in submission order, so the merge below runs
        # strictly in wave order even when chunks finish out of order.
        for chunk, returned in zip(chunks,
                                   pool.map(_run_process_chunk, payloads)):
            (remote_records, outcomes, server_stats, new_deltas,
             new_artifacts, artifact_stats, engine_delta) = returned
            for local, remote in zip(chunk, remote_records):
                local.__dict__.update(remote.__dict__)
            campaign.server.merge_stats(server_stats)
            campaign.server.adopt_deltas(new_deltas)
            campaign.server.artifacts.merge(new_artifacts)
            campaign.server.artifacts.merge_stats(artifact_stats)
            if engine_delta is not None:
                engine = get_engine()
                merge = getattr(engine, "merge_stats", None)
                if merge is not None:
                    merge(engine_delta)
            results.extend(outcomes)
        self._scrape_wave(wave)
        self._observe_wave(time.perf_counter() - start_host, len(wave))
        return results


# -- executor selection ------------------------------------------------------


@dataclass(frozen=True)
class Calibration:
    """What the selection probe measured on *this* host.

    ``dispatch_seconds`` — thread-pool overhead per no-op task;
    ``pickle_seconds`` — round-trip (dumps + loads) cost of one device
    record, the marginal price a process pool pays per device;
    ``cpu_count`` — cores the GIL-free executor could actually use;
    ``process_speedup`` — measured two-process vs. serial speedup on a
    small CPU workload (None when the probe was skipped).  Sub-1x
    means forking loses outright on this host, no matter what the
    per-device arithmetic promises.
    """

    dispatch_seconds: float
    pickle_seconds: float
    cpu_count: int
    process_speedup: Optional[float] = None

    def to_dict(self) -> dict:
        result = {
            "dispatch_seconds": self.dispatch_seconds,
            "pickle_seconds": self.pickle_seconds,
            "cpu_count": self.cpu_count,
        }
        if self.process_speedup is not None:
            result["process_speedup"] = self.process_speedup
        return result


def calibrate(sample_record=None, tasks: int = 64,
              probe_processes: bool = False) -> Calibration:
    """Cheap probe of this host's parallelism economics (~1 ms).

    Times ``tasks`` no-op submissions through a two-thread pool for the
    dispatch overhead, and one pickle round-trip of ``sample_record``
    (when given) for the process-pool shipping cost.

    ``probe_processes=True`` additionally measures a real two-process
    vs. serial speedup on a small CPU workload (~50 ms): the direct
    empirical answer to "does forking pay on this host".  On a
    single-core box the measured speedup comes back *below* 1.0 —
    exactly the ``process_speedup: 0.62`` inversion the bench artifact
    recorded — and :func:`select_executor` then refuses the process
    pool regardless of the per-device cost arithmetic.
    """
    with ThreadPoolExecutor(max_workers=2) as pool:
        start = time.perf_counter()
        for _ in pool.map(_noop, range(tasks)):
            pass
        dispatch = (time.perf_counter() - start) / tasks
    pickle_seconds = 0.0
    if sample_record is not None:
        start = time.perf_counter()
        pickle.loads(pickle.dumps(sample_record,
                                  protocol=pickle.HIGHEST_PROTOCOL))
        pickle_seconds = time.perf_counter() - start
    process_speedup = None
    if probe_processes:
        process_speedup = _probe_process_speedup()
    return Calibration(dispatch_seconds=dispatch,
                       pickle_seconds=pickle_seconds,
                       cpu_count=os.cpu_count() or 1,
                       process_speedup=process_speedup)


def _noop(_value) -> None:
    return None


def _spin(iterations: int) -> int:
    """A small pure-CPU workload (keeps the GIL, pickles trivially)."""
    total = 0
    for value in range(iterations):
        total ^= value * 2654435761 & 0xFFFFFFFF
    return total


def _probe_process_speedup(iterations: int = 200_000,
                           chunks: int = 4) -> float:
    """Measured serial/two-process wall-clock ratio on `_spin` work.

    > 1.0 — forking genuinely wins on this host; < 1.0 — the fork +
    pickle + scheduling overhead exceeds any parallel gain (the
    single-core inversion).  Failures to fork (restricted hosts)
    report 0.0, which also vetoes the process pool.
    """
    work = [iterations] * chunks
    start = time.perf_counter()
    for item in work:
        _spin(item)
    serial = time.perf_counter() - start
    try:
        with ProcessPoolExecutor(max_workers=2) as pool:
            start = time.perf_counter()
            for _ in pool.map(_spin, work):
                pass
            forked = time.perf_counter() - start
    except (OSError, ValueError):  # pragma: no cover - restricted hosts
        return 0.0
    if forked <= 0:  # pragma: no cover - timer degenerate
        return 0.0
    return serial / forked


#: A process pool only pays off once per-device work dwarfs the pickle
#: round-trip by this factor (the payload crosses the boundary twice
#: and the worker re-runs collector binding on restore).
PROCESS_PAYOFF_FACTOR = 4.0

#: Above this fraction of host-paced I/O waiting, threads win no
#: matter the core count: the GIL is released while waiting.
IO_THREAD_THRESHOLD = 0.5


def select_executor(wave_size: int,
                    io_fraction: float = 0.0,
                    per_device_seconds: float = 0.0,
                    calibration: Optional[Calibration] = None,
                    max_workers: Optional[int] = None,
                    metrics=None) -> WaveExecutor:
    """Pick the executor the calibration says will actually win.

    * one device (or one worker) → :class:`SerialWaveExecutor` —
      nothing to overlap;
    * I/O-dominated waves (``io_fraction`` ≥ 0.5) →
      :class:`ParallelWaveExecutor` — threads overlap host-paced
      waits and the GIL is released while waiting, so this wins even
      on one core;
    * CPU-bound on a single core → :class:`SerialWaveExecutor` — the
      honest answer: threads serialise on the GIL and a process pool
      has no second core to run on, so both only add overhead;
    * CPU-bound on multiple cores with per-device work ≫ the pickle
      round-trip → :class:`ProcessWaveExecutor` — the GIL-free path;
    * otherwise serial: the work is too small to amortise either
      pool's overhead.
    """
    if calibration is None:
        calibration = calibrate()
    if wave_size <= 1 or (max_workers is not None and max_workers <= 1):
        return SerialWaveExecutor(metrics=metrics)
    if io_fraction >= IO_THREAD_THRESHOLD:
        # Waiting threads hold no core and no GIL, so the thread count
        # is not core-limited — overlap as many waits as sensible.
        workers = max_workers if max_workers is not None \
            else min(16, max(4, calibration.cpu_count))
        return ParallelWaveExecutor(max_workers=workers, metrics=metrics)
    workers = max_workers if max_workers is not None \
        else min(16, calibration.cpu_count)
    if workers <= 1 or calibration.cpu_count <= 1:
        return SerialWaveExecutor(metrics=metrics)
    if (calibration.process_speedup is not None
            and calibration.process_speedup < 1.0):
        # The probe *measured* forking losing on this host (the
        # single-core `process_speedup: 0.62` inversion): no amount of
        # per-device work rescues a pool that runs slower end-to-end.
        return SerialWaveExecutor(metrics=metrics)
    floor = max(calibration.pickle_seconds * PROCESS_PAYOFF_FACTOR,
                calibration.dispatch_seconds)
    if per_device_seconds > floor:
        return ProcessWaveExecutor(max_workers=workers, metrics=metrics)
    return SerialWaveExecutor(metrics=metrics)
