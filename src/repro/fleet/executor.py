"""Wave executors: how a campaign drives the devices of one wave.

``Campaign.run`` plans *waves* (canary first, then the rest) and models
their wall-clock as if devices within a wave updated in parallel — each
against its own radio.  Execution, however, was strictly serial.  This
module makes the execution strategy pluggable:

* :class:`SerialWaveExecutor` — the default; devices update one after
  the other on the calling thread.  Fully deterministic and the right
  choice for debugging and small fleets.
* :class:`ParallelWaveExecutor` — a ``concurrent.futures`` thread pool
  with configurable worker count and chunked dispatch, so real
  wall-clock approaches the within-wave-parallel model the report's
  ``wall_clock_seconds`` already claims.

Both produce *identical* campaign results: each device is touched by
exactly one task, outcomes are merged back in wave order (so float
accumulation order matches the serial path bit-for-bit), and every
simulated cost comes off the device's own virtual clock — never the
host's.  ``tests/test_fleet_parallel.py`` asserts report equality.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["WaveExecutor", "SerialWaveExecutor", "ParallelWaveExecutor"]

_Record = TypeVar("_Record")
_Outcome = TypeVar("_Outcome")

#: Called per device: (record, target_version) -> Optional[UpdateOutcome].
UpdateFn = Callable[[_Record, int], _Outcome]


class WaveExecutor:
    """Strategy interface: run one wave, return outcomes in wave order."""

    #: Optional :class:`~repro.obs.MetricsRegistry`: when set, each
    #: wave's *host* wall-clock (the executor's own cost, distinct from
    #: the devices' virtual time) is observed as
    #: ``executor.wave_host_seconds``.
    metrics = None
    #: Optional telemetry scrape hook, ``record -> None`` (set by the
    #: campaign when a :class:`~repro.obs.slo.FleetTelemetry` is
    #: attached).  Called once per device after its update finishes —
    #: a pure read of the device's metrics registry at its final
    #: virtual-clock time, so scraping never perturbs the simulation.
    #: The serial executor scrapes as it goes; the parallel executor
    #: scrapes post-merge in wave order, so both yield the same store.
    scrape = None

    def run_wave(self, update: UpdateFn, wave: Sequence[_Record],
                 target: int) -> List[_Outcome]:
        raise NotImplementedError

    def _scrape_wave(self, wave: Sequence[_Record]) -> None:
        if self.scrape is not None:
            for record in wave:
                self.scrape(record)

    def _observe_wave(self, host_seconds: float, devices: int) -> None:
        if self.metrics is None:
            return
        from ..obs.metrics import HOST_SECONDS_BUCKETS

        self.metrics.counter("executor.waves").inc()
        self.metrics.counter("executor.devices_driven").inc(devices)
        self.metrics.histogram("executor.wave_host_seconds",
                               HOST_SECONDS_BUCKETS).observe(host_seconds)


class SerialWaveExecutor(WaveExecutor):
    """One device after another on the calling thread (seed behaviour)."""

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics

    def run_wave(self, update: UpdateFn, wave: Sequence[_Record],
                 target: int) -> List[_Outcome]:
        start = time.perf_counter()
        outcomes = []
        for record in wave:
            outcomes.append(update(record, target))
            if self.scrape is not None:
                self.scrape(record)
        self._observe_wave(time.perf_counter() - start, len(wave))
        return outcomes


class ParallelWaveExecutor(WaveExecutor):
    """Thread-pool execution of a wave with chunked dispatch.

    ``max_workers`` bounds concurrency (default: CPU count, capped at
    16 — device updates are mostly interpreter-bound, so more threads
    only add contention).  ``chunk_size`` bounds how many device tasks
    are in flight at once, keeping memory flat on very large waves;
    it defaults to ``4 * max_workers``.

    Determinism: ``ThreadPoolExecutor.map`` yields results in
    submission order, each :class:`~repro.fleet.campaign.DeviceRecord`
    is owned by exactly one task, and shared components (the update
    server, the fast crypto engine's caches) take locks internally.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None, metrics=None) -> None:
        if max_workers is None:
            max_workers = min(16, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is None:
            chunk_size = 4 * max_workers
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.metrics = metrics

    def run_wave(self, update: UpdateFn, wave: Sequence[_Record],
                 target: int) -> List[_Outcome]:
        start_host = time.perf_counter()
        if len(wave) <= 1:
            results = [update(record, target) for record in wave]
            self._scrape_wave(wave)
            self._observe_wave(time.perf_counter() - start_host, len(wave))
            return results
        results: List[_Outcome] = []
        workers = min(self.max_workers, len(wave))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for start in range(0, len(wave), self.chunk_size):
                chunk = wave[start:start + self.chunk_size]
                results.extend(
                    pool.map(lambda record: update(record, target), chunk))
        # Scrape post-merge, in wave order: worker threads never touch
        # the shared time-series store, so it fills deterministically.
        self._scrape_wave(wave)
        self._observe_wave(time.perf_counter() - start_host, len(wave))
        return results
