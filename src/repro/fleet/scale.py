"""Fleet-scale campaigns: event-driven rollout over columnar state.

The hydrated :class:`~repro.fleet.campaign.Campaign` materialises one
:class:`~repro.sim.SimulatedDevice` per fleet member — ~33 KB per
sparse-flash pickle, ~33 GB for a million devices.  This module runs
the *same* rollout (same policies, same per-attempt driver, same
verdict sequence) with three structural changes:

* **Columnar membership** — the fleet is a
  :class:`~repro.fleet.columnar.ColumnarFleet`: one numpy row per
  device, ~100 bytes.  Devices hydrate only while actively updating.
* **Lazy materialisation by cohort** — devices identical except for
  identity share a cohort; one hydrated *representative* per cohort
  per wave runs the real protocol, and its outcome is replicated
  across the cohort's rows (sound because every modeled cost is a
  deterministic function of configuration + bytes, and the bytes are
  identity-independent: fixed-width manifests, deterministic RFC 6979
  signatures, shared payload).  Unique devices (links, interceptors)
  always hydrate individually.
* **Discrete events** — wave admission, per-attempt retry/backoff
  timers, and wave close-out are events on an
  :class:`~repro.fleet.scheduler.EventScheduler`; SLO and health
  evaluation run over columnar aggregates
  (:meth:`~repro.obs.slo.FleetTelemetry.close_wave_arrays`).

The crypto hot path is batched: the vendor signature over the
release's canonical manifest is verified once per wave through the
engine's shared :class:`~repro.crypto.engine.ContentVerifyCache`
(so: once per campaign), and "which rows now run the target image"
is one vectorised slot-digest comparison instead of a per-device
hash-and-compare.

**Parity contract** (enforced by ``tests/test_fleet_columnar.py``):
for any fleet whose devices the hydrated campaign could also run, the
:class:`ScaleReport` converts via :meth:`ScaleReport.to_campaign_report`
into a :class:`~repro.fleet.campaign.CampaignReport` that is
byte-identical to the hydrated path's, and per-device entries match
bit-for-bit.  Float aggregates therefore accumulate exactly as the
hydrated merge does: energy sums serially in wave order (never
``np.sum``, which pairs differently), durations take order-independent
maxima, and integer sums vectorise freely.

The one timeline subtlety: the hydrated campaign's
``wall_clock_seconds`` is the sum of per-wave maxima of the *final*
attempt's duration — backoff waits between attempts happen on each
device's own clock and are not part of the wave duration.  The event
scheduler runs the honest timeline (attempt + backoff + attempt), so a
wave's last retry can finish *after* ``admit + wave_duration``; the
close event is scheduled at ``max(now, admit + wave_duration)`` and
the report's wall clock uses the hydrated formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

try:  # pragma: no cover - exercised by the no-numpy fallback path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..core import UpdateServer
from ..crypto.ecdsa import Signature
from ..crypto.engine import FastEngine, get_engine
from ..faults.domains import DomainPlan
from ..net.link import BLE_GATT, COAP_6LOWPAN
from ..obs.health import WaveArrays
from ..obs.slo import Action, FleetTelemetry
from .campaign import (
    CampaignReport,
    DeviceRecord,
    DeviceState,
    RetryPolicy,
    RolloutPolicy,
    drive_attempt,
    finalize_failed,
    post_mortem_phases,
)
from .columnar import (
    CODE_STATES,
    ColumnarFleet,
    DeviceSpec,
    PHASE_ACTIVE,
    PHASE_DONE,
    STATE_CODES,
)
from .executor import SerialWaveExecutor, WaveExecutor
from .scheduler import Event, EventScheduler

__all__ = ["ScaleCampaign", "ScaleReport", "Hydrator"]

#: Builds one fully provisioned, baseline-version DeviceRecord from a
#: spec.  Must be deterministic, and must provision against a server
#: state where the *baseline* is the latest release (hydrating after
#: the target is published would factory-install the target).
Hydrator = Callable[[DeviceSpec], DeviceRecord]

_ADMIT = "admit-wave"
_ATTEMPT = "attempt"
_CLOSE = "close-wave"

_FAILED = STATE_CODES[DeviceState.FAILED]
_QUARANTINED = STATE_CODES[DeviceState.QUARANTINED]
_UPDATED = STATE_CODES[DeviceState.UPDATED]


@dataclass
class _CohortTask:
    """One hydrated representative working a wave on behalf of its
    cohort (for a unique device, a cohort of one)."""

    cohort: int
    representative: int            # global row index
    members: "object"              # global row indices, wave order
    record: DeviceRecord
    #: Virtual seconds since wave admission, summed across attempts
    #: and backoffs — the representative's own honest timeline.
    elapsed: float = 0.0
    done: bool = False


@dataclass
class _WaveState:
    index: int
    indices: "object"              # global row indices, wave order
    admit_time: float
    tasks: List[_CohortTask] = field(default_factory=list)
    open_tasks: int = 0


@dataclass
class ScaleReport:
    """Aggregate outcome of one columnar campaign.

    Holds counts, per-wave row-index arrays, and scalars — never
    per-device name lists (a million strings would defeat the columnar
    store).  Per-device detail is materialised on demand:
    :meth:`device_entry` for one row, :meth:`to_campaign_report` for a
    full hydrated-shape report (small fleets / parity tests).
    """

    target_version: int
    fleet: ColumnarFleet
    aborted: bool = False
    paused: bool = False
    #: Global row indices per executed wave, in wave order.
    wave_indices: List["object"] = field(default_factory=list)
    #: Per wave: global row indices the telemetry verdict re-filed
    #: from failed to quarantined, in verdict order.
    wave_requarantined: List[List[int]] = field(default_factory=list)
    slo_breaches: List[Dict[str, object]] = field(default_factory=list)
    retries: int = 0
    link_interruptions: int = 0
    total_bytes_over_air: int = 0
    total_energy_mj: float = 0.0
    wall_clock_seconds: float = 0.0
    #: Rows left pending by a PAUSE / skipped by an abort (fleet order).
    skipped_indices: "object" = None
    pending_indices: "object" = None
    #: How many devices were actually hydrated (the headline: stays at
    #: cohorts-per-wave, not fleet size).
    hydrations: int = 0
    events_processed: int = 0

    # -- counts ---------------------------------------------------------------

    def count(self, state: DeviceState) -> int:
        return self.fleet.count_state(state)

    @property
    def success_rate(self) -> float:
        done = (self.count(DeviceState.UPDATED)
                + self.count(DeviceState.FAILED)
                + self.count(DeviceState.QUARANTINED))
        return self.count(DeviceState.UPDATED) / done if done else 0.0

    # -- per-device materialisation ------------------------------------------

    def device_entry(self, index: int) -> Dict[str, object]:
        """One row's report entry, bit-identical to the hydrated
        path's :meth:`record_entry` for the same device."""
        row = self.fleet.rows[index]
        return {
            "name": self.fleet.name(index),
            "state": CODE_STATES[int(row["state"])].value,
            "attempts": int(row["attempts"]),
            "interruptions": int(row["interruptions"]),
            "installed_version": int(row["version"]),
            "update_seconds": float(row["update_seconds"]),
            "bytes_over_air": int(row["bytes_over_air"]),
            "energy_mj": float(row["energy_mj"]),
        }

    @staticmethod
    def record_entry(record: DeviceRecord) -> Dict[str, object]:
        """The same entry shape, read from a hydrated record (what the
        parity tests compare :meth:`device_entry` against)."""
        outcome = record.last_outcome
        return {
            "name": record.name,
            "state": record.state.value,
            "attempts": record.attempts,
            "interruptions": record.interruptions,
            "installed_version": record.device.installed_version(),
            "update_seconds": (outcome.total_seconds if outcome else 0.0),
            "bytes_over_air": (outcome.bytes_over_air if outcome else 0),
            "energy_mj": (outcome.total_energy_mj if outcome else 0.0),
        }

    def to_campaign_report(self) -> CampaignReport:
        """Materialise the hydrated-shape :class:`CampaignReport`.

        Reconstructs every name list in the exact order the hydrated
        campaign builds them: per-wave merge order for updated /
        failed / quarantined (with verdict re-filings appended after
        the wave's retry-quarantines, as ``_close_wave`` does), fleet
        order for skipped / pending.  Small fleets only — this builds
        one name string per device.
        """
        report = CampaignReport(target_version=self.target_version,
                                aborted=self.aborted, paused=self.paused)
        states = self.fleet.rows["state"]
        for wave_number, indices in enumerate(self.wave_indices):
            requarantined = (self.wave_requarantined[wave_number]
                             if wave_number < len(self.wave_requarantined)
                             else [])
            requar_set = set(requarantined)
            report.waves.append([self.fleet.name(int(i)) for i in indices])
            for i in indices:
                i = int(i)
                code = int(states[i])
                if code == _UPDATED:
                    report.updated.append(self.fleet.name(i))
                elif code == _QUARANTINED and i not in requar_set:
                    report.quarantined.append(self.fleet.name(i))
                elif code == _FAILED:
                    report.failed.append(self.fleet.name(i))
            report.quarantined.extend(self.fleet.name(i)
                                      for i in requarantined)
        if self.skipped_indices is not None:
            report.skipped = [self.fleet.name(int(i))
                              for i in self.skipped_indices]
        if self.pending_indices is not None:
            report.pending = [self.fleet.name(int(i))
                              for i in self.pending_indices]
        report.slo_breaches = list(self.slo_breaches)
        report.retries = self.retries
        report.link_interruptions = self.link_interruptions
        report.total_bytes_over_air = self.total_bytes_over_air
        report.total_energy_mj = self.total_energy_mj
        report.wall_clock_seconds = self.wall_clock_seconds
        return report

    def summary(self) -> Dict[str, object]:
        """JSON-ready scalars (what the bench artifact embeds)."""
        return {
            "devices": self.fleet.count,
            "cohorts": self.fleet.cohort_count,
            "waves": len(self.wave_indices),
            "updated": self.count(DeviceState.UPDATED),
            "failed": self.count(DeviceState.FAILED),
            "skipped": self.count(DeviceState.SKIPPED),
            "quarantined": self.count(DeviceState.QUARANTINED),
            "pending": self.count(DeviceState.PENDING),
            "aborted": self.aborted,
            "paused": self.paused,
            "success_rate": self.success_rate,
            "retries": self.retries,
            "link_interruptions": self.link_interruptions,
            "total_bytes_over_air": self.total_bytes_over_air,
            "total_energy_mj": self.total_energy_mj,
            "wall_clock_seconds": self.wall_clock_seconds,
            "hydrations": self.hydrations,
            "events_processed": self.events_processed,
            "columnar_bytes_per_row": self.fleet.bytes_per_row,
            "columnar_bytes_total": self.fleet.nbytes(),
        }


class ScaleCampaign:
    """Runs one release across a columnar fleet under a rollout policy.

    Same knobs as :class:`~repro.fleet.campaign.Campaign` — rollout
    policy, retry policy, wave executor, metrics, telemetry — plus the
    :data:`Hydrator` that turns a :class:`DeviceSpec` into a live,
    provisioned device when its cohort needs a representative.

    ``anchors`` (optional :class:`~repro.core.keys.TrustAnchors`)
    enables the once-per-wave batched vendor-signature check through
    the fast engine's content cache.
    """

    def __init__(self, server: UpdateServer, fleet: ColumnarFleet,
                 hydrator: Hydrator,
                 policy: Optional[RolloutPolicy] = None,
                 executor: Optional[WaveExecutor] = None,
                 retry: Optional[RetryPolicy] = None,
                 metrics=None,
                 telemetry: Optional[FleetTelemetry] = None,
                 anchors=None,
                 health_scores_in_report: bool = False,
                 domain_plan: Optional[DomainPlan] = None,
                 transfer_bytes: int = 0) -> None:
        if _np is None:
            raise RuntimeError(
                "ScaleCampaign requires numpy; use the hydrated Campaign")
        self.server = server
        self.fleet = fleet
        self.hydrator = hydrator
        self.policy = policy or RolloutPolicy()
        self.retry = retry
        self.executor = executor or SerialWaveExecutor()
        self.metrics = metrics
        self.telemetry = telemetry
        self.anchors = anchors
        self.health_scores_in_report = health_scores_in_report
        #: Optional correlated-fault plan: representatives of cohorts
        #: whose spec carries a ``domain`` get that domain's shared
        #: fault link at hydration (``transfer_bytes`` scales the byte
        #: coordinates; the wave's admit time selects active events).
        #: Domain membership is part of the cohort key, so replicated
        #: members would have met the identical link — correlation and
        #: cohort soundness agree by construction.
        self.domain_plan = domain_plan
        self.transfer_bytes = transfer_bytes
        self.scheduler = EventScheduler()
        self._wave_cap: Optional[int] = None
        self._report: Optional[ScaleReport] = None
        self._planned: List["object"] = []    # remaining wave slices
        self._rest: "object" = None
        self._wave_number = 0
        self._wave: Optional[_WaveState] = None
        self._stopped = False
        self._target = 0
        self._target_digest = b""
        self._vendor_digest = b""
        self._vendor_signature: Optional[Signature] = None

    # -- public entry ---------------------------------------------------------

    def run(self) -> ScaleReport:
        """Execute the rollout for the server's latest version."""
        self._target = self.server.latest_version
        digest, canonical, vendor_sig = \
            self.server.release_content(self._target)
        self._target_digest = digest
        self._vendor_digest = get_engine().sha256(canonical)
        self._vendor_signature = Signature.decode(vendor_sig)
        report = ScaleReport(target_version=self._target, fleet=self.fleet)
        self._report = report

        # Plan once, exactly like Campaign.waves(): canary slice of the
        # initially pending rows, then the rest (re-sliced per wave so
        # a SLOW cap takes effect mid-rollout).
        pending = self.fleet.pending_indices()
        if pending.size == 0:
            raise ValueError("campaign needs at least one pending device")
        canary_count = max(
            1, int(int(pending.size) * self.policy.canary_fraction))
        self._planned = [pending[:canary_count]]
        self._rest = pending[canary_count:]
        self._wave_number = 0
        self._stopped = False
        self._wave_cap = None

        self.scheduler.at(self.scheduler.now, _ADMIT)
        self.scheduler.run(self._handle)
        report.events_processed = self.scheduler.processed

        if report.aborted:
            skipped = self.fleet.pending_indices()
            self.fleet.set_states(skipped, DeviceState.SKIPPED)
            report.skipped_indices = skipped
        elif report.paused:
            report.pending_indices = self.fleet.pending_indices()
        return report

    # -- event handlers -------------------------------------------------------

    def _handle(self, event: Event) -> None:
        if event.kind == _ADMIT:
            self._admit_wave()
        elif event.kind == _ATTEMPT:
            task: _CohortTask = event.payload
            outcome = drive_attempt(self.server, task.record, self._target,
                                    self._transport_retry())
            self._after_attempt(task, outcome)
        elif event.kind == _CLOSE:
            self._close_wave()
        else:  # pragma: no cover - defensive
            raise ValueError("unknown event kind %r" % event.kind)

    def _next_wave_slice(self) -> Optional["object"]:
        if self._planned:
            return self._planned.pop(0)
        if self._rest is None or self._rest.size == 0:
            return None
        size = int(self._rest.size) if self._wave_cap is None \
            else max(1, min(int(self._rest.size), self._wave_cap))
        wave, self._rest = self._rest[:size], self._rest[size:]
        return wave

    def _admit_wave(self) -> None:
        indices = self._next_wave_slice()
        if indices is None or indices.size == 0:
            return
        self._verify_release_batched()
        wave = _WaveState(index=self._wave_number, indices=indices,
                          admit_time=self.scheduler.now)
        self._wave_number += 1
        self._wave = wave
        self.fleet.rows["phase"][indices] = PHASE_ACTIVE
        self.fleet.rows["next_event"][indices] = wave.admit_time
        self._report.wave_indices.append(indices)

        # One task per cohort, in first-appearance (wave) order.
        cohorts = self.fleet.rows["cohort"][indices]
        unique, first = _np.unique(cohorts, return_index=True)
        for position in _np.sort(first):
            cohort = int(cohorts[position])
            members = indices[cohorts == cohort]
            representative = int(members[0])
            spec = self.fleet.spec(representative)
            record = self.hydrator(spec)
            self._report.hydrations += 1
            if self.domain_plan is not None \
                    and getattr(spec, "domain", None) is not None:
                link = self.domain_plan.link_for(
                    self.domain_plan.position_of(spec.domain),
                    max(1, self.transfer_bytes),
                    profile=(BLE_GATT if spec.transport == "push"
                             else COAP_6LOWPAN),
                    at_time=wave.admit_time)
                if link is not None:
                    record.link = link
            wave.tasks.append(_CohortTask(
                cohort=cohort, representative=representative,
                members=members, record=record))
        wave.open_tasks = len(wave.tasks)

        # First attempts fan out through the wave executor.  A closure
        # (no ``__self__``) keeps the process-pool executor on its
        # in-process fallback: representatives carry live device state
        # the campaign folds back, which must not fork away.
        server, transport_retry = self.server, self._transport_retry()

        def first_attempt(record: DeviceRecord, target: int):
            return drive_attempt(server, record, target, transport_retry)

        records = [task.record for task in wave.tasks]
        outcomes = self.executor.run_wave(first_attempt, records,
                                          self._target)
        for task, outcome in zip(wave.tasks, outcomes):
            self._after_attempt(task, outcome)

    def _after_attempt(self, task: _CohortTask, outcome) -> None:
        record = task.record
        task.elapsed += outcome.total_seconds
        budget = (self.retry.max_attempts if self.retry is not None
                  else self.policy.max_attempts)
        if record.state is DeviceState.UPDATED:
            self._finish_task(task)
        elif record.attempts < budget:
            if self.retry is not None:
                # Same clock discipline as Campaign._update_device:
                # wait out the backoff on the device's own clock, then
                # try again — here as a scheduled event on the honest
                # timeline rather than an inline loop.
                delay = self.retry.delay(record.attempts, record.name)
                record.device.clock.advance(delay, "backoff")
                task.elapsed += delay
            self.scheduler.at(self._wave.admit_time + task.elapsed,
                              _ATTEMPT, task)
        else:
            finalize_failed(record, self.retry)
            self._finish_task(task)

    def _finish_task(self, task: _CohortTask) -> None:
        task.done = True
        wave = self._wave
        wave.open_tasks -= 1
        if wave.open_tasks:
            return
        # Campaign's wave duration: max over devices of the *final*
        # attempt's duration (retry backoffs live on device clocks, not
        # the wave).  Retries may have pushed `now` past it, so close
        # at whichever is later.
        duration = max(task.record.last_outcome.total_seconds
                       for task in wave.tasks)
        self.scheduler.at(max(self.scheduler.now,
                              wave.admit_time + duration), _CLOSE)

    def _close_wave(self) -> None:
        wave, report = self._wave, self._report
        indices = wave.indices
        rows = self.fleet.rows

        # Fold representatives, replicate their outcome templates
        # across each cohort's rows (vectorised column writes).
        for task in wave.tasks:
            outcome = task.record.last_outcome
            self.fleet.fold(task.representative, task.record, outcome)
            others = task.members[task.members != task.representative]
            if others.size:
                self.fleet.replicate(others, {
                    "state": STATE_CODES[task.record.state],
                    "attempts": task.record.attempts,
                    "interruptions": task.record.interruptions,
                    "phase": PHASE_DONE,
                    "version": task.record.device.installed_version(),
                    "update_seconds": outcome.total_seconds,
                    "bytes_over_air": outcome.bytes_over_air,
                    "energy_mj": outcome.total_energy_mj,
                })
        rows["next_event"][indices] = self.scheduler.now

        # Batched digest path: stamp the target digest on every row
        # that updated, then check the whole fleet in one vectorised
        # comparison — exactly the rows that updated (ever) match.
        updated_rows = indices[rows["state"][indices] == _UPDATED]
        if updated_rows.size:
            self.fleet.stamp_digest(updated_rows, self._target_digest)
            matches = self.fleet.digest_matches(self._target_digest)
            if not bool(matches[updated_rows].all()):  # pragma: no cover
                raise AssertionError(
                    "updated rows missing the target slot digest")

        # Merge aggregates with the hydrated campaign's float
        # semantics: ints vectorise, energy accumulates serially in
        # wave order, duration is an order-independent max.
        wave_states = rows["state"][indices]
        failures = int((wave_states == _FAILED).sum())
        report.total_bytes_over_air += int(
            rows["bytes_over_air"][indices].sum(dtype=_np.uint64))
        for energy in rows["energy_mj"][indices].tolist():
            report.total_energy_mj += energy
        wave_duration = float(rows["update_seconds"][indices].max())
        attempts = rows["attempts"][indices].astype(_np.int64)
        report.retries += int(_np.maximum(0, attempts - 1).sum())
        report.link_interruptions += int(
            rows["interruptions"][indices].sum(dtype=_np.int64))
        report.wall_clock_seconds += wave_duration
        if self.metrics is not None:
            self._observe_wave(indices, failures, wave_duration)

        verdict = None
        if self.telemetry is not None:
            verdict, failures = self._close_wave_telemetry(
                wave, indices, failures)

        if failures / int(indices.size) >= self.policy.abort_failure_rate:
            report.aborted = True
            return
        if verdict is not None:
            if verdict.action is Action.ABORT:
                report.aborted = True
                return
            if verdict.action is Action.PAUSE:
                report.paused = True
                return
            if verdict.action is Action.SLOW:
                remaining = self.fleet.count_state(DeviceState.PENDING)
                halved = max(1, remaining // 2)
                self._wave_cap = halved if self._wave_cap is None \
                    else max(1, min(self._wave_cap, halved))
        self.scheduler.at(self.scheduler.now, _ADMIT)

    # -- telemetry ------------------------------------------------------------

    def _close_wave_telemetry(self, wave: _WaveState, indices,
                              failures: int):
        """Columnar twin of ``Campaign._close_wave``: scrape hydrated
        representatives, evaluate health + SLOs over the wave's
        columns, re-file verdict-quarantined rows, fold scores into
        the health column."""
        rows = self.fleet.rows
        for task in wave.tasks:
            self.telemetry.scrape_record(task.record)
        phase_map: Dict[int, Dict[str, int]] = {}
        position_of = {int(g): p for p, g in enumerate(indices)}
        for task in wave.tasks:
            phases = post_mortem_phases(task.record)
            if not phases:
                continue
            # Replicated members would have produced the identical
            # post-mortem (cohorts share every modeled cost), so the
            # sparse map covers the whole cohort.
            for member in task.members:
                phase_map[position_of[int(member)]] = dict(phases)
        fleet = self.fleet
        arrays = WaveArrays(
            wave=wave.index,
            name_fn=lambda position: fleet.name(int(indices[position])),
            states=rows["state"][indices].copy(),
            update_seconds=rows["update_seconds"][indices],
            bytes_over_air=rows["bytes_over_air"][indices],
            energy_mj=rows["energy_mj"][indices],
            interruptions=rows["interruptions"][indices],
            attempts=rows["attempts"][indices],
            interrupted_phases=phase_map,
        )
        pre_states = arrays.states.copy()
        verdict, columnar = self.telemetry.close_wave_arrays(
            arrays, t=self._report.wall_clock_seconds,
            with_scores=self.health_scores_in_report)
        requarantined = _np.flatnonzero(
            (pre_states == _FAILED) & (arrays.states == _QUARANTINED))
        rows["state"][indices] = arrays.states
        rows["health"][indices] = columnar.scores
        self._report.wave_requarantined.append(
            [int(indices[position]) for position in requarantined])
        self._report.slo_breaches.extend(
            breach.to_dict() for breach in verdict.breaches)
        return verdict, failures - len(verdict.quarantine)

    # -- helpers --------------------------------------------------------------

    def _transport_retry(self):
        return self.retry.transport_retry if self.retry is not None \
            else None

    def _verify_release_batched(self) -> None:
        """Verify the vendor signature once per wave admission.

        Through the fast engine's (key, digest) content cache the
        scalar math runs once per *campaign*; each device's own
        in-pipeline verification then hits the engine's signature LRU.
        Without anchors (or on the reference engine) this is a plain
        per-wave verify — still one per wave, not one per device.
        """
        if self.anchors is None:
            return
        signature = self._vendor_signature
        engine = get_engine()
        if isinstance(engine, FastEngine):
            ok = engine.verify_content(self.anchors.vendor.point,
                                       signature.r, signature.s,
                                       self._vendor_digest)
        else:
            ok = self.anchors.vendor.verify_digest(signature,
                                                   self._vendor_digest)
        if not ok:
            raise AssertionError(
                "vendor signature failed batched verification for "
                "version %d" % self._target)

    def _observe_wave(self, indices, failures: int,
                      wave_duration: float) -> None:
        from ..obs.metrics import WAVE_SECONDS_BUCKETS

        updated = int((self.fleet.rows["state"][indices]
                       == _UPDATED).sum())
        self.metrics.counter("campaign.waves").inc()
        self.metrics.counter("campaign.devices_updated").inc(updated)
        self.metrics.counter("campaign.devices_failed").inc(failures)
        self.metrics.histogram("campaign.wave_seconds",
                               WAVE_SECONDS_BUCKETS).observe(wave_duration)


#: Backwards-compatible alias; the helper now lives in
#: :mod:`repro.fleet.campaign` so both campaign flavours (and the
#: campaign journal) share one definition.
_post_mortem_phases = post_mortem_phases
