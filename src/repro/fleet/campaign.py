"""Fleet update campaigns: staged rollout over many devices.

The paper's deployment story — billions of heterogeneous devices,
updated regularly — implies a *campaign* layer above the per-device
protocol: release to a canary subset first, watch the failure rate,
abort before a bad update bricks the fleet, retry devices with flaky
links.  This module provides that layer on top of the per-device
transports, with deterministic ordering so campaigns are reproducible.

The per-device flow is unchanged UpKit (token → double-signed image →
early verification → reboot); the campaign only decides *who updates
when* and interprets the outcomes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import UpdateServer
from ..net import PullTransport, PushTransport, UpdateOutcome
from ..net.transports import Interceptor
from ..sim.device import SimulatedDevice
from .executor import SerialWaveExecutor, WaveExecutor

__all__ = ["DeviceRecord", "DeviceState", "RolloutPolicy",
           "CampaignReport", "Campaign"]


class DeviceState(enum.Enum):
    """Where one device stands within a campaign."""

    PENDING = "pending"
    UPDATED = "updated"
    FAILED = "failed"
    SKIPPED = "skipped"   # campaign aborted before this device's turn


@dataclass
class DeviceRecord:
    """One fleet member and its campaign status."""

    name: str
    device: SimulatedDevice
    transport: str = "pull"            # "push" or "pull"
    interceptor: Optional[Interceptor] = None  # per-device link condition
    state: DeviceState = DeviceState.PENDING
    attempts: int = 0
    last_outcome: Optional[UpdateOutcome] = None

    def __post_init__(self) -> None:
        if self.transport not in ("push", "pull"):
            raise ValueError("transport must be 'push' or 'pull'")


@dataclass(frozen=True)
class RolloutPolicy:
    """Knobs of a staged rollout."""

    canary_fraction: float = 0.1     # fraction updated in the first wave
    abort_failure_rate: float = 0.34  # abort when a wave fails this much
    max_attempts: int = 2            # per-device retries on failure

    def __post_init__(self) -> None:
        if not (0.0 < self.canary_fraction <= 1.0):
            raise ValueError("canary_fraction must be in (0, 1]")
        if not (0.0 < self.abort_failure_rate <= 1.0):
            raise ValueError("abort_failure_rate must be in (0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run."""

    target_version: int
    aborted: bool
    waves: List[List[str]] = field(default_factory=list)
    updated: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    total_bytes_over_air: int = 0
    total_energy_mj: float = 0.0
    #: Modeled campaign wall-clock: devices within a wave update in
    #: parallel (each against its own radio), waves run back-to-back.
    wall_clock_seconds: float = 0.0

    @property
    def success_rate(self) -> float:
        done = len(self.updated) + len(self.failed)
        return len(self.updated) / done if done else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary for dashboards and CI artifacts."""
        return {
            "target_version": self.target_version,
            "aborted": self.aborted,
            "waves": self.waves,
            "updated": self.updated,
            "failed": self.failed,
            "skipped": self.skipped,
            "success_rate": self.success_rate,
            "total_bytes_over_air": self.total_bytes_over_air,
            "total_energy_mj": self.total_energy_mj,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


class Campaign:
    """Runs one release across a fleet under a rollout policy."""

    def __init__(self, server: UpdateServer, fleet: List[DeviceRecord],
                 policy: Optional[RolloutPolicy] = None,
                 executor: Optional[WaveExecutor] = None) -> None:
        if not fleet:
            raise ValueError("campaign needs at least one device")
        names = [record.name for record in fleet]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device names: %r" % names)
        self.server = server
        self.fleet = list(fleet)
        self.policy = policy or RolloutPolicy()
        #: How each wave's devices are driven.  The serial executor is
        #: the default; pass a
        #: :class:`~repro.fleet.executor.ParallelWaveExecutor` to run a
        #: wave on a thread pool.  Either way the report is identical.
        self.executor = executor or SerialWaveExecutor()

    # -- planning -----------------------------------------------------------

    def waves(self) -> List[List[DeviceRecord]]:
        """Canary wave first, then everyone else (stable order)."""
        pending = [record for record in self.fleet
                   if record.state is DeviceState.PENDING]
        canary_count = max(1, int(len(pending)
                                  * self.policy.canary_fraction))
        return [pending[:canary_count], pending[canary_count:]]

    # -- execution ------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Execute the rollout for the server's latest version."""
        target = self.server.latest_version
        report = CampaignReport(target_version=target, aborted=False)

        for wave in self.waves():
            if not wave:
                continue
            report.waves.append([record.name for record in wave])
            failures = 0
            wave_duration = 0.0
            outcomes = self.executor.run_wave(self._update_device, wave,
                                              target)
            # Merge strictly in wave order so aggregates (including the
            # float energy sum) match the serial path bit-for-bit no
            # matter which executor ran the wave.
            for record, outcome in zip(wave, outcomes):
                if outcome is not None:
                    report.total_bytes_over_air += outcome.bytes_over_air
                    report.total_energy_mj += outcome.total_energy_mj
                    wave_duration = max(wave_duration,
                                        outcome.total_seconds)
                if record.state is DeviceState.UPDATED:
                    report.updated.append(record.name)
                else:
                    report.failed.append(record.name)
                    failures += 1
            report.wall_clock_seconds += wave_duration
            if failures / len(wave) >= self.policy.abort_failure_rate:
                report.aborted = True
                break

        if report.aborted:
            for record in self.fleet:
                if record.state is DeviceState.PENDING:
                    record.state = DeviceState.SKIPPED
                    report.skipped.append(record.name)
        return report

    def _update_device(self, record: DeviceRecord,
                       target: int) -> Optional[UpdateOutcome]:
        last: Optional[UpdateOutcome] = None
        for _ in range(self.policy.max_attempts):
            record.attempts += 1
            transport = self._transport_for(record)
            last = transport.run_update()
            record.last_outcome = last
            if last.success and last.booted_version == target:
                record.state = DeviceState.UPDATED
                return last
        record.state = DeviceState.FAILED
        return last

    def _transport_for(self, record: DeviceRecord):
        cls = PushTransport if record.transport == "push" else PullTransport
        return cls(record.device, self.server,
                   interceptor=record.interceptor)

    # -- introspection -----------------------------------------------------------

    def states(self) -> Dict[str, DeviceState]:
        return {record.name: record.state for record in self.fleet}
