"""Fleet update campaigns: staged rollout over many devices.

The paper's deployment story — billions of heterogeneous devices,
updated regularly — implies a *campaign* layer above the per-device
protocol: release to a canary subset first, watch the failure rate,
abort before a bad update bricks the fleet, retry devices with flaky
links.  This module provides that layer on top of the per-device
transports, with deterministic ordering so campaigns are reproducible.

The per-device flow is unchanged UpKit (token → double-signed image →
early verification → reboot); the campaign only decides *who updates
when* and interprets the outcomes.
"""

from __future__ import annotations

import enum
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import UpdateServer
from ..net import Link, PullTransport, PushTransport, UpdateOutcome
from ..net.transports import Interceptor, TransportRetryPolicy
from ..obs.slo import Action, FleetTelemetry, WaveVerdict
from ..sim.device import SimulatedDevice
from .executor import SerialWaveExecutor, WaveExecutor

__all__ = ["DeviceRecord", "DeviceState", "RolloutPolicy", "RetryPolicy",
           "CampaignReport", "Campaign", "transport_for", "drive_attempt",
           "finalize_failed"]


class DeviceState(enum.Enum):
    """Where one device stands within a campaign."""

    PENDING = "pending"
    UPDATED = "updated"
    FAILED = "failed"
    SKIPPED = "skipped"   # campaign aborted before this device's turn
    QUARANTINED = "quarantined"  # exhausted its retry budget; flagged for
    #                              manual follow-up, excluded from the
    #                              wave failure-rate abort computation


@dataclass
class DeviceRecord:
    """One fleet member and its campaign status."""

    name: str
    device: SimulatedDevice
    transport: str = "pull"            # "push" or "pull"
    interceptor: Optional[Interceptor] = None  # per-device link condition
    #: Per-device link instance (loss rate, outage schedule).  Reused
    #: across attempts so an outage survived on attempt 1 stays survived
    #: — this is what lets flaky-link devices converge under retry.
    link: Optional[Link] = None
    #: Host wall-clock latency per request round-trip, forwarded to
    #: this device's transports (the bench harness's I/O profile).
    #: Sleeps never touch the virtual clock, so reports are identical
    #: at any value.
    host_rtt_seconds: float = 0.0
    state: DeviceState = DeviceState.PENDING
    attempts: int = 0
    #: Transport-level interruptions summed over every attempt (the
    #: last outcome alone would hide outages survived on earlier tries).
    interruptions: int = 0
    last_outcome: Optional[UpdateOutcome] = None

    def __post_init__(self) -> None:
        if self.transport not in ("push", "pull"):
            raise ValueError("transport must be 'push' or 'pull'")


@dataclass(frozen=True)
class RolloutPolicy:
    """Knobs of a staged rollout."""

    canary_fraction: float = 0.1     # fraction updated in the first wave
    abort_failure_rate: float = 0.34  # abort when a wave fails this much
    max_attempts: int = 2            # per-device retries on failure

    def __post_init__(self) -> None:
        if not (0.0 < self.canary_fraction <= 1.0):
            raise ValueError("canary_fraction must be in (0, 1]")
        if not (0.0 < self.abort_failure_rate <= 1.0):
            raise ValueError("abort_failure_rate must be in (0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


@dataclass(frozen=True)
class RetryPolicy:
    """Campaign-level retry schedule for flaky-link devices.

    Between attempts the device waits out an exponential backoff with
    deterministic per-device jitter (derived from the device *name*, so
    reports replay exactly); after ``quarantine_after`` failed attempts
    the device is :attr:`~DeviceState.QUARANTINED` instead of merely
    failed — flagged for manual follow-up and excluded from the wave
    failure-rate that can abort the campaign, so one bad radio does not
    cancel a fleet-wide rollout.
    """

    max_attempts: int = 3
    backoff_initial: float = 5.0
    backoff_factor: float = 2.0
    backoff_max: float = 300.0
    jitter: float = 0.1
    quarantine_after: Optional[int] = None
    seed: int = 0
    #: Transport-layer resume policy handed to every per-attempt
    #: transport (None keeps transports non-resuming).
    transport_retry: Optional[TransportRetryPolicy] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")

    def delay(self, attempt: int, device_name: str) -> float:
        """Backoff after ``attempt`` failures (1-based), jittered
        deterministically per device name."""
        base = min(self.backoff_max,
                   self.backoff_initial
                   * self.backoff_factor ** (attempt - 1))
        if self.jitter:
            mix = (self.seed
                   ^ zlib.crc32(device_name.encode("utf-8"))
                   ^ (attempt * 0x9E3779B9))
            rng = random.Random(mix)
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run."""

    target_version: int
    aborted: bool
    #: True when an SLO breach *paused* the rollout: remaining devices
    #: stay :attr:`~DeviceState.PENDING` (listed in :attr:`pending`)
    #: for an operator decision, unlike an abort's hard skip.
    paused: bool = False
    waves: List[List[str]] = field(default_factory=list)
    updated: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    #: Devices left pending by a PAUSE verdict.
    pending: List[str] = field(default_factory=list)
    #: SLO breach dicts, in the order the telemetry plane raised them
    #: (empty when no telemetry is attached or nothing breached).
    slo_breaches: List[Dict[str, object]] = field(default_factory=list)
    #: Attempts beyond the first, summed over the fleet.
    retries: int = 0
    #: Transport-level interruption events observed fleet-wide (most
    #: survived via resume; the rest ended in abandonment).
    link_interruptions: int = 0
    total_bytes_over_air: int = 0
    total_energy_mj: float = 0.0
    #: Modeled campaign wall-clock: devices within a wave update in
    #: parallel (each against its own radio), waves run back-to-back.
    wall_clock_seconds: float = 0.0

    @property
    def success_rate(self) -> float:
        done = (len(self.updated) + len(self.failed)
                + len(self.quarantined))
        return len(self.updated) / done if done else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary for dashboards and CI artifacts."""
        return {
            "target_version": self.target_version,
            "aborted": self.aborted,
            "paused": self.paused,
            "waves": self.waves,
            "updated": self.updated,
            "failed": self.failed,
            "skipped": self.skipped,
            "quarantined": self.quarantined,
            "pending": self.pending,
            "slo_breaches": self.slo_breaches,
            "retries": self.retries,
            "link_interruptions": self.link_interruptions,
            "success_rate": self.success_rate,
            "total_bytes_over_air": self.total_bytes_over_air,
            "total_energy_mj": self.total_energy_mj,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


# -- the per-device driver ----------------------------------------------------
#
# One attempt of one device is the unit both campaign flavours share:
# the hydrated `Campaign` loops attempts back-to-back inside
# `_update_device`, while the columnar `ScaleCampaign` replays the same
# sequence from discrete retry events.  Keeping the body here (and
# calling it from both) is what makes the two paths byte-identical.


def transport_for(record: DeviceRecord, server: UpdateServer,
                  transport_retry: Optional[TransportRetryPolicy] = None):
    """Build the per-attempt transport exactly as a campaign would."""
    cls = PushTransport if record.transport == "push" else PullTransport
    return cls(record.device, server,
               interceptor=record.interceptor,
               link=record.link, retry=transport_retry,
               host_rtt_seconds=record.host_rtt_seconds)


def drive_attempt(server: UpdateServer, record: DeviceRecord, target: int,
                  transport_retry: Optional[TransportRetryPolicy] = None
                  ) -> UpdateOutcome:
    """Run exactly one update attempt, mutating the record in place.

    Sets :attr:`DeviceRecord.state` to ``UPDATED`` on success; a failed
    attempt leaves the state untouched so the caller decides between a
    retry, :func:`finalize_failed`, or its own policy.
    """
    record.attempts += 1
    transport = transport_for(record, server, transport_retry)
    outcome = transport.run_update()
    record.last_outcome = outcome
    record.interruptions += outcome.interruptions
    if outcome.success and outcome.booted_version == target:
        record.state = DeviceState.UPDATED
    return outcome


def finalize_failed(record: DeviceRecord,
                    retry: Optional[RetryPolicy]) -> None:
    """Close out a device whose retry budget is exhausted."""
    if (retry is not None
            and retry.quarantine_after is not None
            and record.attempts >= retry.quarantine_after):
        record.state = DeviceState.QUARANTINED
    else:
        record.state = DeviceState.FAILED


class Campaign:
    """Runs one release across a fleet under a rollout policy."""

    def __init__(self, server: UpdateServer, fleet: List[DeviceRecord],
                 policy: Optional[RolloutPolicy] = None,
                 executor: Optional[WaveExecutor] = None,
                 retry: Optional[RetryPolicy] = None,
                 metrics=None,
                 telemetry: Optional[FleetTelemetry] = None) -> None:
        if not fleet:
            raise ValueError("campaign needs at least one device")
        names = [record.name for record in fleet]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device names: %r" % names)
        self.server = server
        self.fleet = list(fleet)
        self.policy = policy or RolloutPolicy()
        #: Retry schedule between per-device attempts.  None preserves
        #: the legacy behaviour: ``policy.max_attempts`` back-to-back
        #: tries, no backoff, no quarantine.
        self.retry = retry
        #: How each wave's devices are driven.  The serial executor is
        #: the default; pass a
        #: :class:`~repro.fleet.executor.ParallelWaveExecutor` to run a
        #: wave on a thread pool.  Either way the report is identical.
        self.executor = executor or SerialWaveExecutor()
        #: Optional :class:`~repro.obs.MetricsRegistry` observing
        #: per-wave timings and outcome counters.  Purely additive: the
        #: :class:`CampaignReport` stays bit-identical with or without
        #: a registry attached.
        self.metrics = metrics
        #: Optional :class:`~repro.obs.slo.FleetTelemetry`.  When
        #: attached, the executor scrapes every device's registry as it
        #: finishes, each wave closes with a health + SLO verdict, and
        #: breaches steer the rollout (slow / pause / abort) — see
        #: :meth:`run`.  Scrapes and analysis are pure reads of already
        #: -spent virtual time, so a telemetry-on campaign with no
        #: breach produces a byte-identical report to a telemetry-off
        #: one.
        self.telemetry = telemetry
        if telemetry is not None:
            self.executor.scrape = telemetry.scrape_record
        #: Wave-size cap installed by a SLOW verdict (None = no cap).
        self._wave_cap: Optional[int] = None

    # -- planning -----------------------------------------------------------

    def waves(self) -> List[List[DeviceRecord]]:
        """Canary wave first, then everyone else (stable order)."""
        pending = [record for record in self.fleet
                   if record.state is DeviceState.PENDING]
        canary_count = max(1, int(len(pending)
                                  * self.policy.canary_fraction))
        return [pending[:canary_count], pending[canary_count:]]

    def _plan_waves(self):
        """Yield waves one at a time, honouring any SLOW wave cap.

        With no cap this generates exactly :meth:`waves` — canary,
        then the whole rest — so a telemetry-free (or breach-free)
        campaign runs the same waves it always has.  A SLOW verdict
        installs ``self._wave_cap``, after which the rest rolls out in
        capped slices (blast-radius control without stopping).
        """
        canary, rest = self.waves()
        yield canary
        while rest:
            size = len(rest) if self._wave_cap is None \
                else max(1, min(len(rest), self._wave_cap))
            yield rest[:size]
            rest = rest[size:]

    # -- execution ------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Execute the rollout for the server's latest version.

        With a :attr:`telemetry` plane attached, each finished wave is
        closed out with a :class:`~repro.obs.slo.WaveVerdict` before
        the abort check: verdict-quarantined devices are re-filed from
        failed to quarantined (and removed from the failure count — no
        double-counting), then the verdict's action steers the rollout:
        ``SLOW`` halves subsequent waves, ``PAUSE`` stops with the
        remainder left pending, ``ABORT`` cancels like a failure-rate
        abort.
        """
        target = self.server.latest_version
        report = CampaignReport(target_version=target, aborted=False)

        for wave_index, wave in enumerate(self._plan_waves()):
            if not wave:
                continue
            report.waves.append([record.name for record in wave])
            failures = 0
            wave_duration = 0.0
            outcomes = self.executor.run_wave(self._update_device, wave,
                                              target)
            # Merge strictly in wave order so aggregates (including the
            # float energy sum) match the serial path bit-for-bit no
            # matter which executor ran the wave.
            for record, outcome in zip(wave, outcomes):
                if outcome is not None:
                    report.total_bytes_over_air += outcome.bytes_over_air
                    report.total_energy_mj += outcome.total_energy_mj
                    wave_duration = max(wave_duration,
                                        outcome.total_seconds)
                report.retries += max(0, record.attempts - 1)
                report.link_interruptions += record.interruptions
                if record.state is DeviceState.UPDATED:
                    report.updated.append(record.name)
                elif record.state is DeviceState.QUARANTINED:
                    # Quarantined devices are flagged for follow-up but
                    # do not count toward the abort threshold: one dead
                    # radio must not cancel the rollout for everyone.
                    report.quarantined.append(record.name)
                else:
                    report.failed.append(record.name)
                    failures += 1
            report.wall_clock_seconds += wave_duration
            if self.metrics is not None:
                self._observe_wave(wave, failures, wave_duration)

            verdict = None
            if self.telemetry is not None:
                verdict = self._close_wave(wave, wave_index, report)
                failures -= len(verdict.quarantine)

            if failures / len(wave) >= self.policy.abort_failure_rate:
                report.aborted = True
                break
            if verdict is not None:
                if verdict.action is Action.ABORT:
                    report.aborted = True
                    break
                if verdict.action is Action.PAUSE:
                    report.paused = True
                    break
                if verdict.action is Action.SLOW:
                    remaining = sum(
                        1 for record in self.fleet
                        if record.state is DeviceState.PENDING)
                    halved = max(1, remaining // 2)
                    self._wave_cap = halved if self._wave_cap is None \
                        else max(1, min(self._wave_cap, halved))

        if report.aborted:
            for record in self.fleet:
                if record.state is DeviceState.PENDING:
                    record.state = DeviceState.SKIPPED
                    report.skipped.append(record.name)
        elif report.paused:
            # A pause leaves the remainder PENDING: an operator can
            # resume by running the campaign again (waves() replans
            # over whatever is still pending).
            report.pending = [record.name for record in self.fleet
                              if record.state is DeviceState.PENDING]
        return report

    def _close_wave(self, wave: List[DeviceRecord], wave_index: int,
                    report: CampaignReport) -> WaveVerdict:
        """Feed the wave to the telemetry plane and apply its verdict's
        quarantine list (re-filing those devices out of ``failed``)."""
        for record in wave:
            self.telemetry.observe_device(record, wave_index)
        verdict = self.telemetry.close_wave(
            wave_index, t=report.wall_clock_seconds)
        for name in verdict.quarantine:
            record = next(r for r in wave if r.name == name)
            record.state = DeviceState.QUARANTINED
            report.failed.remove(name)
            report.quarantined.append(name)
        report.slo_breaches.extend(breach.to_dict()
                                   for breach in verdict.breaches)
        return verdict

    def _observe_wave(self, wave: List[DeviceRecord], failures: int,
                      wave_duration: float) -> None:
        from ..obs.metrics import WAVE_SECONDS_BUCKETS

        self.metrics.counter("campaign.waves").inc()
        self.metrics.counter("campaign.devices_updated").inc(
            sum(1 for record in wave
                if record.state is DeviceState.UPDATED))
        self.metrics.counter("campaign.devices_failed").inc(failures)
        self.metrics.histogram("campaign.wave_seconds",
                               WAVE_SECONDS_BUCKETS).observe(wave_duration)

    def _update_device(self, record: DeviceRecord,
                       target: int) -> Optional[UpdateOutcome]:
        attempts = (self.retry.max_attempts if self.retry is not None
                    else self.policy.max_attempts)
        transport_retry = (self.retry.transport_retry
                           if self.retry is not None else None)
        last: Optional[UpdateOutcome] = None
        for attempt in range(1, attempts + 1):
            last = drive_attempt(self.server, record, target,
                                 transport_retry)
            if record.state is DeviceState.UPDATED:
                return last
            if self.retry is not None and attempt < attempts:
                # Wait out the (virtual) backoff on the device's own
                # clock before the next attempt.
                record.device.clock.advance(
                    self.retry.delay(attempt, record.name), "backoff")
        finalize_failed(record, self.retry)
        return last

    # -- introspection -----------------------------------------------------------

    def states(self) -> Dict[str, DeviceState]:
        return {record.name: record.state for record in self.fleet}
