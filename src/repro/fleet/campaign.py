"""Fleet update campaigns: staged rollout over many devices.

The paper's deployment story — billions of heterogeneous devices,
updated regularly — implies a *campaign* layer above the per-device
protocol: release to a canary subset first, watch the failure rate,
abort before a bad update bricks the fleet, retry devices with flaky
links.  This module provides that layer on top of the per-device
transports, with deterministic ordering so campaigns are reproducible.

The per-device flow is unchanged UpKit (token → double-signed image →
early verification → reboot); the campaign only decides *who updates
when* and interprets the outcomes.
"""

from __future__ import annotations

import enum
import hashlib
import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core import UpdateServer
from ..net import Link, PullTransport, PushTransport, UpdateOutcome
from ..net.transports import Interceptor, TransportRetryPolicy
from ..obs.health import DeviceSample
from ..obs.slo import Action, FleetTelemetry, WaveVerdict
from ..sim.device import SimulatedDevice
from .budget import CAUTION_TRANSPORT_RETRY, RetryGovernor
from .executor import SerialWaveExecutor, WaveExecutor
from .journal import CampaignJournal

__all__ = ["DeviceRecord", "DeviceState", "RolloutPolicy", "RetryPolicy",
           "CampaignReport", "Campaign", "transport_for", "drive_attempt",
           "finalize_failed", "post_mortem_phases"]


class DeviceState(enum.Enum):
    """Where one device stands within a campaign."""

    PENDING = "pending"
    UPDATED = "updated"
    FAILED = "failed"
    SKIPPED = "skipped"   # campaign aborted before this device's turn
    QUARANTINED = "quarantined"  # exhausted its retry budget; flagged for
    #                              manual follow-up, excluded from the
    #                              wave failure-rate abort computation


@dataclass
class DeviceRecord:
    """One fleet member and its campaign status."""

    name: str
    device: SimulatedDevice
    transport: str = "pull"            # "push" or "pull"
    interceptor: Optional[Interceptor] = None  # per-device link condition
    #: Per-device link instance (loss rate, outage schedule).  Reused
    #: across attempts so an outage survived on attempt 1 stays survived
    #: — this is what lets flaky-link devices converge under retry.
    link: Optional[Link] = None
    #: Host wall-clock latency per request round-trip, forwarded to
    #: this device's transports (the bench harness's I/O profile).
    #: Sleeps never touch the virtual clock, so reports are identical
    #: at any value.
    host_rtt_seconds: float = 0.0
    state: DeviceState = DeviceState.PENDING
    attempts: int = 0
    #: Transport-level interruptions summed over every attempt (the
    #: last outcome alone would hide outages survived on earlier tries).
    interruptions: int = 0
    last_outcome: Optional[UpdateOutcome] = None

    def __post_init__(self) -> None:
        if self.transport not in ("push", "pull"):
            raise ValueError("transport must be 'push' or 'pull'")


@dataclass(frozen=True)
class RolloutPolicy:
    """Knobs of a staged rollout."""

    canary_fraction: float = 0.1     # fraction updated in the first wave
    abort_failure_rate: float = 0.34  # abort when a wave fails this much
    max_attempts: int = 2            # per-device retries on failure

    def __post_init__(self) -> None:
        if not (0.0 < self.canary_fraction <= 1.0):
            raise ValueError("canary_fraction must be in (0, 1]")
        if not (0.0 < self.abort_failure_rate <= 1.0):
            raise ValueError("abort_failure_rate must be in (0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


@dataclass(frozen=True)
class RetryPolicy:
    """Campaign-level retry schedule for flaky-link devices.

    Between attempts the device waits out an exponential backoff with
    deterministic per-device jitter (derived from the device *name*, so
    reports replay exactly); after ``quarantine_after`` failed attempts
    the device is :attr:`~DeviceState.QUARANTINED` instead of merely
    failed — flagged for manual follow-up and excluded from the wave
    failure-rate that can abort the campaign, so one bad radio does not
    cancel a fleet-wide rollout.
    """

    max_attempts: int = 3
    backoff_initial: float = 5.0
    backoff_factor: float = 2.0
    backoff_max: float = 300.0
    jitter: float = 0.1
    quarantine_after: Optional[int] = None
    seed: int = 0
    #: Transport-layer resume policy handed to every per-attempt
    #: transport (None keeps transports non-resuming).
    transport_retry: Optional[TransportRetryPolicy] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")

    def delay(self, attempt: int, device_name: str) -> float:
        """Backoff after ``attempt`` failures (1-based), jittered
        deterministically per device name."""
        base = min(self.backoff_max,
                   self.backoff_initial
                   * self.backoff_factor ** (attempt - 1))
        if self.jitter:
            mix = (self.seed
                   ^ zlib.crc32(device_name.encode("utf-8"))
                   ^ (attempt * 0x9E3779B9))
            rng = random.Random(mix)
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run."""

    target_version: int
    aborted: bool
    #: True when an SLO breach *paused* the rollout: remaining devices
    #: stay :attr:`~DeviceState.PENDING` (listed in :attr:`pending`)
    #: for an operator decision, unlike an abort's hard skip.
    paused: bool = False
    waves: List[List[str]] = field(default_factory=list)
    updated: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    #: Devices left pending by a PAUSE verdict.
    pending: List[str] = field(default_factory=list)
    #: SLO breach dicts, in the order the telemetry plane raised them
    #: (empty when no telemetry is attached or nothing breached).
    slo_breaches: List[Dict[str, object]] = field(default_factory=list)
    #: Attempts beyond the first, summed over the fleet.
    retries: int = 0
    #: Transport-level interruption events observed fleet-wide (most
    #: survived via resume; the rest ended in abandonment).
    link_interruptions: int = 0
    total_bytes_over_air: int = 0
    total_energy_mj: float = 0.0
    #: Modeled campaign wall-clock: devices within a wave update in
    #: parallel (each against its own radio), waves run back-to-back.
    wall_clock_seconds: float = 0.0

    @property
    def success_rate(self) -> float:
        done = (len(self.updated) + len(self.failed)
                + len(self.quarantined))
        return len(self.updated) / done if done else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary for dashboards and CI artifacts."""
        return {
            "target_version": self.target_version,
            "aborted": self.aborted,
            "paused": self.paused,
            "waves": self.waves,
            "updated": self.updated,
            "failed": self.failed,
            "skipped": self.skipped,
            "quarantined": self.quarantined,
            "pending": self.pending,
            "slo_breaches": self.slo_breaches,
            "retries": self.retries,
            "link_interruptions": self.link_interruptions,
            "success_rate": self.success_rate,
            "total_bytes_over_air": self.total_bytes_over_air,
            "total_energy_mj": self.total_energy_mj,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


# -- the per-device driver ----------------------------------------------------
#
# One attempt of one device is the unit both campaign flavours share:
# the hydrated `Campaign` loops attempts back-to-back inside
# `_update_device`, while the columnar `ScaleCampaign` replays the same
# sequence from discrete retry events.  Keeping the body here (and
# calling it from both) is what makes the two paths byte-identical.


def transport_for(record: DeviceRecord, server: UpdateServer,
                  transport_retry: Optional[TransportRetryPolicy] = None):
    """Build the per-attempt transport exactly as a campaign would."""
    cls = PushTransport if record.transport == "push" else PullTransport
    return cls(record.device, server,
               interceptor=record.interceptor,
               link=record.link, retry=transport_retry,
               host_rtt_seconds=record.host_rtt_seconds)


def drive_attempt(server: UpdateServer, record: DeviceRecord, target: int,
                  transport_retry: Optional[TransportRetryPolicy] = None
                  ) -> UpdateOutcome:
    """Run exactly one update attempt, mutating the record in place.

    Sets :attr:`DeviceRecord.state` to ``UPDATED`` on success; a failed
    attempt leaves the state untouched so the caller decides between a
    retry, :func:`finalize_failed`, or its own policy.
    """
    record.attempts += 1
    transport = transport_for(record, server, transport_retry)
    outcome = transport.run_update()
    record.last_outcome = outcome
    record.interruptions += outcome.interruptions
    if outcome.success and outcome.booted_version == target:
        record.state = DeviceState.UPDATED
    return outcome


def finalize_failed(record: DeviceRecord,
                    retry: Optional[RetryPolicy]) -> None:
    """Close out a device whose retry budget is exhausted."""
    if (retry is not None
            and retry.quarantine_after is not None
            and record.attempts >= retry.quarantine_after):
        record.state = DeviceState.QUARANTINED
    else:
        record.state = DeviceState.FAILED


def post_mortem_phases(record: DeviceRecord) -> Dict[str, int]:
    """Interruption counts per lifecycle phase from the device's black
    box (the hydrated sample's ``interrupted_phases``).  Shared by both
    campaign flavours and the campaign journal."""
    phases: Dict[str, int] = {}
    blackbox = getattr(record.device, "blackbox", None)
    if blackbox is not None:
        for interruption in blackbox.post_mortem()["interruptions"]:
            phase = interruption["phase"]
            phases[phase] = phases.get(phase, 0) + 1
    return phases


class Campaign:
    """Runs one release across a fleet under a rollout policy.

    Two optional planes turn a plain rollout into a crash-safe,
    storm-bounded one:

    * ``journal`` — a :class:`~repro.fleet.journal.CampaignJournal`
      write-ahead log.  Every wave plan is journaled before any member
      is driven and every device outcome the moment it lands, so a
      coordinator that dies mid-wave (:exc:`CoordinatorKilled`) can be
      resurrected with :meth:`resume`: already-updated devices are not
      re-flashed, no token is issued twice, and the final report is
      byte-identical to the uninterrupted run.
    * ``governor`` — a :class:`~repro.fleet.budget.RetryGovernor`
      gating every attempt through a global retry budget and
      per-domain circuit breakers (``domain_of`` maps device name ->
      fault-domain name).  Under a correlated outage the governor
      sheds retries (device quarantined with zero backhaul traffic)
      and probes sick domains cautiously instead of amplifying the
      storm.
    """

    def __init__(self, server: UpdateServer, fleet: List[DeviceRecord],
                 policy: Optional[RolloutPolicy] = None,
                 executor: Optional[WaveExecutor] = None,
                 retry: Optional[RetryPolicy] = None,
                 metrics=None,
                 telemetry: Optional[FleetTelemetry] = None,
                 journal: Optional[CampaignJournal] = None,
                 governor: Optional[RetryGovernor] = None,
                 domain_of: Optional[Callable[[str], Optional[str]]]
                 = None) -> None:
        if not fleet:
            raise ValueError("campaign needs at least one device")
        names = [record.name for record in fleet]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device names: %r" % names)
        self.server = server
        self.fleet = list(fleet)
        self.policy = policy or RolloutPolicy()
        #: Retry schedule between per-device attempts.  None preserves
        #: the legacy behaviour: ``policy.max_attempts`` back-to-back
        #: tries, no backoff, no quarantine.
        self.retry = retry
        #: How each wave's devices are driven.  The serial executor is
        #: the default; pass a
        #: :class:`~repro.fleet.executor.ParallelWaveExecutor` to run a
        #: wave on a thread pool.  Either way the report is identical.
        self.executor = executor or SerialWaveExecutor()
        #: Optional :class:`~repro.obs.MetricsRegistry` observing
        #: per-wave timings and outcome counters.  Purely additive: the
        #: :class:`CampaignReport` stays bit-identical with or without
        #: a registry attached.
        self.metrics = metrics
        #: Optional :class:`~repro.obs.slo.FleetTelemetry`.  When
        #: attached, the executor scrapes every device's registry as it
        #: finishes, each wave closes with a health + SLO verdict, and
        #: breaches steer the rollout (slow / pause / abort) — see
        #: :meth:`run`.  Scrapes and analysis are pure reads of already
        #: -spent virtual time, so a telemetry-on campaign with no
        #: breach produces a byte-identical report to a telemetry-off
        #: one.
        self.telemetry = telemetry
        if telemetry is not None:
            self.executor.scrape = telemetry.scrape_record
        #: Write-ahead journal (crash-safe durability); None = volatile.
        self.journal = journal
        #: Retry-storm governor; None = ungoverned (legacy behaviour).
        self.governor = governor
        #: Device name -> fault-domain name (for the governor's
        #: per-domain breakers); None treats the fleet as one domain.
        self.domain_of = domain_of
        if telemetry is not None and governor is not None \
                and getattr(telemetry, "governor", None) is None:
            # Let the SLO plane's retry-storm detector trip breakers.
            telemetry.governor = governor
            telemetry.domain_of = domain_of
        #: Wave-size cap installed by a SLOW verdict (None = no cap).
        self._wave_cap: Optional[int] = None
        # -- resume state (populated by :meth:`resume`) -----------------
        self._resuming = False
        self._waves_done = 0
        self._inflight_names: Optional[List[str]] = None
        self._preseed: Dict[str, Dict[str, object]] = {}
        self._end_sha: Optional[str] = None
        self._current_wave = 0

    # -- planning -----------------------------------------------------------

    def waves(self) -> List[List[DeviceRecord]]:
        """Canary wave first, then everyone else (stable order)."""
        pending = [record for record in self.fleet
                   if record.state is DeviceState.PENDING]
        canary_count = max(1, int(len(pending)
                                  * self.policy.canary_fraction))
        return [pending[:canary_count], pending[canary_count:]]

    def _plan_waves(self):
        """Yield waves one at a time, honouring any SLOW wave cap.

        With no cap this generates exactly :meth:`waves` — canary,
        then the whole rest — so a telemetry-free (or breach-free)
        campaign runs the same waves it always has.  A SLOW verdict
        installs ``self._wave_cap``, after which the rest rolls out in
        capped slices (blast-radius control without stopping).

        On a resumed campaign the journaled-but-unclosed wave (if any)
        is replayed first, in its journaled order; after that — or
        when only closed waves were replayed — the remaining pending
        devices roll out in the usual capped slices.  The canary split
        only ever happens on wave 0 of a fresh campaign: by the time a
        resume plans waves, the canary has already been journaled.
        """
        if self._inflight_names is not None:
            by_name = {record.name: record for record in self.fleet}
            yield [by_name[name] for name in self._inflight_names]
            # Computed *after* the inflight wave ran: its members are
            # terminal by now, so pending is exactly the untouched rest.
            rest = [record for record in self.fleet
                    if record.state is DeviceState.PENDING]
        elif self._waves_done:
            rest = [record for record in self.fleet
                    if record.state is DeviceState.PENDING]
        else:
            canary, rest = self.waves()
            yield canary
        while rest:
            size = len(rest) if self._wave_cap is None \
                else max(1, min(len(rest), self._wave_cap))
            yield rest[:size]
            rest = rest[size:]

    # -- execution ------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Execute the rollout for the server's latest version.

        With a :attr:`telemetry` plane attached, each finished wave is
        closed out with a :class:`~repro.obs.slo.WaveVerdict` before
        the abort check: verdict-quarantined devices are re-filed from
        failed to quarantined (and removed from the failure count — no
        double-counting), then the verdict's action steers the rollout:
        ``SLOW`` halves subsequent waves, ``PAUSE`` stops with the
        remainder left pending, ``ABORT`` cancels like a failure-rate
        abort.

        With a :attr:`journal` attached, every decision is written
        ahead: ``campaign-start``, per-wave ``wave-plan`` before any
        member is driven, ``device-outcome`` the moment each device
        lands (before the next one starts), ``wave-close`` after the
        verdict, and a ``campaign-end`` SHA-256 seal over the final
        report.  A :exc:`~repro.fleet.journal.CoordinatorKilled`
        propagates out of here; :meth:`resume` continues exactly.
        """
        target = self.server.latest_version
        report = CampaignReport(target_version=target, aborted=False)

        if self._resuming:
            self._restore_from_journal(target, report)
            self._resuming = False
        elif self.journal is not None:
            self.journal.append("campaign-start", target=target,
                                fleet=len(self.fleet))

        if not (report.aborted or report.paused):
            self._run_waves(report, target)

        if report.aborted:
            for record in self.fleet:
                if record.state is DeviceState.PENDING:
                    record.state = DeviceState.SKIPPED
                    report.skipped.append(record.name)
        elif report.paused:
            # A pause leaves the remainder PENDING: an operator can
            # resume by running the campaign again (waves() replans
            # over whatever is still pending).
            report.pending = [record.name for record in self.fleet
                              if record.state is DeviceState.PENDING]
        self._seal(report)
        return report

    def _run_waves(self, report: CampaignReport, target: int) -> None:
        """The wave loop, shared by fresh and resumed runs."""
        skip_plan_append = self._inflight_names is not None
        for wave in self._plan_waves():
            if not wave:
                continue
            wave_index = self._waves_done
            self._current_wave = wave_index
            names = [record.name for record in wave]
            report.waves.append(names)
            if self.journal is not None and not skip_plan_append:
                self.journal.append("wave-plan", wave=wave_index,
                                    names=names)
            skip_plan_append = False
            # Members already journaled by the crashed coordinator are
            # *replayed* — their journal entry stands in for the radio;
            # only the rest are actually driven (no re-flash, no second
            # token).
            preseed = {name: self._preseed.pop(name)
                       for name in names if name in self._preseed}
            to_drive = [record for record in wave
                        if record.name not in preseed]
            outcomes = (self.executor.run_wave(self._update_device,
                                               to_drive, target)
                        if to_drive else [])
            outcome_of = {record.name: outcome
                          for record, outcome in zip(to_drive, outcomes)}
            failures = 0
            wave_duration = 0.0
            # Merge strictly in wave order so aggregates (including the
            # float energy sum) match the serial path bit-for-bit no
            # matter which executor ran the wave — and no matter how
            # many members came back from the journal instead.
            for record in wave:
                entry = preseed.get(record.name)
                if entry is not None:
                    if entry.get("has_outcome"):
                        report.total_bytes_over_air += \
                            int(entry["bytes_over_air"])
                        report.total_energy_mj += \
                            float(entry["energy_mj"])
                        wave_duration = max(
                            wave_duration,
                            float(entry["update_seconds"]))
                else:
                    outcome = outcome_of.get(record.name)
                    if outcome is not None:
                        report.total_bytes_over_air += \
                            outcome.bytes_over_air
                        report.total_energy_mj += outcome.total_energy_mj
                        wave_duration = max(wave_duration,
                                            outcome.total_seconds)
                report.retries += max(0, record.attempts - 1)
                report.link_interruptions += record.interruptions
                if record.state is DeviceState.UPDATED:
                    report.updated.append(record.name)
                elif record.state is DeviceState.QUARANTINED:
                    # Quarantined devices are flagged for follow-up but
                    # do not count toward the abort threshold: one dead
                    # radio must not cancel the rollout for everyone.
                    report.quarantined.append(record.name)
                else:
                    report.failed.append(record.name)
                    failures += 1
            report.wall_clock_seconds += wave_duration
            if self.metrics is not None:
                self._observe_wave(wave, failures, wave_duration)

            verdict = None
            if self.telemetry is not None:
                verdict = self._close_wave(wave, wave_index, report,
                                           preseed)
                failures -= len(verdict.quarantine)

            aborted = (failures / len(wave)
                       >= self.policy.abort_failure_rate)
            paused = False
            if verdict is not None and not aborted:
                if verdict.action is Action.ABORT:
                    aborted = True
                elif verdict.action is Action.PAUSE:
                    paused = True
                elif verdict.action is Action.SLOW:
                    remaining = sum(
                        1 for record in self.fleet
                        if record.state is DeviceState.PENDING)
                    halved = max(1, remaining // 2)
                    self._wave_cap = halved if self._wave_cap is None \
                        else max(1, min(self._wave_cap, halved))
            self._waves_done += 1
            if self.journal is not None:
                self.journal.append(
                    "wave-close", wave=wave_index,
                    duration=wave_duration, failures=failures,
                    action=(verdict.action.value
                            if verdict is not None else None),
                    quarantine=(list(verdict.quarantine)
                                if verdict is not None else []),
                    breaches=([breach.to_dict()
                               for breach in verdict.breaches]
                              if verdict is not None else []),
                    wave_cap=self._wave_cap, aborted=aborted,
                    paused=paused, governor=self._governor_snapshot())
            if aborted:
                report.aborted = True
                break
            if paused:
                report.paused = True
                break
        self._inflight_names = None

    # -- durability (journal + resume) ---------------------------------------

    @classmethod
    def resume(cls, server: UpdateServer, fleet: List[DeviceRecord],
               journal: CampaignJournal, **kwargs) -> "Campaign":
        """Resurrect a campaign from its write-ahead journal.

        The coordinator's RAM is gone; the devices persist.  Build the
        campaign over the *same* fleet (same names, same order), hand
        it the journal the dead coordinator was writing, and
        :meth:`run`: closed waves replay from the journal (nothing
        re-driven), the wave the coordinator died in re-runs with its
        already-journaled members fed from the journal, and everything
        after proceeds normally.  Because outcomes are journaled
        synchronously — each device's record lands before the next
        device starts — the set of driven devices always equals the
        set of journaled devices at the kill point: zero re-flashes,
        zero double-issued tokens, and a final report byte-identical
        to the uninterrupted run's.
        """
        campaign = cls(server, fleet, journal=journal, **kwargs)
        # Coordinator-side record fields are RAM: reset, then replay.
        for record in campaign.fleet:
            record.state = DeviceState.PENDING
            record.attempts = 0
            record.interruptions = 0
            record.last_outcome = None
        campaign._resuming = True
        return campaign

    def _restore_from_journal(self, target: int,
                              report: CampaignReport) -> None:
        """Replay the journal's valid prefix into the report and fleet."""
        by_name = {record.name: record for record in self.fleet}
        plans: List[Dict[str, object]] = []
        outcomes: Dict[int, Dict[str, Dict[str, object]]] = {}
        closes: Dict[int, Dict[str, object]] = {}
        governor_state: Optional[Dict[str, object]] = None
        saw_start = False
        for entry in self.journal.entries():
            kind = entry.get("kind")
            if kind == "campaign-start":
                saw_start = True
                if int(entry.get("target", target)) != target:
                    raise ValueError(
                        "journal is for target version %s but the "
                        "server serves %d" % (entry.get("target"),
                                              target))
            elif kind == "wave-plan":
                plans.append(entry)
            elif kind == "device-outcome":
                outcomes.setdefault(int(entry["wave"]), {})[
                    str(entry["name"])] = entry
                if entry.get("governor") is not None:
                    governor_state = entry["governor"]
            elif kind == "wave-close":
                closes[int(entry["wave"])] = entry
                if entry.get("governor") is not None:
                    governor_state = entry["governor"]
            elif kind == "campaign-end":
                self._end_sha = str(entry.get("sha256"))
        if not saw_start:
            # Nothing durable ever happened: run as a fresh campaign.
            self.journal.append("campaign-start", target=target,
                                fleet=len(self.fleet))
            return
        for plan in plans:
            wave_index = int(plan["wave"])
            names = [str(name) for name in plan["names"]]
            wave_outcomes = outcomes.get(wave_index, {})
            close = closes.get(wave_index)
            if close is None:
                # The wave the coordinator died in: re-run it, with
                # journaled members replayed instead of re-driven.
                self._inflight_names = names
                self._preseed = dict(wave_outcomes)
                for name, entry in wave_outcomes.items():
                    self._apply_entry(by_name[name], entry)
                break
            report.waves.append(names)
            for name in names:
                entry = wave_outcomes.get(name)
                if entry is None:
                    # Torn outcome line: the device stays PENDING and
                    # re-runs in a later wave — degrade, don't lie.
                    continue
                record = by_name[name]
                self._apply_entry(record, entry)
                if entry.get("has_outcome"):
                    report.total_bytes_over_air += \
                        int(entry["bytes_over_air"])
                    report.total_energy_mj += float(entry["energy_mj"])
                report.retries += max(0, record.attempts - 1)
                report.link_interruptions += record.interruptions
                if record.state is DeviceState.UPDATED:
                    report.updated.append(name)
                elif record.state is DeviceState.QUARANTINED:
                    report.quarantined.append(name)
                else:
                    report.failed.append(name)
            for name in close.get("quarantine", []):
                by_name[name].state = DeviceState.QUARANTINED
                report.failed.remove(name)
                report.quarantined.append(name)
            report.wall_clock_seconds += float(close.get("duration",
                                                         0.0))
            report.slo_breaches.extend(close.get("breaches", []))
            cap = close.get("wave_cap")
            self._wave_cap = int(cap) if cap is not None else None
            if close.get("aborted"):
                report.aborted = True
            if close.get("paused"):
                report.paused = True
            self._waves_done += 1
        if self.governor is not None and governor_state is not None:
            self.governor.load_state(governor_state)

    @staticmethod
    def _apply_entry(record: DeviceRecord,
                     entry: Dict[str, object]) -> None:
        record.state = DeviceState(str(entry["state"]))
        record.attempts = int(entry.get("attempts", 0))
        record.interruptions = int(entry.get("interruptions", 0))

    def _journal_outcome(self, record: DeviceRecord,
                         outcome: Optional[UpdateOutcome]) -> None:
        if self.journal is None:
            return
        self.journal.append(
            "device-outcome", name=record.name,
            wave=self._current_wave, state=record.state.value,
            attempts=record.attempts,
            interruptions=record.interruptions,
            has_outcome=outcome is not None,
            update_seconds=(outcome.total_seconds if outcome else 0.0),
            bytes_over_air=(outcome.bytes_over_air if outcome else 0),
            energy_mj=(outcome.total_energy_mj if outcome else 0.0),
            interrupted_phases=post_mortem_phases(record),
            governor=self._governor_snapshot())

    def _governor_snapshot(self) -> Optional[Dict[str, object]]:
        return (self.governor.state_dict()
                if self.governor is not None else None)

    def _seal(self, report: CampaignReport) -> None:
        """Append — or, on resume, verify — the campaign-end seal."""
        if self.journal is None:
            return
        sha = hashlib.sha256(
            json.dumps(report.to_dict(),
                       sort_keys=True).encode("utf-8")).hexdigest()
        if self._end_sha is not None:
            if sha != self._end_sha:
                raise ValueError("resumed report diverges from the "
                                 "journaled campaign-end seal")
            return
        self.journal.append("campaign-end", sha256=sha)

    def _close_wave(self, wave: List[DeviceRecord], wave_index: int,
                    report: CampaignReport,
                    preseed: Optional[Dict[str, Dict[str, object]]]
                    = None) -> WaveVerdict:
        """Feed the wave to the telemetry plane and apply its verdict's
        quarantine list (re-filing those devices out of ``failed``)."""
        preseed = preseed or {}
        for record in wave:
            entry = preseed.get(record.name)
            if entry is None:
                self.telemetry.observe_device(record, wave_index)
            else:
                # Replayed member: synthesize the sample the original
                # run observed from its journal entry (the device was
                # never re-driven, so its black box has nothing new).
                self.telemetry.observe_sample(DeviceSample(
                    name=record.name, wave=wave_index,
                    state=record.state.value,
                    update_seconds=float(entry.get("update_seconds",
                                                   0.0)),
                    bytes_over_air=int(entry.get("bytes_over_air", 0)),
                    energy_mj=float(entry.get("energy_mj", 0.0)),
                    interruptions=record.interruptions,
                    attempts=record.attempts,
                    interrupted_phases=dict(
                        entry.get("interrupted_phases") or {})))
        verdict = self.telemetry.close_wave(
            wave_index, t=report.wall_clock_seconds)
        for name in verdict.quarantine:
            record = next(r for r in wave if r.name == name)
            record.state = DeviceState.QUARANTINED
            report.failed.remove(name)
            report.quarantined.append(name)
        report.slo_breaches.extend(breach.to_dict()
                                   for breach in verdict.breaches)
        return verdict

    def _observe_wave(self, wave: List[DeviceRecord], failures: int,
                      wave_duration: float) -> None:
        from ..obs.metrics import WAVE_SECONDS_BUCKETS

        self.metrics.counter("campaign.waves").inc()
        self.metrics.counter("campaign.devices_updated").inc(
            sum(1 for record in wave
                if record.state is DeviceState.UPDATED))
        self.metrics.counter("campaign.devices_failed").inc(failures)
        self.metrics.histogram("campaign.wave_seconds",
                               WAVE_SECONDS_BUCKETS).observe(wave_duration)

    def _update_device(self, record: DeviceRecord,
                       target: int) -> Optional[UpdateOutcome]:
        attempts = (self.retry.max_attempts if self.retry is not None
                    else self.policy.max_attempts)
        transport_retry = (self.retry.transport_retry
                           if self.retry is not None else None)
        domain = (self.domain_of(record.name)
                  if self.domain_of is not None else None)
        last: Optional[UpdateOutcome] = None
        shed = False
        for attempt in range(1, attempts + 1):
            attempt_retry = transport_retry
            if self.governor is not None:
                decision = self._admit(domain, record,
                                       retry=attempt > 1)
                if decision is None:
                    shed = True
                    break
                if decision.caution:
                    # Probing a suspect domain: a short transport
                    # budget instead of the full resume siege.
                    attempt_retry = CAUTION_TRANSPORT_RETRY
            last = drive_attempt(self.server, record, target,
                                 attempt_retry)
            if self.governor is not None:
                self.governor.note_outcome(
                    domain, record.device.clock.now,
                    success=record.state is DeviceState.UPDATED,
                    interruptions=last.interruptions)
            if record.state is DeviceState.UPDATED:
                break
            if self.retry is not None and attempt < attempts:
                # Wait out the (virtual) backoff on the device's own
                # clock before the next attempt.
                record.device.clock.advance(
                    self.retry.delay(attempt, record.name), "backoff")
        if record.state is not DeviceState.UPDATED:
            if shed:
                # Governor shed the attempt: the device is deferred
                # for later remediation with zero further backhaul —
                # quarantined, not failed, so the storm cannot also
                # trip the campaign's failure-rate abort.
                record.state = DeviceState.QUARANTINED
            else:
                finalize_failed(record, self.retry)
        self._journal_outcome(record, last)
        return last

    def _admit(self, domain: Optional[str], record: DeviceRecord,
               retry: bool):
        """Gate one attempt through the governor, waiting out breaker
        defers on the device's own virtual clock.  Returns the
        allowing :class:`~repro.fleet.budget.Decision`, or None to
        shed."""
        for _ in range(64):
            decision = self.governor.admit(domain,
                                           record.device.clock.now,
                                           retry=retry)
            if decision.allow:
                return decision
            if decision.shed:
                return None
            wait = decision.defer_until - record.device.clock.now
            if wait <= 0.0:  # defensive: a defer must make progress
                return None
            record.device.clock.advance(wait, "governor-defer")
        return None

    # -- introspection -----------------------------------------------------------

    def states(self) -> Dict[str, DeviceState]:
        return {record.name: record.state for record in self.fleet}
