"""Columnar fleet membership: one numpy row per device, not one object.

The sparse-flash pickle path (PR 5) costs ~33 KB per hydrated device
record; a million-device campaign would need ~33 GB before the first
wave admits.  This module keeps fleet membership in a numpy structured
array — device id, firmware version, installed-slot digest, health
score, attempt/interruption counters, lifecycle phase, campaign state,
cohort id, next-event time, and the per-device outcome aggregates the
report needs — at :data:`ROW_DTYPE` ``.itemsize`` bytes per row
(~100 B).  A full :class:`~repro.sim.SimulatedDevice` exists only for
the window where a device is actively transferring/verifying (see
:mod:`repro.fleet.scale`), then folds back into its row.

**Cohorts.**  Devices that are identical except for identity (device
id, name, token nonce) form a *cohort*.  Every modeled cost in the
simulator — radio seconds, flash busy time, crypto cost, pipeline CPU —
is a deterministic function of the device's configuration and the bytes
it receives, and the per-request bytes are identity-independent
(fixed-width manifests, deterministic RFC 6979 signatures of fixed
size, shared payload).  One hydrated *representative* per cohort per
wave therefore produces the exact outcome of every member, and the
scale campaign replicates it across the cohort's rows.  Devices with
per-device link schedules, interceptors, or any other distinguishing
state must be declared ``unique`` — they always hydrate individually.

**Batched digest checks.**  Installed-slot digests live as a
``(32,) uint8`` column, so "which rows already run the target image"
is one vectorised comparison (:meth:`ColumnarFleet.digest_matches`)
instead of a million per-device hash-and-compare calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised by the no-numpy fallback test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from .campaign import DeviceState

__all__ = [
    "ROW_DTYPE",
    "STATE_CODES",
    "CODE_STATES",
    "PHASE_IDLE",
    "PHASE_ACTIVE",
    "PHASE_DONE",
    "DeviceSpec",
    "ColumnarFleet",
]

#: Campaign state -> row code (stable across PRs: codes are persisted
#: in bench artifacts).
STATE_CODES: Dict[DeviceState, int] = {
    DeviceState.PENDING: 0,
    DeviceState.UPDATED: 1,
    DeviceState.FAILED: 2,
    DeviceState.SKIPPED: 3,
    DeviceState.QUARANTINED: 4,
}
CODE_STATES: Dict[int, DeviceState] = {
    code: state for state, code in STATE_CODES.items()}

#: Lifecycle phase codes for the ``phase`` column.
PHASE_IDLE = 0      # membership only; no device materialised
PHASE_ACTIVE = 1    # admitted to a wave; transferring/verifying
PHASE_DONE = 2      # folded back after its wave closed

#: One device = one row.  Field order groups the hot columns (state,
#: cohort, next_event) away from the wide digest payload.
ROW_DTYPE = None if _np is None else _np.dtype([
    ("device_id", _np.uint32),
    ("version", _np.uint32),          # installed firmware version
    ("slot_digest", _np.uint8, (32,)),  # SHA-256 of the installed image
    ("health", _np.float32),          # last health score (0-100)
    ("attempts", _np.uint16),
    ("interruptions", _np.uint16),
    ("phase", _np.uint8),             # PHASE_* lifecycle code
    ("state", _np.uint8),             # STATE_CODES campaign state
    ("cohort", _np.uint32),
    ("next_event", _np.float64),      # virtual time of next scheduled event
    ("update_seconds", _np.float64),  # final attempt's outcome duration
    ("bytes_over_air", _np.uint64),
    ("energy_mj", _np.float64),
])


@dataclass(frozen=True)
class DeviceSpec:
    """Everything needed to (re)hydrate one fleet member.

    ``unique=True`` forces the device into its own cohort — required
    whenever hydration would attach per-device state (an outage-schedule
    link, a tampering interceptor) that makes its outcome diverge from
    otherwise-identical devices.

    ``domain`` names the device's fault domain
    (:class:`~repro.faults.domains.FaultDomain`).  Domain-*shared*
    fault links stay cohort-safe — every member of a domain replays
    the identical correlated schedule, so the domain simply joins the
    cohort key; only genuinely per-device schedules need ``unique``.
    """

    name: str
    device_id: int
    transport: str = "pull"
    host_rtt_seconds: float = 0.0
    unique: bool = False
    domain: Optional[str] = None

    def cohort_key(self) -> Tuple:
        if self.unique:
            return ("unique", self.name)
        return (self.transport, self.host_rtt_seconds, self.domain)


class ColumnarFleet:
    """Fleet membership as a structured array plus an on-demand spec.

    ``spec_fn(index)`` must be deterministic — names and hydration
    parameters are *recomputed*, never stored, so a million-device
    fleet costs a million rows and nothing else.
    """

    def __init__(self, count: int,
                 spec_fn: Callable[[int], DeviceSpec],
                 baseline_version: int = 1,
                 baseline_digest: bytes = b"") -> None:
        if _np is None:
            raise RuntimeError(
                "ColumnarFleet requires numpy; install it or use the "
                "hydrated Campaign path")
        if count < 1:
            raise ValueError("fleet needs at least one device")
        self.count = count
        self.spec_fn = spec_fn
        self.rows = _np.zeros(count, dtype=ROW_DTYPE)
        self._cohort_ids: Dict[Tuple, int] = {}
        #: Representative index per cohort (first member in row order).
        self.cohort_representative: Dict[int, int] = {}
        digest_row = (_np.frombuffer(baseline_digest, dtype=_np.uint8)
                      if baseline_digest else None)
        if digest_row is not None and digest_row.size != 32:
            raise ValueError("baseline_digest must be 32 bytes")

        device_ids = _np.empty(count, dtype=_np.uint32)
        cohorts = _np.empty(count, dtype=_np.uint32)
        for index in range(count):
            spec = spec_fn(index)
            device_ids[index] = spec.device_id
            key = spec.cohort_key()
            cohort = self._cohort_ids.get(key)
            if cohort is None:
                cohort = len(self._cohort_ids)
                self._cohort_ids[key] = cohort
                self.cohort_representative[cohort] = index
            cohorts[index] = cohort
        self.rows["device_id"] = device_ids
        self.rows["cohort"] = cohorts
        self.rows["version"] = baseline_version
        if digest_row is not None:
            self.rows["slot_digest"] = digest_row

    # -- construction helpers -------------------------------------------------

    @classmethod
    def uniform(cls, count: int, device_id_base: int,
                name_format: str = "dev-%06d",
                transports: Tuple[str, ...] = ("push", "pull"),
                baseline_version: int = 1,
                baseline_digest: bytes = b"") -> "ColumnarFleet":
        """A homogeneous fleet: ids from a base, transports cycled.

        This is the bench/CLI shape (``bench-%03d`` devices alternating
        push/pull); cohort count equals ``len(transports)`` no matter
        the fleet size, which is what makes a million-device campaign
        hydrate a handful of devices.
        """

        def spec(index: int) -> DeviceSpec:
            return DeviceSpec(
                name=name_format % index,
                device_id=device_id_base + index,
                transport=transports[index % len(transports)],
            )

        fleet = cls(count, spec, baseline_version=baseline_version,
                    baseline_digest=baseline_digest)
        return fleet

    # -- plain reads ----------------------------------------------------------

    @property
    def bytes_per_row(self) -> int:
        return int(self.rows.dtype.itemsize)

    @property
    def cohort_count(self) -> int:
        return len(self._cohort_ids)

    def spec(self, index: int) -> DeviceSpec:
        return self.spec_fn(index)

    def name(self, index: int) -> str:
        return self.spec_fn(index).name

    def state_of(self, index: int) -> DeviceState:
        return CODE_STATES[int(self.rows["state"][index])]

    def pending_indices(self) -> "_np.ndarray":
        """Row indices still PENDING, in row order (the wave plan base)."""
        return _np.flatnonzero(
            self.rows["state"] == STATE_CODES[DeviceState.PENDING])

    def indices_in_state(self, state: DeviceState) -> "_np.ndarray":
        return _np.flatnonzero(self.rows["state"] == STATE_CODES[state])

    def count_state(self, state: DeviceState) -> int:
        return int((self.rows["state"] == STATE_CODES[state]).sum())

    # -- batched digest path --------------------------------------------------

    def digest_matches(self, digest: bytes) -> "_np.ndarray":
        """Boolean mask of rows whose installed digest equals ``digest``.

        One vectorised 32-byte compare across the whole fleet — the
        columnar replacement for per-device hash-and-compare.
        """
        if len(digest) != 32:
            raise ValueError("digest must be 32 bytes")
        target = _np.frombuffer(digest, dtype=_np.uint8)
        return (self.rows["slot_digest"] == target).all(axis=1)

    def stamp_digest(self, indices: "_np.ndarray", digest: bytes) -> None:
        target = _np.frombuffer(digest, dtype=_np.uint8)
        self.rows["slot_digest"][indices] = target

    # -- hydration fold-back --------------------------------------------------

    def fold(self, index: int, record, outcome) -> None:
        """Fold a hydrated record (and its final outcome) into its row."""
        row = self.rows[index]
        row["state"] = STATE_CODES[record.state]
        row["attempts"] = record.attempts
        row["interruptions"] = record.interruptions
        row["phase"] = PHASE_DONE
        row["version"] = record.device.installed_version()
        if outcome is not None:
            row["update_seconds"] = outcome.total_seconds
            row["bytes_over_air"] = outcome.bytes_over_air
            row["energy_mj"] = outcome.total_energy_mj

    def replicate(self, indices: "_np.ndarray", template: dict) -> None:
        """Vectorised template write: one representative's outcome onto
        every row of its cohort slice."""
        for column, value in template.items():
            self.rows[column][indices] = value

    def set_states(self, indices: "_np.ndarray",
                   state: DeviceState) -> None:
        self.rows["state"][indices] = STATE_CODES[state]

    def nbytes(self) -> int:
        return int(self.rows.nbytes)
