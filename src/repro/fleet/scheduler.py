"""Discrete-event scheduler on the campaign's virtual timeline.

The hydrated :class:`~repro.fleet.campaign.Campaign` advances time
implicitly: waves run back-to-back and the report's wall clock is the
sum of per-wave maxima.  At a million devices that structure has to be
explicit — wave admission, per-device retry/backoff timers, and SLO
evaluation are *events* on one virtual timeline, and the scheduler is
the only component that may move time forward.

Invariants (the columnar parity tests depend on all three):

* **Deterministic order** — events pop by ``(time, seq)``; ``seq`` is
  the creation sequence number, so two events scheduled for the same
  instant fire in the order they were scheduled.  No wall-clock, no
  randomness.
* **Monotonic time** — an event may only schedule at or after its own
  fire time; :meth:`EventScheduler.at` raises on an earlier timestamp.
* **Run-to-quiescence** — :meth:`run` drains the heap completely; a
  handler stops the simulation by not scheduling, never by clearing
  other events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventScheduler"]


@dataclass(order=True)
class Event:
    """One scheduled occurrence on the virtual timeline."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventScheduler:
    """A deterministic min-heap event loop over virtual seconds."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        #: Virtual time of the most recently popped event.
        self.now = 0.0
        #: Total events handled (scale reports surface this).
        self.processed = 0

    def at(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule ``kind`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(
                "cannot schedule %r at t=%.6f before now=%.6f"
                % (kind, time, self.now))
        event = Event(time=time, seq=self._seq, kind=kind,
                      payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, kind: str, payload: Any = None) -> Event:
        """Schedule ``kind`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self.now + delay, kind, payload)

    def __len__(self) -> int:
        return len(self._heap)

    def pop(self) -> Optional[Event]:
        """Next event in ``(time, seq)`` order; advances :attr:`now`."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self.now = event.time
        self.processed += 1
        return event

    def run(self, handler: Callable[[Event], None]) -> int:
        """Drain the heap through ``handler``; returns events handled."""
        handled = 0
        while True:
            event = self.pop()
            if event is None:
                return handled
            handler(event)
            handled += 1

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None
