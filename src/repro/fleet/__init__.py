"""Fleet layer: staged update campaigns over many simulated devices."""

from .campaign import (
    Campaign,
    CampaignReport,
    DeviceRecord,
    DeviceState,
    RetryPolicy,
    RolloutPolicy,
)
from .executor import (
    ParallelWaveExecutor,
    SerialWaveExecutor,
    WaveExecutor,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "DeviceRecord",
    "DeviceState",
    "ParallelWaveExecutor",
    "RetryPolicy",
    "RolloutPolicy",
    "SerialWaveExecutor",
    "WaveExecutor",
]
