"""Fleet layer: staged update campaigns over many simulated devices."""

from .campaign import (
    Campaign,
    CampaignReport,
    DeviceRecord,
    DeviceState,
    RolloutPolicy,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "DeviceRecord",
    "DeviceState",
    "RolloutPolicy",
]
