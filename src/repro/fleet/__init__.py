"""Fleet layer: staged update campaigns over many simulated devices."""

from .campaign import (
    Campaign,
    CampaignReport,
    DeviceRecord,
    DeviceState,
    RetryPolicy,
    RolloutPolicy,
    drive_attempt,
    finalize_failed,
    transport_for,
)
from .columnar import (
    ColumnarFleet,
    DeviceSpec,
    ROW_DTYPE,
)
from .executor import (
    Calibration,
    ParallelWaveExecutor,
    ProcessWaveExecutor,
    SerialWaveExecutor,
    WaveExecutor,
    calibrate,
    select_executor,
)
from .scale import (
    ScaleCampaign,
    ScaleReport,
)
from .scheduler import (
    Event,
    EventScheduler,
)

__all__ = [
    "Calibration",
    "Campaign",
    "CampaignReport",
    "ColumnarFleet",
    "DeviceRecord",
    "DeviceSpec",
    "DeviceState",
    "Event",
    "EventScheduler",
    "ParallelWaveExecutor",
    "ProcessWaveExecutor",
    "ROW_DTYPE",
    "RetryPolicy",
    "RolloutPolicy",
    "ScaleCampaign",
    "ScaleReport",
    "SerialWaveExecutor",
    "WaveExecutor",
    "calibrate",
    "drive_attempt",
    "finalize_failed",
    "select_executor",
    "transport_for",
]
