"""Fleet layer: staged update campaigns over many simulated devices."""

from .campaign import (
    Campaign,
    CampaignReport,
    DeviceRecord,
    DeviceState,
    RetryPolicy,
    RolloutPolicy,
)
from .executor import (
    Calibration,
    ParallelWaveExecutor,
    ProcessWaveExecutor,
    SerialWaveExecutor,
    WaveExecutor,
    calibrate,
    select_executor,
)

__all__ = [
    "Calibration",
    "Campaign",
    "CampaignReport",
    "DeviceRecord",
    "DeviceState",
    "ParallelWaveExecutor",
    "ProcessWaveExecutor",
    "RetryPolicy",
    "RolloutPolicy",
    "SerialWaveExecutor",
    "WaveExecutor",
    "calibrate",
    "select_executor",
]
