"""Fleet layer: staged update campaigns over many simulated devices."""

from .budget import (
    BreakerPolicy,
    BreakerState,
    CAUTION_TRANSPORT_RETRY,
    CircuitBreaker,
    Decision,
    RetryBudget,
    RetryGovernor,
)
from .campaign import (
    Campaign,
    CampaignReport,
    DeviceRecord,
    DeviceState,
    RetryPolicy,
    RolloutPolicy,
    drive_attempt,
    finalize_failed,
    post_mortem_phases,
    transport_for,
)
from .journal import (
    CampaignJournal,
    CoordinatorKilled,
    JOURNAL_KINDS,
)
from .columnar import (
    ColumnarFleet,
    DeviceSpec,
    ROW_DTYPE,
)
from .executor import (
    Calibration,
    ParallelWaveExecutor,
    ProcessWaveExecutor,
    SerialWaveExecutor,
    WaveExecutor,
    calibrate,
    select_executor,
)
from .scale import (
    ScaleCampaign,
    ScaleReport,
)
from .scheduler import (
    Event,
    EventScheduler,
)

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "CAUTION_TRANSPORT_RETRY",
    "Calibration",
    "Campaign",
    "CampaignJournal",
    "CampaignReport",
    "CircuitBreaker",
    "ColumnarFleet",
    "CoordinatorKilled",
    "Decision",
    "DeviceRecord",
    "DeviceSpec",
    "DeviceState",
    "Event",
    "EventScheduler",
    "JOURNAL_KINDS",
    "ParallelWaveExecutor",
    "ProcessWaveExecutor",
    "ROW_DTYPE",
    "RetryBudget",
    "RetryGovernor",
    "RetryPolicy",
    "RolloutPolicy",
    "ScaleCampaign",
    "ScaleReport",
    "SerialWaveExecutor",
    "WaveExecutor",
    "calibrate",
    "drive_attempt",
    "finalize_failed",
    "post_mortem_phases",
    "select_executor",
    "transport_for",
]
