"""Retry-storm actuation: a global retry budget + per-domain breakers.

PR 4's telemetry plane *detects* retry storms; under a correlated
outage detection alone makes things worse — every device behind the
dead gateway hammers the backhaul with resumes and campaign retries,
amplifying the very storm the fleet is drowning in.  This module
*acts*:

* :class:`RetryBudget` — a global token bucket over virtual time.
  First attempts on a healthy domain are free (normal rollout
  traffic); campaign retries and probes against a suspect domain each
  spend a token.  An empty bucket **sheds** the retry instead of
  queueing it.
* :class:`CircuitBreaker` — per fault domain, the classic
  closed → open → half-open automaton on the virtual clock.  Failure
  *and interruption* pressure opens it; while open, the whole
  domain's attempts are **deferred** to the reopen horizon; half-open
  admits a single cautious probe whose result closes or re-opens.
* :class:`RetryGovernor` — the campaign-facing facade: one
  :meth:`~RetryGovernor.admit` gate per attempt, pressure feedback
  per outcome, a telemetry hook for retry-storm anomalies, and a
  deterministic, JSON-serialisable state snapshot (so the campaign
  journal can restore the governor exactly after a coordinator
  crash).

Everything is pure arithmetic on caller-supplied ``now`` values —
deterministic, replayable, and shared between campaign flavours.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..net.transports import TransportRetryPolicy

__all__ = ["RetryBudget", "BreakerPolicy", "BreakerState",
           "CircuitBreaker", "Decision", "RetryGovernor",
           "CAUTION_TRANSPORT_RETRY"]

#: Transport policy for probe attempts against a suspect domain: two
#: tries, not eight — a probe asks "is it back?", it does not siege.
CAUTION_TRANSPORT_RETRY = TransportRetryPolicy(max_attempts=2,
                                               backoff_initial=0.5)


@dataclass
class Decision:
    """What the governor says about one prospective attempt."""

    allow: bool
    #: When ``allow`` is False and ``shed`` is False: earliest virtual
    #: time to ask again (the caller waits it out on its own clock).
    defer_until: float = 0.0
    #: Give up on this attempt entirely (budget exhausted).
    shed: bool = False
    #: Attempt admitted, but against a suspect domain: use the
    #: cautious transport-retry policy, not the full resume budget.
    caution: bool = False
    reason: str = ""


class RetryBudget:
    """Global token bucket over virtual seconds.

    ``now`` values come from per-device virtual clocks and are not
    globally monotonic; refill clamps negative deltas to zero, which
    keeps the bucket deterministic for any fixed call sequence.
    """

    def __init__(self, capacity: int = 16,
                 refill_per_second: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError("budget capacity must be at least 1")
        if refill_per_second < 0:
            raise ValueError("refill rate must be non-negative")
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self.tokens = float(capacity)
        self._last_now = 0.0
        self.spent = 0
        self.exhausted = 0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_now)
        self._last_now = max(self._last_now, now)
        if self.refill_per_second:
            self.tokens = min(float(self.capacity),
                              self.tokens
                              + elapsed * self.refill_per_second)

    def take(self, now: float) -> bool:
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.exhausted += 1
        return False

    def state_dict(self) -> Dict[str, object]:
        return {"tokens": self.tokens, "last_now": self._last_now,
                "spent": self.spent, "exhausted": self.exhausted}

    def load_state(self, state: Dict[str, object]) -> None:
        self.tokens = float(state["tokens"])
        self._last_now = float(state["last_now"])
        self.spent = int(state["spent"])
        self.exhausted = int(state["exhausted"])

    def to_dict(self) -> Dict[str, object]:
        return {"capacity": self.capacity,
                "refill_per_second": self.refill_per_second,
                "tokens": round(self.tokens, 6),
                "spent": self.spent, "exhausted": self.exhausted}


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs of one domain's circuit breaker."""

    #: Pressure units (failures=1, each transport interruption=1)
    #: that trip a closed breaker open.
    pressure_threshold: int = 5
    #: Virtual seconds an open breaker holds before half-open probing.
    open_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.pressure_threshold < 1:
            raise ValueError("pressure_threshold must be at least 1")
        if self.open_seconds <= 0:
            raise ValueError("open_seconds must be positive")


class BreakerState(enum.Enum):
    """Breaker lifecycle: CLOSED admits, OPEN defers, HALF_OPEN probes."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """closed → open → half-open, on the virtual clock."""

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.pressure = 0
        self.opened_at = 0.0
        self.opened_count = 0

    def admit(self, now: float) -> Optional[float]:
        """None = admitted; a float = deferred until that time.

        An open breaker past its horizon flips to half-open and admits
        the caller as the probe.
        """
        if self.state is BreakerState.OPEN:
            reopen = self.opened_at + self.policy.open_seconds
            if now < reopen:
                return reopen
            self.state = BreakerState.HALF_OPEN
        return None

    @property
    def suspect(self) -> bool:
        return self.state is not BreakerState.CLOSED

    def note_pressure(self, units: int, now: float) -> None:
        """Failure/interruption pressure; trips the breaker open."""
        if units <= 0:
            return
        self.pressure += units
        if self.state is BreakerState.HALF_OPEN \
                or (self.state is BreakerState.CLOSED
                    and self.pressure >= self.policy.pressure_threshold):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.opened_count += 1

    def note_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.pressure = 0

    def state_dict(self) -> Dict[str, object]:
        return {"state": self.state.value, "pressure": self.pressure,
                "opened_at": self.opened_at,
                "opened_count": self.opened_count}

    def load_state(self, state: Dict[str, object]) -> None:
        self.state = BreakerState(state["state"])
        self.pressure = int(state["pressure"])
        self.opened_at = float(state["opened_at"])
        self.opened_count = int(state["opened_count"])


@dataclass
class RetryGovernor:
    """The campaign's actuation plane for retry storms.

    Gate protocol (what ``Campaign._update_device`` drives):

    1. before *every* attempt: :meth:`admit` — allow (possibly with
       ``caution``), defer (advance the device clock, ask again), or
       shed (quarantine the device for later remediation — deferred,
       not bricked, not a campaign-aborting failure);
    2. after an attempt: :meth:`note_outcome` feeds back success or
       failure plus the attempt's transport interruptions as breaker
       pressure.

    Telemetry wiring: :meth:`note_retry_storm` lets the SLO plane's
    retry-storm anomaly detector trip a domain's breaker directly.
    """

    budget: Optional[RetryBudget] = None
    breaker_policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    breakers: Dict[str, CircuitBreaker] = field(default_factory=dict)
    allows: int = 0
    defers: int = 0
    sheds: int = 0
    storm_signals: int = 0

    def _breaker(self, domain: Optional[str]) \
            -> Optional[CircuitBreaker]:
        if domain is None:
            return None
        breaker = self.breakers.get(domain)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_policy)
            self.breakers[domain] = breaker
        return breaker

    # -- the gate -------------------------------------------------------------

    def admit(self, domain: Optional[str], now: float,
              retry: bool = False) -> Decision:
        breaker = self._breaker(domain)
        if breaker is not None:
            deferred = breaker.admit(now)
            if deferred is not None:
                self.defers += 1
                return Decision(allow=False, defer_until=deferred,
                                reason="breaker-open:%s" % domain)
        suspect = breaker is not None and breaker.suspect
        if (retry or suspect) and self.budget is not None:
            if not self.budget.take(now):
                self.sheds += 1
                return Decision(allow=False, shed=True,
                                reason="budget-exhausted")
        self.allows += 1
        return Decision(allow=True, caution=suspect,
                        reason="probe" if suspect else "ok")

    def note_outcome(self, domain: Optional[str], now: float,
                     success: bool, interruptions: int = 0) -> None:
        breaker = self._breaker(domain)
        if breaker is None:
            return
        if success and interruptions == 0:
            breaker.note_success()
            return
        # A success that burned resumes still signals a sick domain:
        # count the interruptions as pressure, plus one for a failure.
        breaker.note_pressure(interruptions + (0 if success else 1),
                              now)
        if success and not breaker.suspect:
            breaker.note_success()

    # -- telemetry wiring -----------------------------------------------------

    def note_retry_storm(self, domain: Optional[str],
                         now: float = 0.0) -> None:
        """SLO-plane hook: a retry-storm anomaly fired for ``domain``."""
        self.storm_signals += 1
        breaker = self._breaker(domain)
        if breaker is not None:
            breaker.note_pressure(self.breaker_policy.pressure_threshold,
                                  now)

    # -- snapshot (journal integration) ---------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Exact, JSON-safe state for the campaign journal."""
        return {
            "budget": (self.budget.state_dict()
                       if self.budget is not None else None),
            "breakers": {name: breaker.state_dict()
                         for name, breaker in sorted(self.breakers.items())},
            "allows": self.allows, "defers": self.defers,
            "sheds": self.sheds, "storm_signals": self.storm_signals,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        budget_state = state.get("budget")
        if budget_state is not None and self.budget is not None:
            self.budget.load_state(budget_state)  # type: ignore[arg-type]
        self.breakers.clear()
        for name, breaker_state in state.get("breakers", {}).items():
            breaker = CircuitBreaker(self.breaker_policy)
            breaker.load_state(breaker_state)
            self.breakers[name] = breaker
        self.allows = int(state.get("allows", 0))
        self.defers = int(state.get("defers", 0))
        self.sheds = int(state.get("sheds", 0))
        self.storm_signals = int(state.get("storm_signals", 0))

    def to_dict(self) -> Dict[str, object]:
        """Report-facing summary."""
        return {
            "allows": self.allows, "defers": self.defers,
            "sheds": self.sheds, "storm_signals": self.storm_signals,
            "budget": (self.budget.to_dict()
                       if self.budget is not None else None),
            "breakers": {
                name: {"state": breaker.state.value,
                       "opened_count": breaker.opened_count}
                for name, breaker in sorted(self.breakers.items())},
        }
