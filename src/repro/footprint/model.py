"""Static memory-footprint model: a "linker map" for UpKit builds.

The paper's evaluation (Tables I–II, Fig. 7) measures the flash/RAM of
*compiled C binaries* on three MCUs — not something a Python
reproduction can compile.  Per the substitution rule, we model each
build as the sum of its components (kernel, network stack, crypto
library, UpKit modules, platform glue), with component costs calibrated
from the paper:

* the per-module numbers the paper states explicitly (pipeline
  1632 B flash / 2137 B RAM, memory module 2024 B flash);
* the crypto-library deltas of Table I;
* per-OS constants solved from the build totals of Tables I–II.

Because the model is *structural* (a build is a set of components),
ablations behave correctly: dropping the pipeline removes exactly its
cost, swapping TinyDTLS for tinycrypt moves every build by the same
delta, and the baseline builds (mcuboot, mcumgr, LwM2M) share the OS
components, reproducing the relative comparisons of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..crypto.backends import CryptoProfile, TINYDTLS
from ..platform import OSProfile

__all__ = [
    "Component",
    "BuildFootprint",
    "UPKIT_FSM",
    "UPKIT_PIPELINE",
    "UPKIT_MEMORY",
    "UPKIT_VERIFIER",
    "UPKIT_BOOT_COMMON",
    "AGENT_GLUE_FLASH",
    "bootloader_build",
    "agent_build",
]


@dataclass(frozen=True)
class Component:
    """One linkable unit with its flash/RAM cost."""

    name: str
    flash: int
    ram: int
    platform_independent: bool = True


# UpKit's common modules.  Pipeline and memory costs are the paper's own
# numbers (Sect. VI-A); FSM and verifier are solved from the build totals.
UPKIT_FSM = Component("upkit-fsm", flash=1250, ram=420)
UPKIT_PIPELINE = Component("upkit-pipeline", flash=1632, ram=2137)
UPKIT_MEMORY = Component("upkit-memory", flash=2024, ram=310)
UPKIT_VERIFIER = Component("upkit-verifier", flash=850, ram=70)
# The bootloader links only memory + verifier plus shared support code.
UPKIT_BOOT_COMMON = Component("upkit-boot-common", flash=3085, ram=650)

#: Platform-specific agent code (flash drivers, vector table, radio glue).
AGENT_GLUE_FLASH = 1500


@dataclass(frozen=True)
class BuildFootprint:
    """A complete build: the component list and its totals."""

    name: str
    components: List[Component]

    @property
    def flash(self) -> int:
        return sum(component.flash for component in self.components)

    @property
    def ram(self) -> int:
        return sum(component.ram for component in self.components)

    @property
    def platform_independent_flash(self) -> int:
        return sum(component.flash for component in self.components
                   if component.platform_independent)

    @property
    def platform_independent_fraction(self) -> float:
        total = self.flash
        return self.platform_independent_flash / total if total else 0.0

    def component(self, name: str) -> Component:
        for component in self.components:
            if component.name == name:
                return component
        raise KeyError("no component named %r in build %r"
                       % (name, self.name))

    def rows(self) -> "list[tuple[str, int, int]]":
        return [(component.name, component.flash, component.ram)
                for component in self.components]


def bootloader_build(os_profile: OSProfile,
                     crypto: CryptoProfile) -> BuildFootprint:
    """The UpKit bootloader build for one OS/crypto pairing (Table I)."""
    return BuildFootprint(
        name="upkit-bootloader/%s/%s" % (os_profile.name, crypto.name),
        components=[
            Component("crypto-%s" % crypto.name, crypto.flash_bytes,
                      crypto.ram_bytes),
            UPKIT_BOOT_COMMON,
            Component("%s-boot-support" % os_profile.name,
                      os_profile.boot_glue_flash, os_profile.boot_ram,
                      platform_independent=False),
        ],
    )


def agent_build(
    os_profile: OSProfile,
    approach: str,
    crypto: CryptoProfile = TINYDTLS,
    differential: bool = True,
) -> BuildFootprint:
    """The UpKit update-agent build (Table II).

    ``approach`` is ``"pull"`` (CoAP over 6LoWPAN) or ``"push"`` (BLE
    GATT; Zephyr only, per Sect. V).  ``differential=False`` drops the
    pipeline's patcher/decompressor — the ablation footnote 5 hints at
    ("the use of differential updates increases the memory usage of the
    update agent").
    """
    if approach not in ("pull", "push"):
        raise ValueError("approach must be 'pull' or 'push'")
    if approach == "push" and not os_profile.supports_ble_push:
        raise ValueError(
            "%s has no complete BLE GATT support (Sect. V)"
            % os_profile.name)

    components = [
        Component("%s-kernel" % os_profile.name, os_profile.kernel_flash,
                  os_profile.kernel_ram, platform_independent=False),
        Component("%s-stack-ram" % os_profile.name, 0,
                  os_profile.runtime_stack_ram, platform_independent=False),
    ]
    if approach == "pull":
        components.append(Component(
            "%s-ipv6" % os_profile.network_stack,
            os_profile.ipv6_stack_flash, os_profile.ipv6_stack_ram,
            platform_independent=False))
        components.append(Component(
            "coap-%s" % os_profile.coap_library,
            os_profile.coap_flash, os_profile.coap_ram,
            platform_independent=False))
    else:
        components.append(Component(
            "ble-gatt", os_profile.ble_stack_flash,
            os_profile.ble_stack_ram, platform_independent=False))

    components.append(Component("crypto-%s" % crypto.name,
                                crypto.flash_bytes, crypto.ram_bytes))
    components.append(UPKIT_FSM)
    if differential:
        components.append(UPKIT_PIPELINE)
    else:
        # Buffer + writer stages remain; patcher and lzss drop out.
        components.append(Component("upkit-pipeline-minimal",
                                    flash=410, ram=540))
    components.append(UPKIT_MEMORY)
    components.append(UPKIT_VERIFIER)
    components.append(Component("agent-glue", AGENT_GLUE_FLASH, 0,
                                platform_independent=False))
    return BuildFootprint(
        name="upkit-agent/%s/%s/%s" % (os_profile.name, approach,
                                       crypto.name),
        components=components,
    )
