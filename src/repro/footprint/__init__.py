"""Static flash/RAM footprint model of UpKit and baseline builds."""

from .model import (
    AGENT_GLUE_FLASH,
    BuildFootprint,
    Component,
    UPKIT_BOOT_COMMON,
    UPKIT_FSM,
    UPKIT_MEMORY,
    UPKIT_PIPELINE,
    UPKIT_VERIFIER,
    agent_build,
    bootloader_build,
)
from .report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    build_summary,
    format_table,
    table1_rows,
    table2_rows,
)

__all__ = [
    "AGENT_GLUE_FLASH",
    "BuildFootprint",
    "Component",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "UPKIT_BOOT_COMMON",
    "UPKIT_FSM",
    "UPKIT_MEMORY",
    "UPKIT_PIPELINE",
    "UPKIT_VERIFIER",
    "agent_build",
    "bootloader_build",
    "build_summary",
    "format_table",
    "table1_rows",
    "table2_rows",
]
