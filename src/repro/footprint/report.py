"""Footprint reporting: render Table I / Table II / Fig. 7 style rows."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..crypto.backends import CRYPTOAUTHLIB, TINYCRYPT, TINYDTLS
from ..platform import CONTIKI, RIOT, ZEPHYR
from .model import BuildFootprint, agent_build, bootloader_build

__all__ = [
    "table1_rows",
    "table2_rows",
    "format_table",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
]

# Paper-reported numbers, for paper-vs-model comparison in the benches.
PAPER_TABLE1 = {
    ("zephyr", "tinydtls"): (13040, 8180),
    ("zephyr", "tinycrypt"): (14151, 8180),
    ("riot", "tinydtls"): (15420, 6512),
    ("riot", "tinycrypt"): (16552, 6512),
    ("contiki", "tinydtls"): (15454, 6637),
    ("contiki", "tinycrypt"): (16546, 6637),
    ("contiki", "cryptoauthlib"): (14078, 6553),
}

PAPER_TABLE2 = {
    ("zephyr", "pull"): (218472, 75204),
    ("riot", "pull"): (95780, 31244),
    ("contiki", "pull"): (79445, 19934),
    ("zephyr", "push"): (81918, 21856),
}


def table1_rows() -> List[Tuple[str, str, int, int]]:
    """(os, crypto, flash, ram) for every Table I configuration."""
    rows = []
    pairs = [
        (ZEPHYR, TINYDTLS), (ZEPHYR, TINYCRYPT),
        (RIOT, TINYDTLS), (RIOT, TINYCRYPT),
        (CONTIKI, TINYDTLS), (CONTIKI, TINYCRYPT),
        (CONTIKI, CRYPTOAUTHLIB),
    ]
    for os_profile, crypto in pairs:
        build = bootloader_build(os_profile, crypto)
        rows.append((os_profile.name, crypto.name, build.flash, build.ram))
    return rows


def table2_rows() -> List[Tuple[str, str, int, int]]:
    """(approach, os, flash, ram) for every Table II configuration."""
    rows = []
    for os_profile in (ZEPHYR, RIOT, CONTIKI):
        build = agent_build(os_profile, "pull")
        rows.append(("pull", os_profile.name, build.flash, build.ram))
    build = agent_build(ZEPHYR, "push")
    rows.append(("push", ZEPHYR.name, build.flash, build.ram))
    return rows


def format_table(header: Iterable[str],
                 rows: Iterable[Iterable[object]]) -> str:
    """Plain-text table rendering for the benchmark harness output."""
    header = [str(h) for h in header]
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(row, widths)).rstrip()
    lines = [fmt(header), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def build_summary(build: BuildFootprint) -> str:
    """Linker-map style per-component listing of one build."""
    rows = build.rows() + [("TOTAL", build.flash, build.ram)]
    return format_table(("component", "flash", "ram"), rows)
