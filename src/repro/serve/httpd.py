"""The HTTP/1.1 face of the fleet service: stdlib asyncio, no deps.

A deliberately small server — request line, headers, Content-Length
bodies, keep-alive — because constrained-device update traffic *is*
small: five JSON endpoints and one binary range endpoint per session.
Every route is a thin codec over :class:`~repro.serve.service
.FleetService`; no behaviour lives here.

Routes (management shapes modeled on moonraker's update_manager)::

    GET    /                          service + endpoint directory
    GET    /channels                  release channels + server stats
    POST   /devices                   register {device_id, channel, ...}
    GET    /devices/{id}              registry entry
    POST   /devices/{id}/token        single-use token (409 on a race)
    GET    /manifests/{token}         double-signed envelope + digest
    GET    /images/{token}            payload bytes; Range honoured
    POST   /reports/{token}           outcome report (burns the token)
    GET    /campaigns[/{name}]        campaign list / status
    POST   /campaigns                 create + start (WAL-backed)
    POST   /campaigns/{name}/refresh  re-drive a paused remainder
    POST   /campaigns/{name}/resume   resurrect from the WAL
    DELETE /campaigns/{name}          drop a finished campaign
    GET    /metrics                   OpenMetrics (chunked, typed)
    GET    /healthz                   liveness + loop-lag p99

Errors are :class:`~repro.serve.service.ServiceError` bodies verbatim:
``{"error": {"code", "status", "detail"}}`` — the CoAP face serializes
the same object, so a client's error handling is protocol-portable.

Observability (PR 9): every request is measured into a
:class:`~repro.serve.telemetry.ServeTelemetry` (access log, per-route
histograms, in-flight gauge) and — when an
:class:`~repro.obs.asynctrace.AsyncTracer` is enabled — traced as a
``parse -> handle -> service.* -> respond`` span tree.  An incoming
W3C ``traceparent`` header grafts the request into the caller's trace
(same trace_id, remote parent recorded in args), and
:meth:`HttpServer._offload` copies the contextvars context into the
executor so campaign calls appear as children of their request.  An
:class:`~repro.serve.telemetry.EventLoopWatchdog` runs for the
server's lifetime, sampling scheduling lag into ``/metrics`` and
``/healthz``.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import json
import time
from typing import Dict, List, Optional, Tuple

from ..obs.asynctrace import NULL_ASYNC_TRACER, TRACEPARENT_HEADER, \
    parse_traceparent
from ..obs.export import OPENMETRICS_CONTENT_TYPE
from .service import FleetService, ServiceError
from .telemetry import EventLoopWatchdog, ServeTelemetry

__all__ = ["HttpServer", "MAX_BODY_BYTES"]

MAX_BODY_BYTES = 1 << 20
_STATUS_TEXT = {200: "OK", 201: "Created", 206: "Partial Content",
                400: "Bad Request", 403: "Forbidden", 404: "Not Found",
                405: "Method Not Allowed", 409: "Conflict",
                413: "Payload Too Large",
                416: "Range Not Satisfiable",
                500: "Internal Server Error"}
#: /metrics flows through chunked transfer-encoding on purpose: the
#: OpenMetrics conformance test asserts the ``# EOF`` terminator
#: survives re-assembly from chunk frames.
METRICS_CHUNK_BYTES = 512


class _HttpError(Exception):
    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.body = {"error": {"code": code, "status": status,
                               "detail": detail}}


class HttpServer:
    """``asyncio.start_server`` front end over one FleetService."""

    def __init__(self, service: FleetService,
                 host: str = "127.0.0.1", port: int = 0,
                 telemetry: Optional[ServeTelemetry] = None,
                 tracer=None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.telemetry = telemetry \
            or ServeTelemetry(service.metrics)
        self.tracer = tracer or NULL_ASYNC_TRACER
        self._watchdog = EventLoopWatchdog(self.telemetry)
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        #: Pre-serialized response-header skeletons keyed by
        #: (status, content type, close): the hot JSON endpoints write
        #: a cached prefix + the length digits instead of rebuilding
        #: the header block per request.
        self._header_cache: Dict[Tuple[int, str, bool], bytes] = {}

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._watchdog.start()

    async def stop(self) -> None:
        """Close the listener and every live connection task — after
        this returns, the server has left ``asyncio.all_tasks()``."""
        await self._watchdog.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        self._conn_tasks.clear()

    async def __aenter__(self) -> "HttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection loop -------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError,
                        ConnectionResetError, asyncio.LimitOverrunError):
                    break
                except _HttpError as exc:
                    # The request never framed (bad request line, bad
                    # or oversized Content-Length), so the stream
                    # position is unknown: answer and close.
                    self.telemetry.request_started()
                    nbytes = 0
                    try:
                        nbytes = await self._write_response(
                            writer, exc.status, exc.body, {}, True)
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    self.telemetry.observe_request(
                        "http", "<bad-request>", exc.status, nbytes,
                        0.0)
                    break
                if request is None:
                    break
                if not await self._serve_request(writer, request):
                    break
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # Swallowing a cancel here is safe: the handler is
                # about to finish anyway, and stop() must be able to
                # gather this task to completion.
                pass
            # Deregister only once fully done — stop() snapshots
            # _conn_tasks, and a task that removed itself before its
            # last await could linger past stop() unobserved.
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_request(self, writer: asyncio.StreamWriter,
                             request: Tuple[str, str, Dict[str, str],
                                            bytes, float]) -> bool:
        """Dispatch one framed request: trace it, write the response,
        account it into the access log.  Returns False when the
        connection must close (explicit Connection: close or a broken
        peer)."""
        method, path, headers, body, started = request
        parsed_at = time.perf_counter()
        close = headers.get("connection", "").lower() == "close"
        route = _route_label(method, path)
        tracer = self.tracer
        self.telemetry.request_started()
        remote = None
        if tracer.enabled:
            header = headers.get(TRACEPARENT_HEADER)
            remote = parse_traceparent(header) if header else None
        span_args = {"method": method, "route": route}
        if remote is not None:
            span_args["remote_parent_id"] = remote[1]
        status = 500
        nbytes = 0
        alive = not close
        with tracer.span("http.request", category="serve.http",
                         start=started,
                         trace_id=remote[0] if remote else None,
                         **span_args) as root:
            tracer.record_span("parse", started, parsed_at,
                               category="serve.http")
            try:
                with tracer.span("handle", category="serve.http"):
                    status, payload, extra = await self._dispatch(
                        method, path, headers, body)
            except _HttpError as exc:
                status, payload, extra = exc.status, exc.body, {}
            except ServiceError as exc:
                status, payload, extra = (exc.status, exc.to_body(),
                                          {})
            except Exception as exc:
                status = 500
                payload = {"error": {
                    "code": "internal", "status": 500,
                    "detail": "%s: %s"
                              % (type(exc).__name__, exc)}}
                extra = {}
            try:
                with tracer.span("respond", category="serve.http"):
                    if extra.pop("_chunked", False):
                        nbytes = await self._write_chunked(
                            writer, status, payload, extra, close)
                    else:
                        nbytes = await self._write_response(
                            writer, status, payload, extra, close)
            except (ConnectionResetError, BrokenPipeError):
                alive = False
            if root is not None:
                root.args["status"] = status
        duration = time.perf_counter() - started
        span_tree = None
        if root is not None and duration * 1000.0 \
                >= self.telemetry.slow_request_ms:
            span_tree = tracer.subtree(root)
        self.telemetry.observe_request(
            "http", route, status, nbytes, duration,
            trace_id=root.trace_id if root is not None else None,
            span_tree=span_tree)
        return alive

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes, float]]:
        # One readuntil for the whole head instead of a readline per
        # header: at 10k-session swarm scale the per-await event-loop
        # trips dominate header parsing, so the hot path takes exactly
        # one scheduling round for head plus one for the body.
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial or exc.partial in (b"\r\n", b"\n"):
                return None          # clean keep-alive close
            raise
        except asyncio.LimitOverrunError:
            raise _HttpError(400, "bad-request-line",
                             "request head exceeds the stream limit")
        # Timestamp the moment the request head lands, not when the
        # keep-alive connection went idle — parse time and request
        # duration both anchor here.
        started = time.perf_counter()
        raw_lines = head[:-4].split(b"\r\n")
        try:
            method, path, _version = \
                raw_lines[0].decode("ascii").strip().split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "bad-request-line",
                             "unparseable request line")
        headers: Dict[str, str] = {}
        for raw in raw_lines[1:]:
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "invalid-content-length",
                             "Content-Length must be an integer")
        if length < 0:
            raise _HttpError(400, "invalid-content-length",
                             "Content-Length must be non-negative")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "body-too-large",
                             "body exceeds %d bytes" % MAX_BODY_BYTES)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body, started

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, method: str, target: str,
                        headers: Dict[str, str], body: bytes
                        ) -> Tuple[int, object, Dict[str, str]]:
        path, _sep, query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        service = self.service
        if not parts:
            return 200, self._directory(), {}
        if parts == ["metrics"] and method == "GET":
            return 200, self._call(service.openmetrics), \
                {"_chunked": True}
        if parts == ["healthz"] and method == "GET":
            return 200, service.health_snapshot(self.telemetry), {}
        if parts == ["channels"] and method == "GET":
            return 200, self._call(service.channel_status), {}
        if parts[0] == "devices":
            return self._dispatch_devices(method, parts, body)
        if parts[0] == "manifests" and len(parts) == 2 \
                and method == "GET":
            # Manifest resolution signs (P-256): run it on the signer
            # pool, never on the event loop.  The service returns the
            # pre-serialized canonical JSON, so the face only frames.
            encoded = await self._sign_dispatch(
                service.resolve_manifest_encoded, parts[1])
            return 200, encoded + b"\n", \
                {"Content-Type": "application/json; charset=utf-8"}
        if parts[0] == "images" and len(parts) == 2 and method == "GET":
            return self._dispatch_image(parts[1], headers, query)
        if parts[0] == "reports" and len(parts) == 2 \
                and method == "POST":
            return 200, self._call(service.close_token, parts[1],
                                   _json_body(body)), {}
        if parts[0] == "campaigns":
            return await self._dispatch_campaigns(method, parts, body)
        raise _HttpError(404, "unknown-route",
                         "%s %s is not a service endpoint"
                         % (method, path))

    def _call(self, fn, *args):
        """An inline (on-loop) service call, traced as a
        ``service.<name>`` child span of the current request."""
        with self.tracer.span("service.%s" % fn.__name__,
                              category="serve.service"):
            return fn(*args)

    async def _offload(self, fn, *args, **kwargs):
        """Run a potentially long service call on the default
        executor.  Device-session calls are sub-millisecond in-memory
        operations and stay on the loop; campaign calls build worlds
        (up to 100k simulated devices), replay WALs, and honour
        ``wait: true`` joins — any of which would stall every other
        connection if run on the loop thread.

        The call runs inside a copy of the *current* contextvars
        context (``run_in_executor``, unlike ``asyncio.to_thread``,
        does not copy it), so the tracer's span context crosses the
        thread hop and the campaign call records as a child span of
        its request."""
        loop = asyncio.get_running_loop()
        if kwargs:
            fn = functools.partial(fn, **kwargs)
        tracer = self.tracer
        if tracer.enabled:
            name = getattr(fn, "func", fn).__name__
            inner = fn

            def fn(*call_args):
                with tracer.span("service.%s" % name,
                                 category="serve.service"):
                    return inner(*call_args)

        ctx = contextvars.copy_context()
        return await loop.run_in_executor(None, ctx.run, fn, *args)

    async def _sign_dispatch(self, fn, *args):
        """Run an ECDSA-bearing service call on the signer pool.

        Like :meth:`_offload`, but through the service's dedicated
        signer executor: the pool drains waves of simultaneous token
        resolutions in batches, shares the fast engine's P-256 tables
        across its workers, and (when tracing) records the queue wait
        as a ``sign.queue`` span under this request."""
        tracer = self.tracer
        if tracer.enabled:
            name = fn.__name__
            inner = fn

            def fn(*call_args):
                with tracer.span("service.%s" % name,
                                 category="serve.service"):
                    return inner(*call_args)

        return await self.service.signer.dispatch(fn, *args,
                                                  tracer=tracer)

    def _dispatch_devices(self, method: str, parts: List[str],
                          body: bytes
                          ) -> Tuple[int, object, Dict[str, str]]:
        service = self.service
        if len(parts) == 1 and method == "POST":
            return 201, self._call(service.register_device,
                                   _json_body(body)), {}
        if len(parts) >= 2:
            try:
                device_id = int(parts[1])
            except ValueError:
                raise _HttpError(400, "invalid-device-id",
                                 "device id must be an integer")
            if len(parts) == 2 and method == "GET":
                return 200, self._call(service.device_status,
                                       device_id), {}
            if len(parts) == 3 and parts[2] == "token" \
                    and method == "POST":
                req = _json_body(body) if body else {}
                return 201, self._call(
                    service.issue_token, device_id,
                    bool(req.get("supports_differential", False))), {}
        raise _HttpError(405, "method-not-allowed",
                         "unsupported device operation")

    def _dispatch_image(self, token_hex: str, headers: Dict[str, str],
                        query: str
                        ) -> Tuple[int, object, Dict[str, str]]:
        offset, length, ranged = _parse_range(headers.get("range"),
                                              query)
        try:
            data, total = self._call(self.service.read_chunk,
                                     token_hex, offset, length)
        except ServiceError as exc:
            if exc.status == 416:
                raise _RangeError(exc)
            raise
        if not ranged:
            return 200, data, {"Content-Type":
                               "application/octet-stream"}
        if not data:
            # A satisfied zero-length range has no valid Content-Range
            # (RFC 7233 reserves 'bytes */N' for 416 responses), so it
            # degrades to a plain 200 with an empty body.
            return 200, b"", {"Content-Type":
                              "application/octet-stream"}
        content_range = "bytes %d-%d/%d" % (
            offset, offset + len(data) - 1, total)
        return 206, data, {"Content-Type": "application/octet-stream",
                           "Content-Range": content_range}

    async def _dispatch_campaigns(self, method: str, parts: List[str],
                                  body: bytes
                                  ) -> Tuple[int, object,
                                             Dict[str, str]]:
        service = self.service
        if len(parts) == 1:
            if method == "GET":
                return 200, await self._offload(
                    service.list_campaigns), {}
            if method == "POST":
                return 201, await self._offload(
                    service.create_campaign, _json_body(body)), {}
        elif len(parts) == 2:
            name = parts[1]
            if method == "GET":
                return 200, await self._offload(
                    service.campaign_status, name), {}
            if method == "DELETE":
                return 200, await self._offload(
                    service.delete_campaign, name), {}
        elif len(parts) == 3 and method == "POST":
            name, action = parts[1], parts[2]
            if action == "refresh":
                req = _json_body(body) if body else {}
                return 200, await self._offload(
                    service.refresh_campaign, name, req), {}
            if action == "resume":
                req = _json_body(body) if body else {}
                return 200, await self._offload(
                    service.resume_campaign, name,
                    wait=bool(req.get("wait", False))), {}
        raise _HttpError(405, "method-not-allowed",
                         "unsupported campaign operation")

    def _directory(self) -> Dict[str, object]:
        return {
            "service": "upkit-serve",
            "endpoints": [
                "GET /channels", "POST /devices",
                "GET /devices/{id}", "POST /devices/{id}/token",
                "GET /manifests/{token}", "GET /images/{token}",
                "POST /reports/{token}", "GET /campaigns",
                "POST /campaigns", "GET /campaigns/{name}",
                "POST /campaigns/{name}/refresh",
                "POST /campaigns/{name}/resume",
                "DELETE /campaigns/{name}", "GET /metrics",
                "GET /healthz",
            ],
        }

    # -- response writing ------------------------------------------------------

    def _header_prefix(self, status: int, content_type: str,
                       close: bool) -> bytes:
        """The response header block up to the Content-Length digits,
        pre-serialized once per (status, content type, close)."""
        key = (status, content_type, close)
        prefix = self._header_cache.get(key)
        if prefix is None:
            prefix = ("HTTP/1.1 %d %s\r\n"
                      "Content-Type: %s\r\n"
                      "Connection: %s\r\n"
                      "Content-Length: "
                      % (status, _STATUS_TEXT.get(status, "Unknown"),
                         content_type,
                         "close" if close else "keep-alive")
                      ).encode("latin-1")
            self._header_cache[key] = prefix
        return prefix

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: object,
                              extra: Dict[str, str],
                              close: bool) -> int:
        tracer = self.tracer
        with tracer.span("serialize", category="serve.http"):
            if isinstance(payload, (bytes, bytearray, memoryview)):
                # Zero-copy: ranged chunks arrive as memoryview slices
                # and pre-serialized manifests as bytes; neither is
                # joined with the header — both buffers go straight to
                # the transport.
                body = payload
                content_type = extra.pop("Content-Type",
                                         "application/octet-stream")
            else:
                body = (json.dumps(payload, sort_keys=True) + "\n") \
                    .encode("utf-8")
                content_type = extra.pop(
                    "Content-Type", "application/json; charset=utf-8")
            if extra:
                headers = ["HTTP/1.1 %d %s"
                           % (status,
                              _STATUS_TEXT.get(status, "Unknown")),
                           "Content-Type: %s" % content_type,
                           "Content-Length: %d" % len(body)]
                headers += ["%s: %s" % item for item in extra.items()]
                headers.append("Connection: %s"
                               % ("close" if close else "keep-alive"))
                header_bytes = ("\r\n".join(headers) + "\r\n\r\n") \
                    .encode("latin-1")
            else:
                header_bytes = self._header_prefix(
                    status, content_type, close) \
                    + b"%d\r\n\r\n" % len(body)
        with tracer.span("write", category="serve.http"):
            # writelines hands both buffers to the transport in one
            # call, so header and body leave in a single send()
            # syscall — two writes cost two syscalls on an empty
            # buffer, which at swarm scale is measurable CPU.
            if body:
                writer.writelines((header_bytes, body))
            else:
                writer.write(header_bytes)
            await writer.drain()
        return len(body)

    async def _write_chunked(self, writer: asyncio.StreamWriter,
                             status: int, payload: object,
                             extra: Dict[str, str],
                             close: bool) -> int:
        text = payload if isinstance(payload, str) \
            else json.dumps(payload, sort_keys=True)
        body = text.encode("utf-8")
        headers = ["HTTP/1.1 %d %s"
                   % (status, _STATUS_TEXT.get(status, "Unknown")),
                   "Content-Type: %s"
                   % extra.pop("Content-Type",
                               OPENMETRICS_CONTENT_TYPE),
                   "Transfer-Encoding: chunked",
                   "Connection: %s"
                   % ("close" if close else "keep-alive")]
        writer.write(("\r\n".join(headers) + "\r\n\r\n")
                     .encode("latin-1"))
        for start in range(0, len(body), METRICS_CHUNK_BYTES):
            chunk = body[start:start + METRICS_CHUNK_BYTES]
            writer.write(b"%x\r\n%s\r\n" % (len(chunk), chunk))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return len(body)


class _RangeError(_HttpError):
    def __init__(self, err: ServiceError) -> None:
        super().__init__(err.status, err.code, err.detail)
        self.body = err.to_body()


def _route_label(method: str, target: str) -> str:
    """Collapse a request target to a bounded route label.

    Access-log lines and per-route metric families must never carry
    token hex or device ids — cardinality would grow with traffic —
    so paths fold onto the endpoint directory's templates."""
    path = target.partition("?")[0]
    parts = [p for p in path.split("/") if p]
    if not parts:
        return "%s /" % method
    head = parts[0]
    if head in ("metrics", "healthz", "channels") and len(parts) == 1:
        return "%s /%s" % (method, head)
    if head in ("manifests", "images", "reports") and len(parts) == 2:
        return "%s /%s/{token}" % (method, head)
    if head == "devices":
        if len(parts) == 1:
            return "%s /devices" % method
        if len(parts) == 2:
            return "%s /devices/{id}" % method
        if len(parts) == 3 and parts[2] == "token":
            return "%s /devices/{id}/token" % method
    if head == "campaigns":
        if len(parts) == 1:
            return "%s /campaigns" % method
        if len(parts) == 2:
            return "%s /campaigns/{name}" % method
        if len(parts) == 3 and parts[2] in ("refresh", "resume"):
            return "%s /campaigns/{name}/%s" % (method, parts[2])
    return "%s <other>" % method


def _json_body(body: bytes) -> Dict[str, object]:
    if not body:
        raise _HttpError(400, "invalid-body", "a JSON body is required")
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, "invalid-body",
                         "body is not valid JSON: %s" % exc)
    if not isinstance(parsed, dict):
        raise _HttpError(400, "invalid-body",
                         "body must be a JSON object")
    return parsed


def _parse_range(header: Optional[str], query: str
                 ) -> Tuple[int, Optional[int], bool]:
    """``(offset, length, was_ranged)`` from a Range header or an
    ``offset=&length=`` query string (header wins)."""
    if header:
        spec = header.strip().lower()
        if not spec.startswith("bytes="):
            raise _HttpError(400, "invalid-range",
                             "only bytes= ranges are supported")
        first = spec[len("bytes="):].split(",")[0].strip()
        start_s, sep, end_s = first.partition("-")
        if not sep or not start_s:
            raise _HttpError(400, "invalid-range",
                             "suffix ranges are not supported")
        try:
            start = int(start_s)
            end = int(end_s) if end_s else None
        except ValueError:
            raise _HttpError(400, "invalid-range",
                             "unparseable Range header")
        if end is not None and end < start:
            raise _HttpError(400, "invalid-range",
                             "range end precedes range start")
        length = None if end is None else end - start + 1
        return start, length, True
    if query:
        params = {}
        for pair in query.split("&"):
            key, _sep, value = pair.partition("=")
            params[key] = value
        if "offset" in params or "length" in params:
            try:
                offset = int(params.get("offset", "0"))
                length = (int(params["length"])
                          if "length" in params else None)
            except ValueError:
                raise _HttpError(400, "invalid-range",
                                 "offset/length must be integers")
            return offset, length, True
    return 0, None, False
