"""The HTTP/1.1 face of the fleet service: stdlib asyncio, no deps.

A deliberately small server — request line, headers, Content-Length
bodies, keep-alive — because constrained-device update traffic *is*
small: five JSON endpoints and one binary range endpoint per session.
Every route is a thin codec over :class:`~repro.serve.service
.FleetService`; no behaviour lives here.

Routes (management shapes modeled on moonraker's update_manager)::

    GET    /                          service + endpoint directory
    GET    /channels                  release channels + server stats
    POST   /devices                   register {device_id, channel, ...}
    GET    /devices/{id}              registry entry
    POST   /devices/{id}/token        single-use token (409 on a race)
    GET    /manifests/{token}         double-signed envelope + digest
    GET    /images/{token}            payload bytes; Range honoured
    POST   /reports/{token}           outcome report (burns the token)
    GET    /campaigns[/{name}]        campaign list / status
    POST   /campaigns                 create + start (WAL-backed)
    POST   /campaigns/{name}/refresh  re-drive a paused remainder
    POST   /campaigns/{name}/resume   resurrect from the WAL
    DELETE /campaigns/{name}          drop a finished campaign
    GET    /metrics                   OpenMetrics (chunked, typed)

Errors are :class:`~repro.serve.service.ServiceError` bodies verbatim:
``{"error": {"code", "status", "detail"}}`` — the CoAP face serializes
the same object, so a client's error handling is protocol-portable.
"""

from __future__ import annotations

import asyncio
import functools
import json
from typing import Dict, List, Optional, Tuple

from ..obs.export import OPENMETRICS_CONTENT_TYPE
from .service import FleetService, ServiceError

__all__ = ["HttpServer", "MAX_BODY_BYTES"]

MAX_BODY_BYTES = 1 << 20
_STATUS_TEXT = {200: "OK", 201: "Created", 206: "Partial Content",
                400: "Bad Request", 403: "Forbidden", 404: "Not Found",
                405: "Method Not Allowed", 409: "Conflict",
                413: "Payload Too Large",
                416: "Range Not Satisfiable",
                500: "Internal Server Error"}
#: /metrics flows through chunked transfer-encoding on purpose: the
#: OpenMetrics conformance test asserts the ``# EOF`` terminator
#: survives re-assembly from chunk frames.
METRICS_CHUNK_BYTES = 512


class _HttpError(Exception):
    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.body = {"error": {"code": code, "status": status,
                               "detail": detail}}


class HttpServer:
    """``asyncio.start_server`` front end over one FleetService."""

    def __init__(self, service: FleetService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task]" = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener and every live connection task — after
        this returns, the server has left ``asyncio.all_tasks()``."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        self._conn_tasks.clear()

    async def __aenter__(self) -> "HttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection loop -------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.IncompleteReadError,
                        ConnectionResetError, asyncio.LimitOverrunError):
                    break
                except _HttpError as exc:
                    # The request never framed (bad request line, bad
                    # or oversized Content-Length), so the stream
                    # position is unknown: answer and close.
                    try:
                        await self._write_response(
                            writer, exc.status, exc.body, {}, True)
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    break
                if request is None:
                    break
                method, path, headers, body = request
                close = headers.get("connection", "").lower() == "close"
                try:
                    status, payload, extra = await self._dispatch(
                        method, path, headers, body)
                except _HttpError as exc:
                    status, payload, extra = exc.status, exc.body, {}
                except ServiceError as exc:
                    status, payload, extra = (exc.status, exc.to_body(),
                                              {})
                except Exception as exc:
                    status = 500
                    payload = {"error": {
                        "code": "internal", "status": 500,
                        "detail": "%s: %s"
                                  % (type(exc).__name__, exc)}}
                    extra = {}
                try:
                    if extra.pop("_chunked", False):
                        await self._write_chunked(
                            writer, status, payload, extra, close)
                    else:
                        await self._write_response(
                            writer, status, payload, extra, close)
                except (ConnectionResetError, BrokenPipeError):
                    break
                if close:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, path, _version = \
                line.decode("ascii").strip().split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "bad-request-line",
                             "unparseable request line")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if not raw:
                raise asyncio.IncompleteReadError(raw, None)
            if raw in (b"\r\n", b"\n"):
                break
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "invalid-content-length",
                             "Content-Length must be an integer")
        if length < 0:
            raise _HttpError(400, "invalid-content-length",
                             "Content-Length must be non-negative")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "body-too-large",
                             "body exceeds %d bytes" % MAX_BODY_BYTES)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, method: str, target: str,
                        headers: Dict[str, str], body: bytes
                        ) -> Tuple[int, object, Dict[str, str]]:
        path, _sep, query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        service = self.service
        if not parts:
            return 200, self._directory(), {}
        if parts == ["metrics"] and method == "GET":
            return 200, service.openmetrics(), {"_chunked": True}
        if parts == ["channels"] and method == "GET":
            return 200, service.channel_status(), {}
        if parts[0] == "devices":
            return self._dispatch_devices(method, parts, body)
        if parts[0] == "manifests" and len(parts) == 2 \
                and method == "GET":
            return 200, service.resolve_manifest(parts[1]), {}
        if parts[0] == "images" and len(parts) == 2 and method == "GET":
            return self._dispatch_image(parts[1], headers, query)
        if parts[0] == "reports" and len(parts) == 2 \
                and method == "POST":
            return 200, service.close_token(parts[1],
                                            _json_body(body)), {}
        if parts[0] == "campaigns":
            return await self._dispatch_campaigns(method, parts, body)
        raise _HttpError(404, "unknown-route",
                         "%s %s is not a service endpoint"
                         % (method, path))

    @staticmethod
    async def _offload(fn, *args, **kwargs):
        """Run a potentially long service call on the default
        executor.  Device-session calls are sub-millisecond in-memory
        operations and stay on the loop; campaign calls build worlds
        (up to 100k simulated devices), replay WALs, and honour
        ``wait: true`` joins — any of which would stall every other
        connection if run on the loop thread."""
        loop = asyncio.get_running_loop()
        if kwargs:
            fn = functools.partial(fn, **kwargs)
        return await loop.run_in_executor(None, fn, *args)

    def _dispatch_devices(self, method: str, parts: List[str],
                          body: bytes
                          ) -> Tuple[int, object, Dict[str, str]]:
        service = self.service
        if len(parts) == 1 and method == "POST":
            return 201, service.register_device(_json_body(body)), {}
        if len(parts) >= 2:
            try:
                device_id = int(parts[1])
            except ValueError:
                raise _HttpError(400, "invalid-device-id",
                                 "device id must be an integer")
            if len(parts) == 2 and method == "GET":
                return 200, service.device_status(device_id), {}
            if len(parts) == 3 and parts[2] == "token" \
                    and method == "POST":
                req = _json_body(body) if body else {}
                return 201, service.issue_token(
                    device_id,
                    bool(req.get("supports_differential", False))), {}
        raise _HttpError(405, "method-not-allowed",
                         "unsupported device operation")

    def _dispatch_image(self, token_hex: str, headers: Dict[str, str],
                        query: str
                        ) -> Tuple[int, object, Dict[str, str]]:
        offset, length, ranged = _parse_range(headers.get("range"),
                                              query)
        try:
            data, total = self.service.read_chunk(token_hex, offset,
                                                  length)
        except ServiceError as exc:
            if exc.status == 416:
                raise _RangeError(exc)
            raise
        if not ranged:
            return 200, data, {"Content-Type":
                               "application/octet-stream"}
        if not data:
            # A satisfied zero-length range has no valid Content-Range
            # (RFC 7233 reserves 'bytes */N' for 416 responses), so it
            # degrades to a plain 200 with an empty body.
            return 200, b"", {"Content-Type":
                              "application/octet-stream"}
        content_range = "bytes %d-%d/%d" % (
            offset, offset + len(data) - 1, total)
        return 206, data, {"Content-Type": "application/octet-stream",
                           "Content-Range": content_range}

    async def _dispatch_campaigns(self, method: str, parts: List[str],
                                  body: bytes
                                  ) -> Tuple[int, object,
                                             Dict[str, str]]:
        service = self.service
        if len(parts) == 1:
            if method == "GET":
                return 200, await self._offload(
                    service.list_campaigns), {}
            if method == "POST":
                return 201, await self._offload(
                    service.create_campaign, _json_body(body)), {}
        elif len(parts) == 2:
            name = parts[1]
            if method == "GET":
                return 200, await self._offload(
                    service.campaign_status, name), {}
            if method == "DELETE":
                return 200, await self._offload(
                    service.delete_campaign, name), {}
        elif len(parts) == 3 and method == "POST":
            name, action = parts[1], parts[2]
            if action == "refresh":
                req = _json_body(body) if body else {}
                return 200, await self._offload(
                    service.refresh_campaign, name, req), {}
            if action == "resume":
                req = _json_body(body) if body else {}
                return 200, await self._offload(
                    service.resume_campaign, name,
                    wait=bool(req.get("wait", False))), {}
        raise _HttpError(405, "method-not-allowed",
                         "unsupported campaign operation")

    def _directory(self) -> Dict[str, object]:
        return {
            "service": "upkit-serve",
            "endpoints": [
                "GET /channels", "POST /devices",
                "GET /devices/{id}", "POST /devices/{id}/token",
                "GET /manifests/{token}", "GET /images/{token}",
                "POST /reports/{token}", "GET /campaigns",
                "POST /campaigns", "GET /campaigns/{name}",
                "POST /campaigns/{name}/refresh",
                "POST /campaigns/{name}/resume",
                "DELETE /campaigns/{name}", "GET /metrics",
            ],
        }

    # -- response writing ------------------------------------------------------

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: object,
                              extra: Dict[str, str],
                              close: bool) -> None:
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
            content_type = extra.pop("Content-Type",
                                     "application/octet-stream")
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n") \
                .encode("utf-8")
            content_type = extra.pop("Content-Type",
                                     "application/json; charset=utf-8")
        headers = ["HTTP/1.1 %d %s"
                   % (status, _STATUS_TEXT.get(status, "Unknown")),
                   "Content-Type: %s" % content_type,
                   "Content-Length: %d" % len(body)]
        headers += ["%s: %s" % item for item in extra.items()]
        headers.append("Connection: %s"
                       % ("close" if close else "keep-alive"))
        writer.write(("\r\n".join(headers) + "\r\n\r\n")
                     .encode("latin-1") + body)
        await writer.drain()

    async def _write_chunked(self, writer: asyncio.StreamWriter,
                             status: int, payload: object,
                             extra: Dict[str, str],
                             close: bool) -> None:
        text = payload if isinstance(payload, str) \
            else json.dumps(payload, sort_keys=True)
        body = text.encode("utf-8")
        headers = ["HTTP/1.1 %d %s"
                   % (status, _STATUS_TEXT.get(status, "Unknown")),
                   "Content-Type: %s"
                   % extra.pop("Content-Type",
                               OPENMETRICS_CONTENT_TYPE),
                   "Transfer-Encoding: chunked",
                   "Connection: %s"
                   % ("close" if close else "keep-alive")]
        writer.write(("\r\n".join(headers) + "\r\n\r\n")
                     .encode("latin-1"))
        for start in range(0, len(body), METRICS_CHUNK_BYTES):
            chunk = body[start:start + METRICS_CHUNK_BYTES]
            writer.write(b"%x\r\n%s\r\n" % (len(chunk), chunk))
        writer.write(b"0\r\n\r\n")
        await writer.drain()


class _RangeError(_HttpError):
    def __init__(self, err: ServiceError) -> None:
        super().__init__(err.status, err.code, err.detail)
        self.body = err.to_body()


def _json_body(body: bytes) -> Dict[str, object]:
    if not body:
        raise _HttpError(400, "invalid-body", "a JSON body is required")
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, "invalid-body",
                         "body is not valid JSON: %s" % exc)
    if not isinstance(parsed, dict):
        raise _HttpError(400, "invalid-body",
                         "body must be a JSON object")
    return parsed


def _parse_range(header: Optional[str], query: str
                 ) -> Tuple[int, Optional[int], bool]:
    """``(offset, length, was_ranged)`` from a Range header or an
    ``offset=&length=`` query string (header wins)."""
    if header:
        spec = header.strip().lower()
        if not spec.startswith("bytes="):
            raise _HttpError(400, "invalid-range",
                             "only bytes= ranges are supported")
        first = spec[len("bytes="):].split(",")[0].strip()
        start_s, sep, end_s = first.partition("-")
        if not sep or not start_s:
            raise _HttpError(400, "invalid-range",
                             "suffix ranges are not supported")
        try:
            start = int(start_s)
            end = int(end_s) if end_s else None
        except ValueError:
            raise _HttpError(400, "invalid-range",
                             "unparseable Range header")
        if end is not None and end < start:
            raise _HttpError(400, "invalid-range",
                             "range end precedes range start")
        length = None if end is None else end - start + 1
        return start, length, True
    if query:
        params = {}
        for pair in query.split("&"):
            key, _sep, value = pair.partition("=")
            params[key] = value
        if "offset" in params or "length" in params:
            try:
                offset = int(params.get("offset", "0"))
                length = (int(params["length"])
                          if "length" in params else None)
            except ValueError:
                raise _HttpError(400, "invalid-range",
                                 "offset/length must be integers")
            return offset, length, True
    return 0, None, False
