"""The fleet service layer: one brain behind every protocol face.

UpKit's server in the paper is a network endpoint: devices register,
request a single-use token, resolve a manifest for their channel, pull
the image in ranged chunks, and report the outcome.  This module is
that endpoint's *protocol-agnostic* core — :class:`FleetService` owns
the device registry, the token lifecycle, the stable/developer release
channels, chunked image serving out of the content-addressed artifact
store, and campaign CRUD over the crash-safe ``fleet/campaign.py``
machinery.  The HTTP face (:mod:`repro.serve.httpd`) and the simulated
CoAP face (:mod:`repro.serve.coapface`) are thin codecs over it: every
behaviour — single-use tokens, range semantics, WAL-backed campaign
resume, SLO verdict visibility — lives here exactly once, which is
what makes the two faces provably equivalent (the protocol-parity
tests compare their device-visible bytes).

Token lifecycle (single-use, enforced server-side)::

    issue_token  ->  ISSUED  --resolve_manifest-->  PREPARING
                                                       |
                               (ECDSA runs OUTSIDE the registry lock;
                                concurrent re-fetches await the
                                in-flight result)
                                                       v
                                                   PREPARED
                                                       |
                 chunk reads (any ranges, re-requests) |
                                                       v
                               report  ->  CLOSED  (replay => 403)

Only one token may be *open* (ISSUED, PREPARING or PREPARED) per
(device, target version) at a time: a concurrent second request races
on one lock and loses with a structured 409, no matter which protocol
face it arrived through.

The registry lock guards only short critical sections (table lookups
and state flips).  The expensive work — the P-256 envelope signature
in ``UpdateServer.prepare_update`` — runs outside it, through the
:mod:`repro.serve.signing` pool's shared fast engine, so a wave of
token resolutions never convoys registers and reports behind scalar
multiplication (that convoy was the whole serve-plane latency story
before: manifest p50 at 684 ms dragging every other endpoint's p99 to
~800 ms).

Crash model: :class:`DeviceFarm` is the simulation's stand-in for the
physical world — devices and their flash survive a service-process
crash; only the coordinator's RAM (token table, campaign threads)
dies.  A campaign created through the API journals to
``journal_dir/<name>.journal`` with its spec alongside, so a *fresh*
:class:`FleetService` over the same farm and journal directory resumes
it byte-identically (PR 7's invariants, now held through the network
layer).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Callable, Dict, List, Optional, Tuple

from ..core import (
    DeviceProfile,
    make_test_identities,
    provision_device,
)
from ..core.server import UpdateServer
from ..core.token import NO_DIFF_SUPPORT, DeviceToken
from ..core.vendor import VendorServer
from ..delta import ArtifactCache
from ..fleet import (
    Campaign,
    CampaignJournal,
    CoordinatorKilled,
    DeviceRecord,
    RetryGovernor,
    RetryPolicy,
    RolloutPolicy,
)
from ..memory import MemoryLayout
from ..net.transports import TransportRetryPolicy
from ..obs import (
    Action,
    FleetTelemetry,
    MetricsRegistry,
    SLO,
    bind_server,
)
from ..platform import NRF52840, ZEPHYR
from ..sim import SimulatedDevice
from ..workload import FirmwareGenerator
from .signing import SignerPool, shared_signer_pool

__all__ = [
    "APP_ID",
    "CHANNELS",
    "CampaignSpec",
    "DeviceFarm",
    "FleetService",
    "ServiceError",
]

APP_ID = 0x55504B49          # "UPKI"
LINK_OFFSET = 0x8000
CHANNELS = ("stable", "developer")

#: Token lifecycle states (see module docstring).
TOKEN_ISSUED = "issued"
TOKEN_PREPARING = "preparing"
TOKEN_PREPARED = "prepared"
TOKEN_CLOSED = "closed"


class ServiceError(Exception):
    """A client-visible failure with a protocol-mappable status.

    ``status`` uses HTTP semantics (400/403/404/409/416); the CoAP
    face maps it onto the closest 4.xx response code.  ``to_body``
    is the structured error body both faces serialize verbatim.
    """

    def __init__(self, code: str, status: int, detail: str) -> None:
        super().__init__("%s: %s" % (code, detail))
        self.code = code
        self.status = status
        self.detail = detail

    def to_body(self) -> Dict[str, object]:
        return {"error": {"code": self.code, "status": self.status,
                          "detail": self.detail}}


# -- campaign specs ------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """A network-created campaign, as the JSON body that created it.

    The spec is the *complete* recipe: fleets, firmware and releases
    derive deterministically from it, so persisting the spec next to
    the journal is all a resurrected service needs to rebuild the
    world and replay the WAL.
    """

    name: str
    devices: int = 8
    image_size: int = 8 * 1024
    channel: str = "stable"
    canary_fraction: float = 0.25
    max_attempts: int = 2
    governed: bool = True
    #: Optional PAUSE threshold (virtual seconds) for the
    #: ``p95_update_seconds`` fleet metric; None keeps the stock SLOs.
    slo_p95_seconds: Optional[float] = None

    _FIELDS = ("name", "devices", "image_size", "channel",
               "canary_fraction", "max_attempts", "governed",
               "slo_p95_seconds")

    def __post_init__(self) -> None:
        if not self.name or not all(
                ch.isalnum() or ch in "-_" for ch in self.name):
            raise ServiceError("invalid-spec", 400,
                               "campaign name must be [a-zA-Z0-9_-]+")
        if not (1 <= self.devices <= 100_000):
            raise ServiceError("invalid-spec", 400,
                               "devices must be in [1, 100000]")
        if self.image_size < 1024:
            raise ServiceError("invalid-spec", 400,
                               "image_size must be at least 1024")
        if self.channel not in CHANNELS:
            raise ServiceError("invalid-spec", 400,
                               "channel must be one of %s"
                               % (CHANNELS,))

    @classmethod
    def from_dict(cls, body: Dict[str, object]) -> "CampaignSpec":
        if not isinstance(body, dict):
            raise ServiceError("invalid-spec", 400,
                               "campaign spec must be a JSON object")
        unknown = set(body) - set(cls._FIELDS) - {"wait", "clear_slos"}
        if unknown:
            raise ServiceError("invalid-spec", 400,
                               "unknown spec keys: %s"
                               % ", ".join(sorted(unknown)))
        if "name" not in body:
            raise ServiceError("invalid-spec", 400,
                               "campaign spec needs a 'name'")
        kwargs = {key: body[key] for key in cls._FIELDS if key in body}
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ServiceError("invalid-spec", 400, str(exc))

    def to_dict(self) -> Dict[str, object]:
        return {key: getattr(self, key) for key in self._FIELDS}


# -- the simulated physical world ---------------------------------------------


class DeviceFarm:
    """Deterministic device fleets that outlive the service process.

    One farm entry per campaign name: the update server, vendor
    releases and hydrated :class:`~repro.fleet.campaign.DeviceRecord`
    fleet, all derived from the :class:`CampaignSpec` alone.  A
    service restart hands the *same* farm to a fresh
    :class:`FleetService`; because device flash lives here, a resumed
    campaign sees exactly the world the crashed coordinator left
    behind — which is what PR 7's resume contract requires.
    """

    def __init__(self) -> None:
        self._worlds: Dict[str, Tuple[CampaignSpec, UpdateServer,
                                      List[DeviceRecord]]] = {}
        self._lock = threading.Lock()

    def world(self, spec: CampaignSpec
              ) -> Tuple[UpdateServer, List[DeviceRecord]]:
        with self._lock:
            cached = self._worlds.get(spec.name)
            if cached is not None:
                if cached[0] != spec:
                    raise ServiceError(
                        "campaign-exists", 409,
                        "campaign %r already exists with a different "
                        "spec" % spec.name)
                return cached[1], cached[2]
            server, fleet = self._build(spec)
            self._worlds[spec.name] = (spec, server, fleet)
            return server, fleet

    @staticmethod
    def _build(spec: CampaignSpec
               ) -> Tuple[UpdateServer, List[DeviceRecord]]:
        generator = FirmwareGenerator(
            seed=b"serve-" + spec.name.encode("utf-8"))
        base = generator.firmware(spec.image_size, image_id=1)
        new = generator.os_version_change(base, revision=2)
        vendor_id, server_identity, anchors = make_test_identities()
        vendor = VendorServer(vendor_id, app_id=APP_ID,
                              link_offset=LINK_OFFSET)
        server = UpdateServer(server_identity)
        server.publish(vendor.release(base, 1))
        fleet: List[DeviceRecord] = []
        for index in range(spec.devices):
            internal = NRF52840.make_internal_flash()
            layout = MemoryLayout.configuration_a(internal, 64 * 1024)
            profile = DeviceProfile(
                device_id=0x5E000000 + index, app_id=APP_ID,
                link_offset=LINK_OFFSET, supports_differential=False)
            device = SimulatedDevice(board=NRF52840, os_profile=ZEPHYR,
                                     layout=layout, profile=profile,
                                     anchors=anchors)
            provision_device(server, layout.get("a"),
                             profile.device_id)
            fleet.append(DeviceRecord(
                name="%s-%03d" % (spec.name, index), device=device,
                transport="pull" if index % 2 else "push"))
        server.publish(vendor.release(new, 2))
        return server, fleet


# -- token + campaign bookkeeping ---------------------------------------------


@dataclass
class _TokenRecord:
    token: DeviceToken
    device_id: int
    version: int
    channel: str
    state: str = TOKEN_ISSUED
    envelope: bytes = b""
    payload: bytes = b""
    payload_sha256: str = ""
    #: Manifest document + its canonical JSON, cached at PREPARED so
    #: re-fetches and both protocol faces serve pre-serialized bytes.
    manifest: Optional[Dict[str, object]] = None
    manifest_bytes: bytes = b""
    #: Set by the thread that owns the PREPARING transition; concurrent
    #: resolutions of the same token wait on it instead of re-signing.
    ready: Optional[threading.Event] = None


@dataclass
class _CampaignRun:
    spec: CampaignSpec
    journal: CampaignJournal
    campaign: Campaign
    server: UpdateServer
    fleet: List[DeviceRecord]
    telemetry: FleetTelemetry
    state: str = "running"
    report: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    refreshes: int = 0
    thread: Optional[threading.Thread] = None


class FleetService:
    """Everything the protocol faces expose, in one object.

    Thread model: HTTP/CoAP handlers call in from the event loop
    thread or the signer pool's workers; campaign runs execute on
    worker threads.  One short-critical-section lock guards the
    registry/token tables — the single-use token guarantee is this
    lock, not any property of a particular transport.  Expensive work
    (the envelope signature) happens *outside* the lock under the
    per-token PREPARING state, so the lock is never held across
    scalar multiplication.
    """

    #: Upper bound on a ``wait: true`` campaign join; callers holding
    #: a network thread get control back and poll status instead.
    WAIT_TIMEOUT_SECONDS = 600.0

    #: Upper bound on awaiting another thread's in-flight manifest
    #: preparation before giving up with a 503.
    PREPARE_TIMEOUT_SECONDS = 60.0

    def __init__(self, farm: Optional[DeviceFarm] = None,
                 journal_dir: Optional[str] = None,
                 chunk_size: int = 2048,
                 signer: Optional[SignerPool] = None) -> None:
        if chunk_size < 16:
            raise ValueError("chunk_size must be at least 16")
        self.farm = farm or DeviceFarm()
        self.journal_dir = journal_dir
        self.chunk_size = chunk_size
        self.metrics = MetricsRegistry()
        self.artifacts = ArtifactCache()
        #: Dedicated ECDSA executor shared with the protocol faces;
        #: channel servers sign through its shared fast engine and
        #: single-flight signature cache.
        self.signer = signer or shared_signer_pool()
        vendor_id, identity, anchors = make_test_identities()
        self.anchors = anchors
        self._vendor = VendorServer(vendor_id, app_id=APP_ID,
                                    link_offset=LINK_OFFSET)
        self.channels: Dict[str, UpdateServer] = {
            name: UpdateServer(identity, artifacts=self.artifacts,
                               sign_fn=self.signer.signer_for(identity))
            for name in CHANNELS}
        self._channel_registries: Dict[str, MetricsRegistry] = {}
        for name, server in self.channels.items():
            registry = MetricsRegistry()
            bind_server(registry, server)
            self._channel_registries[name] = registry
        self._lock = threading.Lock()
        self._devices: Dict[int, Dict[str, object]] = {}
        self._tokens: Dict[str, _TokenRecord] = {}
        self._open: Dict[Tuple[int, int], str] = {}
        self._campaigns: Dict[str, _CampaignRun] = {}
        self._requests = self.metrics.counter(
            "serve.requests", "service calls handled")
        self._errors = self.metrics.counter(
            "serve.errors", "service calls rejected")
        self._sessions = self.metrics.counter(
            "serve.sessions_closed", "tokens closed by a report")
        self._replays = self.metrics.counter(
            "serve.token_replays", "closed tokens replayed")
        if journal_dir:
            os.makedirs(journal_dir, exist_ok=True)

    # -- channels --------------------------------------------------------------

    def seed_channels(self, image_size: int = 8 * 1024) -> None:
        """Publish the demo release train: v1+v2 on stable, +v3 dev.

        Idempotent — already-published versions are skipped, so a
        restarted server can re-seed without faulting."""
        generator = FirmwareGenerator(seed=b"serve-channels")
        base = generator.firmware(image_size, image_id=1)
        v2 = generator.os_version_change(base, revision=2)
        v3 = generator.os_version_change(base, revision=3)
        train = {name: (1, 2) for name in CHANNELS}
        train["developer"] = (1, 2, 3)
        # Build a release for every version missing from *any* channel:
        # keying off one channel alone (the old behaviour keyed off
        # "developer") crashed a restarted server whose stable channel
        # lost a version its developer channel still had.
        needed = {version
                  for name, versions in train.items()
                  for version in versions
                  if not self.channels[name].has_release(version)}
        # The vendor refuses to re-mint a version, so a re-seed reuses
        # its recorded release (deterministic signing makes it the
        # identical artifact anyway).
        releases = {version: (self._vendor.get_release(version)
                              if version in self._vendor.versions
                              else self._vendor.release(firmware,
                                                        version))
                    for version, firmware
                    in ((1, base), (2, v2), (3, v3))
                    if version in needed}
        for name, versions in train.items():
            server = self.channels[name]
            for version in versions:
                if not server.has_release(version):
                    server.publish(releases[version])

    def channel_status(self) -> Dict[str, object]:
        return {name: {"latest_version": server.latest_version,
                       "stats": server.stats.to_dict()}
                for name, server in self.channels.items()}

    # -- device registry -------------------------------------------------------

    def register_device(self, body: Dict[str, object]
                        ) -> Dict[str, object]:
        self._requests.inc()
        if not isinstance(body, dict):
            raise self._reject("invalid-body", 400,
                               "registration must be a JSON object")
        device_id = body.get("device_id")
        if not isinstance(device_id, int) or not (
                0 < device_id < 1 << 32):
            raise self._reject("invalid-device-id", 400,
                               "device_id must be a 32-bit integer")
        channel = body.get("channel", "stable")
        if channel not in self.channels:
            raise self._reject("unknown-channel", 404,
                               "no channel %r (have: %s)"
                               % (channel, ", ".join(CHANNELS)))
        current = body.get("current_version", 1)
        if not isinstance(current, int) or not (0 <= current < 1 << 16):
            raise self._reject("invalid-version", 400,
                               "current_version must be a 16-bit "
                               "integer")
        with self._lock:
            entry = self._devices.get(device_id)
            if entry is None:
                # The nonce counter starts at the factory sentinel and
                # only ever moves forward — re-registration must never
                # resurrect an already-spent token nonce.
                entry = {"device_id": device_id, "nonce": 0}
                self._devices[device_id] = entry
            entry["channel"] = channel
            entry["current_version"] = current
            return dict(entry)

    def device_status(self, device_id: int) -> Dict[str, object]:
        self._requests.inc()
        with self._lock:
            entry = self._devices.get(device_id)
            if entry is None:
                raise self._reject("unknown-device", 404,
                                   "device %d is not registered"
                                   % device_id)
            return dict(entry)

    def device_count(self) -> int:
        with self._lock:
            return len(self._devices)

    # -- token lifecycle -------------------------------------------------------

    def issue_token(self, device_id: int,
                    supports_differential: bool = False
                    ) -> Dict[str, object]:
        """Issue the single open token for (device, latest version).

        The whole check-and-issue runs under one lock: when two
        requests race — two HTTP connections, or HTTP against CoAP —
        exactly one wins; the other gets a structured 409.
        """
        self._requests.inc()
        with self._lock:
            entry = self._devices.get(device_id)
            if entry is None:
                raise self._reject("unknown-device", 404,
                                   "device %d is not registered"
                                   % device_id)
            server = self.channels[entry["channel"]]
            target = server.latest_version
            current = int(entry["current_version"])  # type: ignore
            if target <= current:
                raise self._reject(
                    "up-to-date", 409,
                    "device %d already runs version %d (channel "
                    "latest is %d)" % (device_id, current, target))
            key = (device_id, target)
            if key in self._open:
                raise self._reject(
                    "token-outstanding", 409,
                    "device %d already holds an open token for "
                    "version %d" % (device_id, target))
            nonce = int(entry["nonce"]) + 1  # type: ignore
            entry["nonce"] = nonce
            token = DeviceToken(
                device_id=device_id, nonce=nonce,
                current_version=(current if supports_differential
                                 else NO_DIFF_SUPPORT))
            token_hex = token.pack().hex()
            self._tokens[token_hex] = _TokenRecord(
                token=token, device_id=device_id, version=target,
                channel=str(entry["channel"]))
            self._open[key] = token_hex
            return {"token": token_hex, "nonce": nonce,
                    "target_version": target,
                    "channel": entry["channel"]}

    def _token_record(self, token_hex: str) -> _TokenRecord:
        record = self._tokens.get(token_hex)
        if record is None:
            raise self._reject("unknown-token", 404,
                               "no such token")
        if record.state == TOKEN_CLOSED:
            self._replays.inc()
            raise self._reject(
                "token-replayed", 403,
                "token for device %d was already used for version %d"
                % (record.device_id, record.version))
        return record

    def resolve_manifest(self, token_hex: str) -> Dict[str, object]:
        """Bind the token into a double-signed manifest (idempotent
        while the token is open — a device may re-fetch after a
        disconnect without burning its single use).

        The registry lock is held only to flip the token into
        PREPARING; the signature itself runs outside it.  Concurrent
        resolutions of the same token await the in-flight result
        instead of re-signing or blocking unrelated endpoints.
        """
        self._requests.inc()
        manifest, _ = self._prepare_token(token_hex)
        return dict(manifest)

    def resolve_manifest_encoded(self, token_hex: str) -> bytes:
        """:meth:`resolve_manifest` as canonical (sorted-keys) JSON
        bytes, pre-serialized once at PREPARED — the hot path both
        protocol faces write from without re-encoding per request."""
        self._requests.inc()
        _, encoded = self._prepare_token(token_hex)
        return encoded

    def _prepare_token(
            self, token_hex: str
    ) -> Tuple[Dict[str, object], bytes]:
        """Return the token's ``(manifest, canonical JSON)``, preparing
        it first if needed.  Exactly one caller runs
        ``prepare_update`` (the ECDSA work) for an ISSUED token — and
        runs it *outside* the registry lock."""
        while True:
            with self._lock:
                record = self._token_record(token_hex)
                if record.state == TOKEN_PREPARED:
                    assert record.manifest is not None
                    return record.manifest, record.manifest_bytes
                if record.state == TOKEN_PREPARING:
                    waiter = record.ready
                else:  # TOKEN_ISSUED: this thread becomes the preparer.
                    record.state = TOKEN_PREPARING
                    record.ready = threading.Event()
                    waiter = None
                    server = self.channels[record.channel]
            if waiter is None:
                break
            if not waiter.wait(self.PREPARE_TIMEOUT_SECONDS):
                raise self._reject(
                    "prepare-timeout", 503,
                    "in-flight manifest preparation did not finish "
                    "within %.0f s" % self.PREPARE_TIMEOUT_SECONDS)
            # Re-examine under the lock: PREPARED returns the cached
            # result; a failed preparer reset the token to ISSUED (we
            # retry as the preparer); a concurrent close raises 403.
            continue
        ready = record.ready
        try:
            image = server.prepare_update(record.token)
            envelope = image.envelope.pack()
            payload = self.artifacts.get_or_create(
                envelope, b"", b"serve:image-payload",
                lambda: image.payload)
            digest = sha256(payload).hexdigest()
        except BaseException:
            with self._lock:
                if record.state == TOKEN_PREPARING:
                    record.state = TOKEN_ISSUED
                    record.ready = None
            ready.set()          # waiters wake and retry as preparers
            raise
        manifest: Dict[str, object] = {
            "envelope": envelope.hex(),
            "version": record.version,
            "payload_size": len(payload),
            "payload_sha256": digest,
            "chunk_size": self.chunk_size,
        }
        encoded = json.dumps(manifest, sort_keys=True).encode("utf-8")
        with self._lock:
            if record.state == TOKEN_PREPARING:
                record.envelope = envelope
                record.payload = payload
                record.payload_sha256 = digest
                record.manifest = manifest
                record.manifest_bytes = encoded
                record.state = TOKEN_PREPARED
            # A concurrent close (report racing the resolve) wins: the
            # token stays CLOSED — never resurrected — but this caller
            # still gets the manifest its accepted request produced.
        ready.set()
        return manifest, encoded

    def read_chunk(self, token_hex: str, offset: int = 0,
                   length: Optional[int] = None
                   ) -> Tuple[memoryview, int]:
        """A byte range of the prepared payload: ``(data, total)``.

        Range semantics (shared verbatim by both faces): a negative
        offset/length is a 400; a zero-length range is satisfiable
        anywhere up to and including EOF; a nonzero range starting at
        or past EOF is a 416; a range *ending* past EOF truncates.
        Re-requesting an overlapping range is always allowed — that is
        how a transport resumes after a disconnect.

        The returned data is a :class:`memoryview` slice over the
        cached payload — zero-copy all the way to the socket; the view
        keeps the underlying bytes alive even if the token closes
        mid-transfer.
        """
        self._requests.inc()
        with self._lock:
            record = self._token_record(token_hex)
            if record.state != TOKEN_PREPARED:
                raise self._reject(
                    "not-prepared", 409,
                    "resolve the manifest before fetching chunks")
            envelope = record.envelope
            fallback = record.payload
        # Reads go through the content-addressed store (hits counted);
        # the token record keeps a strong reference so an LRU eviction
        # can never break an in-flight transfer.
        payload = self.artifacts.get_or_create(
            envelope, b"", b"serve:image-payload", lambda: fallback)
        total = len(payload)
        if offset < 0 or (length is not None and length < 0):
            raise self._reject("invalid-range", 400,
                               "offset and length must be >= 0")
        if length == 0:
            if offset > total:
                raise self._reject(
                    "range-unsatisfiable", 416,
                    "offset %d past end of %d-byte payload"
                    % (offset, total))
            return memoryview(b""), total
        if offset >= total:
            raise self._reject(
                "range-unsatisfiable", 416,
                "offset %d past end of %d-byte payload"
                % (offset, total))
        end = total if length is None else min(total, offset + length)
        return memoryview(payload)[offset:end], total

    def close_token(self, token_hex: str, body: Dict[str, object]
                    ) -> Dict[str, object]:
        """The device's outcome report burns the token."""
        self._requests.inc()
        if not isinstance(body, dict):
            raise self._reject("invalid-body", 400,
                               "report must be a JSON object")
        status = body.get("status")
        if status not in ("updated", "failed"):
            raise self._reject("invalid-report", 400,
                               "report status must be 'updated' or "
                               "'failed'")
        with self._lock:
            record = self._token_record(token_hex)
            record.state = TOKEN_CLOSED
            record.envelope = b""
            record.payload = b""
            record.manifest = None
            record.manifest_bytes = b""
            self._open.pop((record.device_id, record.version), None)
            entry = self._devices.get(record.device_id)
            if status == "updated" and entry is not None:
                entry["current_version"] = record.version
            self._sessions.inc()
            return {"device_id": record.device_id,
                    "version": record.version, "status": status,
                    "acknowledged": True}

    # -- campaigns -------------------------------------------------------------

    def _slos(self, spec: CampaignSpec) -> List[SLO]:
        slos = [SLO("failure-rate", "failure_rate", 0.5, Action.ABORT)]
        if spec.slo_p95_seconds is not None:
            slos.insert(0, SLO("update-time-p95", "p95_update_seconds",
                               spec.slo_p95_seconds, Action.PAUSE))
        return slos

    def _campaign_policy(self, spec: CampaignSpec) -> RolloutPolicy:
        return RolloutPolicy(canary_fraction=spec.canary_fraction,
                             abort_failure_rate=1.0,
                             max_attempts=spec.max_attempts)

    def _campaign_retry(self, spec: CampaignSpec) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=spec.max_attempts, backoff_initial=1.0,
            jitter=0.0,
            transport_retry=TransportRetryPolicy(max_attempts=4))

    def _spec_path(self, name: str) -> Optional[str]:
        if not self.journal_dir:
            return None
        return os.path.join(self.journal_dir, "%s.spec.json" % name)

    def _journal_path(self, name: str) -> Optional[str]:
        if not self.journal_dir:
            return None
        return os.path.join(self.journal_dir, "%s.journal" % name)

    def create_campaign(self, body: Dict[str, object],
                        kill_after_appends: Optional[int] = None
                        ) -> Dict[str, object]:
        """Create and start a campaign; journaled when the service
        has a ``journal_dir``.  ``body['wait']`` blocks until done —
        the faces pass it through so tests stay deterministic."""
        self._requests.inc()
        spec = CampaignSpec.from_dict(body)
        wait = bool(body.get("wait", False))
        with self._lock:
            if spec.name in self._campaigns:
                raise self._reject("campaign-exists", 409,
                                   "campaign %r already exists"
                                   % spec.name)
        server, fleet = self.farm.world(spec)
        spec_path = self._spec_path(spec.name)
        if spec_path:
            with open(spec_path, "w", encoding="utf-8") as fh:
                json.dump(spec.to_dict(), fh, sort_keys=True)
                fh.write("\n")
        journal = CampaignJournal(self._journal_path(spec.name))
        if kill_after_appends is not None:
            journal.arm_kill(kill_after_appends)
        run = self._make_run(spec, server, fleet, journal,
                             resuming=False)
        with self._lock:
            self._campaigns[spec.name] = run
        self._start(run, wait)
        return self.campaign_status(spec.name)

    def _make_run(self, spec: CampaignSpec, server: UpdateServer,
                  fleet: List[DeviceRecord], journal: CampaignJournal,
                  resuming: bool,
                  clear_slos: bool = False) -> _CampaignRun:
        telemetry = FleetTelemetry(
            slos=self._slos(spec) if not clear_slos
            else [SLO("failure-rate", "failure_rate", 1.0,
                      Action.ABORT)])
        governor = RetryGovernor() if spec.governed else None
        kwargs = dict(policy=self._campaign_policy(spec),
                      retry=self._campaign_retry(spec),
                      telemetry=telemetry, governor=governor)
        if resuming:
            campaign = Campaign.resume(server, fleet, journal,
                                       **kwargs)
        else:
            campaign = Campaign(server, fleet, journal=journal,
                                **kwargs)
        return _CampaignRun(spec=spec, journal=journal,
                            campaign=campaign, server=server,
                            fleet=fleet, telemetry=telemetry)

    def _start(self, run: _CampaignRun, wait: bool,
               merge_previous: bool = False) -> None:
        previous = run.report if merge_previous else None

        def execute() -> None:
            try:
                report = run.campaign.run()
                run.report = self._merge_reports(previous,
                                                 report.to_dict())
                if report.paused:
                    run.state = "paused"
                elif report.aborted:
                    run.state = "aborted"
                else:
                    run.state = "done"
            except CoordinatorKilled as exc:
                run.state = "killed"
                run.error = str(exc)
            except Exception as exc:  # surfaced via status, not lost
                run.state = "failed"
                run.error = "%s: %s" % (type(exc).__name__, exc)

        run.state = "running"
        run.error = None
        thread = threading.Thread(target=execute,
                                  name="campaign-%s" % run.spec.name,
                                  daemon=True)
        run.thread = thread
        thread.start()
        if wait:
            # Bounded: a hung campaign must not pin the caller (an
            # HTTP executor thread) forever — the status stays
            # "running"/busy and the client can poll.
            thread.join(self.WAIT_TIMEOUT_SECONDS)

    def _run(self, name: str) -> _CampaignRun:
        with self._lock:
            run = self._campaigns.get(name)
        if run is None:
            raise self._reject("unknown-campaign", 404,
                               "no campaign %r" % name)
        return run

    def list_campaigns(self) -> Dict[str, object]:
        self._requests.inc()
        with self._lock:
            names = sorted(self._campaigns)
        return {"campaigns": [self.campaign_status(name)
                              for name in names]}

    def campaign_status(self, name: str) -> Dict[str, object]:
        """Status in the update_manager shape: one busy flag, the
        rollout verdict, and enough journal/governor detail that an
        operator can see *why* a rollout paused or slowed."""
        run = self._run(name)
        report = run.report
        status: Dict[str, object] = {
            "name": name,
            "spec": run.spec.to_dict(),
            "state": run.state,
            "busy": run.state == "running",
            "refreshes": run.refreshes,
            "journal": run.journal.stats(),
            "slo": {
                "verdict": run.telemetry.verdict(),
                "wave_actions": [v.action.value
                                 for v in run.telemetry.verdicts],
            },
        }
        if report is not None:
            status["report"] = report
            status["slo"]["breaches"] = report.get("slo_breaches", [])
        if run.error is not None:
            status["error"] = run.error
        return status

    def refresh_campaign(self, name: str,
                         body: Optional[Dict[str, object]] = None
                         ) -> Dict[str, object]:
        """Re-drive a paused rollout's pending remainder.

        A journal-backed pause is sealed (the WAL's campaign-end
        record covers the paused report), so continuing it in place
        would fork the journal's history — those return a structured
        409 pointing at the resume/new-campaign paths instead.
        """
        self._requests.inc()
        body = body or {}
        run = self._run(name)
        run.refreshes += 1
        if run.state != "paused":
            return self.campaign_status(name)
        if self.journal_dir:
            raise self._reject(
                "refresh-journaled", 409,
                "campaign %r is journal-sealed; resume it or roll a "
                "follow-up campaign" % name)
        if bool(body.get("clear_slos", False)):
            run.campaign.telemetry = FleetTelemetry(
                slos=[SLO("failure-rate", "failure_rate", 1.0,
                          Action.ABORT)])
            run.telemetry = run.campaign.telemetry
        self._start(run, bool(body.get("wait", False)),
                    merge_previous=True)
        return self.campaign_status(name)

    @staticmethod
    def _merge_reports(previous: Optional[Dict[str, object]],
                       current: Dict[str, object]
                       ) -> Dict[str, object]:
        """Fold a refresh continuation into the paused report it
        extends, so ``campaign_status`` keeps showing devices the
        canary wave already updated rather than only the re-driven
        remainder."""
        if previous is None:
            return current
        merged = dict(current)
        for key in ("waves", "updated", "failed", "skipped",
                    "quarantined", "slo_breaches"):
            seen = list(previous.get(key, []))
            for item in current.get(key, []):
                if item not in seen:
                    seen.append(item)
            merged[key] = seen
        for key in ("retries", "link_interruptions",
                    "total_bytes_over_air", "total_energy_mj",
                    "wall_clock_seconds"):
            merged[key] = (previous.get(key, 0) or 0) + \
                (current.get(key, 0) or 0)
        done = (len(merged["updated"]) + len(merged["failed"])
                + len(merged["quarantined"]))
        merged["success_rate"] = (len(merged["updated"]) / done
                                  if done else 0.0)
        return merged

    def resume_campaign(self, name: str, wait: bool = False
                        ) -> Dict[str, object]:
        """Resurrect a killed campaign from its WAL.

        Works on a *fresh* service instance: the spec file rebuilds
        the world through the farm (same devices, same flash), the
        journal replays, and PR 7's contract carries the rest — zero
        re-flashes, zero double-issued tokens, byte-identical report.
        """
        self._requests.inc()
        with self._lock:
            run = self._campaigns.get(name)
        if run is not None and run.state == "running":
            raise self._reject("campaign-busy", 409,
                               "campaign %r is still running" % name)
        if run is not None:
            spec, journal = run.spec, run.journal
            server, fleet = run.server, run.fleet
        else:
            spec_path = self._spec_path(name)
            if not spec_path or not os.path.exists(spec_path):
                raise self._reject("unknown-campaign", 404,
                                   "no campaign %r (and no persisted "
                                   "spec to resume from)" % name)
            with open(spec_path, "r", encoding="utf-8") as fh:
                spec = CampaignSpec.from_dict(json.load(fh))
            server, fleet = self.farm.world(spec)
            journal = CampaignJournal(self._journal_path(name))
        resumed = self._make_run(spec, server, fleet, journal,
                                 resuming=True)
        with self._lock:
            self._campaigns[name] = resumed
        self._start(resumed, wait)
        return self.campaign_status(name)

    def delete_campaign(self, name: str) -> Dict[str, object]:
        self._requests.inc()
        run = self._run(name)
        if run.state == "running":
            raise self._reject("campaign-busy", 409,
                               "campaign %r is still running" % name)
        with self._lock:
            self._campaigns.pop(name, None)
        for path in (self._spec_path(name), self._journal_path(name)):
            if path and os.path.exists(path):
                os.remove(path)
        return {"name": name, "deleted": True}

    def wait_campaign(self, name: str, timeout: float = 60.0) -> None:
        run = self._run(name)
        if run.thread is not None:
            run.thread.join(timeout)

    # -- metrics ---------------------------------------------------------------

    def health_snapshot(self, telemetry: Optional[object] = None
                        ) -> Dict[str, object]:
        """The liveness body shared by ``GET /healthz`` (HTTP) and the
        ``healthz`` CoAP resource — the parity test compares the two
        faces' payload shape.  A face passes its
        :class:`~repro.serve.telemetry.ServeTelemetry` to contribute
        uptime, in-flight requests and event-loop lag; a bare service
        reports zeros for those so the shape never varies."""
        with self._lock:
            snapshot: Dict[str, object] = {
                "status": "ok",
                "devices_registered": len(self._devices),
                "campaigns": len(self._campaigns),
                "open_tokens": sum(
                    1 for record in self._tokens.values()
                    if record.state != TOKEN_CLOSED),
                "requests_total": int(self._requests.value),
            }
        if telemetry is not None:
            snapshot.update(telemetry.health())
        else:
            snapshot.update({"uptime_seconds": 0.0,
                             "in_flight_requests": 0,
                             "event_loop_lag_p99_ms": 0.0,
                             "slow_requests": 0, "loop_stalls": 0})
        return snapshot

    def openmetrics(self) -> str:
        from ..obs.export import to_openmetrics
        registries: List[Tuple[str, MetricsRegistry]] = [
            ("service", self.metrics)]
        registries += [("channel-%s" % name, registry)
                       for name, registry
                       in sorted(self._channel_registries.items())]
        return to_openmetrics(registries)

    # -- helpers ---------------------------------------------------------------

    def _reject(self, code: str, status: int,
                detail: str) -> ServiceError:
        self._errors.inc()
        return ServiceError(code, status, detail)
