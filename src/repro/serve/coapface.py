"""The simulated-CoAP face: block-wise named chunks, same service.

Constrained clients in the paper pull over CoAP, not HTTP.  This face
speaks real RFC 7252 datagrams (the :mod:`repro.net.coap` codec — the
same bytes a Zoap/libcoap stack would emit) over an in-process
datagram relay, and routes every request into the *same*
:class:`~repro.serve.service.FleetService` the HTTP face uses.  The
image resource follows the ICN-style named-chunk model (Gündoğan et
al.): the resource name is the token, each Block2 exchange names an
absolute chunk, and any block may be re-requested after a loss —
which is exactly the service layer's overlapping-range contract.

Request surface (URI paths mirror the HTTP routes)::

    POST devices                    register (JSON payload)
    POST devices/{id}/token         single-use token
    GET  manifests/{token}          envelope + digest (JSON, Block2)
    GET  images/{token}             payload bytes (Block2 named chunks)
    POST reports/{token}            outcome report
    GET  healthz                    liveness (same body as HTTP)

Errors carry the service's structured JSON body as the diagnostic
payload with the closest CoAP code (4.00/4.03/4.04/4.09), so a client
can branch on ``error.code`` identically over either protocol.

Observability (PR 9): requests land in the same
:class:`~repro.serve.telemetry.ServeTelemetry` shape as the HTTP face
(route/status access-log lines, per-route histograms into the
service's registry), and trace context crosses the datagram as the
elective :data:`~repro.net.coap.CoapOption.TRACEPARENT` option.  A
CON retransmission reuses the *encoded* datagram, so one logical
request keeps one trace_id no matter how many times the response was
lost; a §4.2 dedup replay is counted (``serve.coap_dedup_hits``) and
marked as an instant, never re-traced as fresh work.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from hashlib import sha256
from typing import Dict, Optional, Tuple

from ..net.coap import (
    Block,
    CoapCode,
    CoapError,
    CoapMessage,
    CoapOption,
    CoapType,
    VERSION,
)
from ..obs.asynctrace import NULL_ASYNC_TRACER, parse_traceparent
from .service import FleetService, ServiceError
from .telemetry import ServeTelemetry

__all__ = ["CoapFront", "CoapDatagramRelay", "CoapDeviceClient",
           "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 256

_STATUS_TO_COAP = {
    400: CoapCode.BAD_REQUEST,
    403: CoapCode.FORBIDDEN,
    404: CoapCode.NOT_FOUND,
    409: CoapCode.CONFLICT,
    416: CoapCode.BAD_REQUEST,
}

#: Access-log statuses derived from the encoded response's code byte
#: (byte 1 of any RFC 7252 header) — HTTP-ish numbers keep the two
#: faces' log lines directly comparable.
_COAP_CODE_TO_STATUS = {
    int(CoapCode.CREATED): 201,
    int(CoapCode.CHANGED): 200,
    int(CoapCode.CONTENT): 200,
    int(CoapCode.BAD_REQUEST): 400,
    int(CoapCode.FORBIDDEN): 403,
    int(CoapCode.NOT_FOUND): 404,
    int(CoapCode.CONFLICT): 409,
    int(CoapCode.INTERNAL_SERVER_ERROR): 500,
}


class CoapFront:
    """Datagram-in, datagram-out codec over one FleetService.

    Implements RFC 7252 §4.2 deduplication: a CON retransmission
    (same message ID + token — the client never got our response)
    replays the *cached* response instead of re-executing the
    request.  Without this, a lost response to a non-idempotent POST
    (token issuance, outcome report) would burn the single-use token
    and strand the device.

    Message IDs are scoped *per endpoint* (RFC 7252 §4.4): the dedup
    key includes the source endpoint passed into :meth:`handle`, so
    two clients that happen to emit the same token/MID sequence —
    deterministic client stacks do — never see each other's cached
    responses.
    """

    DEDUP_WINDOW = 1024

    def __init__(self, service: FleetService,
                 telemetry: Optional[ServeTelemetry] = None,
                 tracer=None) -> None:
        self.service = service
        self.telemetry = telemetry \
            or ServeTelemetry(service.metrics)
        self.tracer = tracer or NULL_ASYNC_TRACER
        self._dedup_hits = service.metrics.counter(
            "serve.coap_dedup_hits",
            "retransmissions answered from the dedup cache")
        self._seen: "OrderedDict[Tuple[bytes, bytes, int], bytes]" = \
            OrderedDict()
        #: Encoded Block2+Size2 option bytes keyed by
        #: (num, more, size, total): every image response for the same
        #: block geometry reuses the serialized prefix instead of
        #: re-running delta option encoding (see :meth:`_image`).
        self._block_options: Dict[Tuple[int, bool, int, int], bytes] \
            = {}

    def handle(self, datagram: bytes,
               endpoint: bytes = b"") -> bytes:
        """Process one encoded request from ``endpoint`` (the source
        address on a real UDP socket); always returns a response
        datagram (malformed requests get a 4.00, never silence).

        Synchronous — everything (including any ECDSA) runs on the
        calling thread.  The relay's async path
        (:meth:`handle_datagram`) offloads signing routes to the
        service's signer pool instead.
        """
        started = self.telemetry.now_fn()
        request, error = self._decode(datagram, started)
        if request is None:
            return error
        key, cached = self._dedup_lookup(endpoint, request)
        if cached is not None:
            return cached
        route = _coap_route_label(request)
        self.telemetry.request_started()
        response, status, trace_id = self._execute(request, started,
                                                   route)
        self._finish(key, response, status, route, started, trace_id)
        return response

    async def handle_datagram(self, datagram: bytes,
                              endpoint: bytes = b"") -> bytes:
        """:meth:`handle`, but signing routes (manifest resolution)
        run on the service's signer pool so the event loop never
        blocks on scalar multiplication.

        Dedup bookkeeping stays on the loop thread.  A retransmission
        arriving *while* the original is still signing re-executes the
        route — safe, because manifest resolution is idempotent while
        the token is open (concurrent resolutions await one in-flight
        preparation in the service); non-idempotent POSTs keep the
        strictly atomic inline path.
        """
        started = self.telemetry.now_fn()
        request, error = self._decode(datagram, started)
        if request is None:
            return error
        key, cached = self._dedup_lookup(endpoint, request)
        if cached is not None:
            return cached
        route = _coap_route_label(request)
        self.telemetry.request_started()
        if self._needs_signer(request):
            response, status, trace_id = \
                await self.service.signer.dispatch(
                    self._execute, request, started, route)
        else:
            response, status, trace_id = self._execute(request,
                                                       started, route)
        self._finish(key, response, status, route, started, trace_id)
        return response

    @staticmethod
    def _needs_signer(request: CoapMessage) -> bool:
        if request.code != CoapCode.GET:
            return False
        parts = [p for p in request.uri_path().split("/") if p]
        return len(parts) == 2 and parts[0] == "manifests"

    def _decode(self, datagram: bytes, started: float
                ) -> Tuple[Optional[CoapMessage], Optional[bytes]]:
        try:
            return CoapMessage.decode(datagram), None
        except CoapError as exc:
            response = CoapMessage(
                mtype=CoapType.ACK, code=CoapCode.BAD_REQUEST,
                message_id=0,
                payload=_error_body("bad-datagram", 400,
                                    str(exc))).encode()
            self.telemetry.request_started()
            self.telemetry.observe_request(
                "coap", "<bad-datagram>", 400, len(response),
                self.telemetry.now_fn() - started)
            return None, response

    def _dedup_lookup(self, endpoint: bytes, request: CoapMessage
                      ) -> Tuple[Tuple[bytes, bytes, int],
                                 Optional[bytes]]:
        key = (endpoint, request.token, request.message_id)
        cached = self._seen.get(key)
        if cached is not None:
            # A replay is *not* new work: count the cache hit, mark it
            # in the trace, and keep the original request's accounting.
            self._seen.move_to_end(key)
            self._dedup_hits.inc()
            if self.tracer.enabled:
                self.tracer.instant("coap.dedup",
                                    category="serve.coap",
                                    args={"mid": request.message_id})
            return key, cached
        return key, None

    def _execute(self, request: CoapMessage, started: float,
                 route: str) -> Tuple[bytes, int, Optional[str]]:
        """Route the request and build its response under the request
        span — runs inline (sync path) or on a signer-pool worker."""
        tracer = self.tracer
        remote = None
        if tracer.enabled:
            raw = request.option(CoapOption.TRACEPARENT)
            if raw:
                try:
                    remote = parse_traceparent(raw.decode("ascii"))
                except UnicodeDecodeError:
                    remote = None
        span_args = {"route": route}
        if remote is not None:
            span_args["remote_parent_id"] = remote[1]
        with tracer.span("coap.request", category="serve.coap",
                         start=started,
                         trace_id=remote[0] if remote else None,
                         **span_args) as root:
            try:
                response = self._route(request)
                status = _COAP_CODE_TO_STATUS.get(response[1], 200)
            except ServiceError as exc:
                status = exc.status
                response = self._error(request, exc.status,
                                       json.dumps(exc.to_body(),
                                                  sort_keys=True)
                                       .encode("utf-8"))
            except Exception as exc:
                status = 500
                response = CoapMessage(
                    mtype=CoapType.ACK,
                    code=CoapCode.INTERNAL_SERVER_ERROR,
                    message_id=request.message_id, token=request.token,
                    payload=_error_body(
                        "internal", 500,
                        "%s: %s" % (type(exc).__name__, exc))).encode()
            if root is not None:
                root.args["status"] = status
        return response, status, \
            (root.trace_id if root is not None else None)

    def _finish(self, key: Tuple[bytes, bytes, int], response: bytes,
                status: int, route: str, started: float,
                trace_id: Optional[str]) -> None:
        self._seen[key] = response
        while len(self._seen) > self.DEDUP_WINDOW:
            self._seen.popitem(last=False)
        self.telemetry.observe_request(
            "coap", route, status, len(response),
            self.telemetry.now_fn() - started, trace_id=trace_id)

    # -- routing ---------------------------------------------------------------

    def _route(self, request: CoapMessage) -> bytes:
        parts = [p for p in request.uri_path().split("/") if p]
        service = self.service
        if request.code == CoapCode.POST:
            if parts == ["devices"]:
                return self._json_reply(
                    request, CoapCode.CREATED,
                    self._call(service.register_device,
                               _json_payload(request)))
            if len(parts) == 3 and parts[0] == "devices" \
                    and parts[2] == "token":
                body = _json_payload(request, optional=True)
                return self._json_reply(
                    request, CoapCode.CHANGED,
                    self._call(service.issue_token,
                               _device_id(parts[1]),
                               bool(body.get("supports_differential",
                                             False))))
            if len(parts) == 2 and parts[0] == "reports":
                return self._json_reply(
                    request, CoapCode.CHANGED,
                    self._call(service.close_token, parts[1],
                               _json_payload(request)))
        elif request.code == CoapCode.GET:
            if parts == ["healthz"]:
                body = json.dumps(
                    service.health_snapshot(self.telemetry),
                    sort_keys=True).encode("utf-8")
                return self._blockwise(request, body)
            if len(parts) == 2 and parts[0] == "manifests":
                # The service pre-serializes the canonical
                # (sort_keys) JSON once per token; both faces serve
                # those exact bytes.
                body = self._call(service.resolve_manifest_encoded,
                                  parts[1])
                return self._blockwise(request, body)
            if len(parts) == 2 and parts[0] == "images":
                return self._image(request, parts[1])
        raise ServiceError("unknown-route", 404,
                           "%s %s is not a service endpoint"
                           % (request.code.name, "/".join(parts)))

    def _call(self, fn, *args):
        """A service call traced as ``service.<name>`` (same span
        naming as the HTTP face, so merged traces read uniformly)."""
        with self.tracer.span("service.%s" % fn.__name__,
                              category="serve.service"):
            return fn(*args)

    def _image(self, request: CoapMessage, token_hex: str) -> bytes:
        """Named-chunk GET: Block2 names an absolute payload range.

        The hot path of a swarm download.  The payload slice arrives
        as a :class:`memoryview` (no copy in the service) and the
        encoded Block2+Size2 option bytes are cached per block
        geometry, so the response datagram is assembled with a single
        ``join`` — header, token, cached options, marker, slice —
        instead of re-encoding a :class:`CoapMessage` per chunk.
        """
        block = request.block2() or Block(num=0, more=False,
                                          size=DEFAULT_BLOCK_SIZE)
        offset = block.num * block.size
        data, total = self._call(self.service.read_chunk, token_hex,
                                 offset, block.size)
        more = offset + len(data) < total
        options = self._block_option_bytes(block.num, more,
                                           block.size, total)
        header = bytes((
            (VERSION << 6) | (int(CoapType.ACK) << 4)
            | len(request.token),
            int(CoapCode.CONTENT))) \
            + request.message_id.to_bytes(2, "big")
        if len(data):
            return b"".join((header, request.token, options,
                             b"\xff", data))
        return b"".join((header, request.token, options))

    def _block_option_bytes(self, num: int, more: bool, size: int,
                            total: int) -> bytes:
        """Encoded Block2+Size2 options for one block geometry,
        built once via the codec and reused (the codec's own output:
        a probe message with an empty token encodes as a 4-byte
        header followed by exactly the option bytes)."""
        key = (num, more, size, total)
        cached = self._block_options.get(key)
        if cached is None:
            probe = CoapMessage(mtype=CoapType.ACK,
                                code=CoapCode.CONTENT, message_id=0)
            probe.add_option(CoapOption.BLOCK2,
                             Block(num=num, more=more,
                                   size=size).encode())
            probe.add_option(CoapOption.SIZE2,
                             total.to_bytes(4, "big"))
            cached = bytes(probe.encode()[4:])
            if len(self._block_options) >= 4096:
                self._block_options.clear()
            self._block_options[key] = cached
        return cached

    def _blockwise(self, request: CoapMessage, body: bytes) -> bytes:
        block = request.block2() or Block(num=0, more=False,
                                          size=DEFAULT_BLOCK_SIZE)
        start = block.num * block.size
        if start > len(body):
            raise ServiceError("range-unsatisfiable", 416,
                               "block %d past end of %d-byte resource"
                               % (block.num, len(body)))
        chunk = body[start:start + block.size]
        more = start + block.size < len(body)
        response = CoapMessage(
            mtype=CoapType.ACK, code=CoapCode.CONTENT,
            message_id=request.message_id, token=request.token,
            payload=chunk)
        response.add_option(
            CoapOption.BLOCK2,
            Block(num=block.num, more=more, size=block.size).encode())
        response.add_option(CoapOption.SIZE2,
                            len(body).to_bytes(4, "big"))
        return response.encode()

    def _json_reply(self, request: CoapMessage, code: CoapCode,
                    body: Dict[str, object]) -> bytes:
        return CoapMessage(
            mtype=CoapType.ACK, code=code,
            message_id=request.message_id, token=request.token,
            payload=json.dumps(body, sort_keys=True)
            .encode("utf-8")).encode()

    def _error(self, request: CoapMessage, status: int,
               payload: bytes) -> bytes:
        return CoapMessage(
            mtype=CoapType.ACK,
            code=_STATUS_TO_COAP.get(status,
                                     CoapCode.INTERNAL_SERVER_ERROR),
            message_id=request.message_id, token=request.token,
            payload=payload).encode()


class CoapDatagramRelay:
    """The in-process virtual network between client and front.

    One async hop per direction; a real UDP socket pair would carry
    identical bytes.  ``endpoint`` plays the role of the datagram's
    source address and is forwarded into the front's per-endpoint
    dedup scope.  ``drop_every`` drops every Nth *response*
    datagram, which is how the tests exercise named-chunk
    re-requests after loss.
    """

    def __init__(self, front: CoapFront,
                 drop_every: int = 0) -> None:
        self.front = front
        self.drop_every = drop_every
        self.exchanges = 0
        self.dropped = 0

    async def request(self, datagram: bytes,
                      endpoint: bytes = b"") -> Optional[bytes]:
        await asyncio.sleep(0)          # the uplink hop
        response = await self.front.handle_datagram(datagram,
                                                    endpoint)
        self.exchanges += 1
        if self.drop_every and self.exchanges % self.drop_every == 0:
            self.dropped += 1
            return None                 # the downlink datagram is lost
        await asyncio.sleep(0)          # the downlink hop
        return response


class CoapDeviceClient:
    """A constrained client driving the full session over datagrams.

    ``run_session`` performs register → token → manifest → block-wise
    named-chunk download → report and returns the device-visible
    outcome — the same tuple the HTTP swarm client produces, which is
    what the protocol-parity test compares.
    """

    def __init__(self, relay: CoapDatagramRelay, device_id: int,
                 channel: str = "stable",
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 max_retries: int = 8, tracer=None) -> None:
        self.relay = relay
        self.device_id = device_id
        self.channel = channel
        self.block_size = block_size
        self.max_retries = max_retries
        self.tracer = tracer or NULL_ASYNC_TRACER
        # The client's source address: every client must present a
        # distinct endpoint, because its deterministic token/MID
        # sequence is only unique within that scope.
        self.endpoint = b"coap-ep-%d" % device_id
        self._mid = 0
        self._token_counter = 0

    async def run_session(self) -> Dict[str, object]:
        with self.tracer.span("device.session", category="device",
                              device_id=self.device_id,
                              proto="coap"):
            return await self._run_session()

    async def _run_session(self) -> Dict[str, object]:
        register = await self._post_json(
            "devices", {"device_id": self.device_id,
                        "channel": self.channel})
        issued = await self._post_json(
            "devices/%d/token" % self.device_id, {})
        token_hex = str(issued["token"])
        manifest = json.loads((await self._get_blockwise(
            "manifests/%s" % token_hex)).decode("utf-8"))
        payload = await self._get_blockwise(
            "images/%s" % token_hex,
            expected=int(manifest["payload_size"]))
        digest_ok = (sha256(payload).hexdigest()
                     == manifest["payload_sha256"])
        report = await self._post_json(
            "reports/%s" % token_hex,
            {"status": "updated" if digest_ok else "failed"})
        return {
            "register": register,
            "token": token_hex,
            "envelope": manifest["envelope"],
            "version": manifest["version"],
            "payload": payload,
            "digest_ok": digest_ok,
            "report": report,
        }

    # -- exchanges -------------------------------------------------------------

    async def _exchange(self, request: CoapMessage) -> CoapMessage:
        """CON semantics: retransmit until a response datagram lands."""
        datagram = request.encode()
        for _attempt in range(self.max_retries):
            response = await self.relay.request(datagram,
                                                self.endpoint)
            if response is not None:
                return CoapMessage.decode(response)
        raise CoapError("no response after %d retransmissions"
                        % self.max_retries)

    def _request(self, code: CoapCode, path: str) -> CoapMessage:
        self._mid = (self._mid + 1) & 0xFFFF
        self._token_counter += 1
        message = CoapMessage(
            mtype=CoapType.CON, code=code, message_id=self._mid,
            token=self._token_counter.to_bytes(4, "big"))
        for segment in path.split("/"):
            message.add_option(CoapOption.URI_PATH,
                               segment.encode("utf-8"))
        # Trace context rides in the datagram itself; because
        # _exchange retransmits the already-encoded bytes, a lost
        # response never mints a second trace_id for the same request.
        traceparent = self.tracer.current_traceparent()
        if traceparent is not None:
            message.add_option(CoapOption.TRACEPARENT,
                               traceparent.encode("ascii"))
        return message

    async def _post_json(self, path: str,
                         body: Dict[str, object]) -> Dict[str, object]:
        with self.tracer.span("coap.post", category="device",
                              resource=path.split("/")[0]):
            request = self._request(CoapCode.POST, path)
            request.payload = json.dumps(body, sort_keys=True) \
                .encode("utf-8")
            response = await self._exchange(request)
        parsed = json.loads(response.payload.decode("utf-8")) \
            if response.payload else {}
        if response.code not in (CoapCode.CONTENT, CoapCode.CHANGED,
                                 CoapCode.CREATED):
            raise ServiceError(
                str(parsed.get("error", {}).get("code", "coap")),
                int(parsed.get("error", {}).get("status", 500)),
                str(parsed.get("error", {}).get("detail",
                                                response.code.name)))
        return parsed

    async def _get_blockwise(self, path: str,
                             expected: Optional[int] = None) -> bytes:
        """Named-chunk download; lost responses re-request the same
        absolute block — overlap the service must (and does) allow."""
        with self.tracer.span("coap.get", category="device",
                              resource=path.split("/")[0]):
            return await self._get_blocks(path, expected)

    async def _get_blocks(self, path: str,
                          expected: Optional[int] = None) -> bytes:
        chunks: Dict[int, bytes] = {}
        num = 0
        total: Optional[int] = expected
        while True:
            request = self._request(CoapCode.GET, path)
            request.add_option(
                CoapOption.BLOCK2,
                Block(num=num, more=False,
                      size=self.block_size).encode())
            response = await self._exchange(request)
            if response.code != CoapCode.CONTENT:
                parsed = json.loads(
                    response.payload.decode("utf-8")) \
                    if response.payload else {}
                error = parsed.get("error", {})
                raise ServiceError(str(error.get("code", "coap")),
                                   int(error.get("status", 500)),
                                   str(error.get("detail",
                                                 response.code.name)))
            chunks[num] = response.payload
            size2 = response.option(CoapOption.SIZE2)
            if size2 is not None:
                total = int.from_bytes(size2, "big")
            block = response.block2()
            if block is None or not block.more:
                break
            num += 1
        body = b"".join(chunks[i] for i in sorted(chunks))
        if total is not None and len(body) != total:
            raise CoapError("assembled %d bytes, resource is %d"
                            % (len(body), total))
        return body


def _json_payload(request: CoapMessage,
                  optional: bool = False) -> Dict[str, object]:
    if not request.payload:
        if optional:
            return {}
        raise ServiceError("invalid-body", 400,
                           "a JSON payload is required")
    try:
        parsed = json.loads(request.payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError("invalid-body", 400,
                           "payload is not valid JSON: %s" % exc)
    if not isinstance(parsed, dict):
        raise ServiceError("invalid-body", 400,
                           "payload must be a JSON object")
    return parsed


def _coap_route_label(request: CoapMessage) -> str:
    """Bounded route label for access logs/metrics (no token hex)."""
    try:
        method = CoapCode(request.code).name
    except ValueError:             # pragma: no cover - codec rejects
        method = str(int(request.code))
    parts = [p for p in request.uri_path().split("/") if p]
    if not parts:
        return "%s <other>" % method
    head = parts[0]
    if head == "healthz" and len(parts) == 1:
        return "%s healthz" % method
    if head == "devices":
        if len(parts) == 1:
            return "%s devices" % method
        if len(parts) == 3 and parts[2] == "token":
            return "%s devices/{id}/token" % method
    if head in ("manifests", "images", "reports") and len(parts) == 2:
        return "%s %s/{token}" % (method, head)
    return "%s <other>" % method


def _device_id(raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ServiceError("invalid-device-id", 400,
                           "device id must be an integer")


def _error_body(code: str, status: int, detail: str) -> bytes:
    return json.dumps({"error": {"code": code, "status": status,
                                 "detail": detail}},
                      sort_keys=True).encode("utf-8")
