"""The serve plane's signer pool: ECDSA off the event loop, batched.

`BENCH_server.json` before this module told one story: manifest p50 at
684 ms against register p50 at 18 ms, because the per-token P-256
envelope signature ran *on the event loop* and *inside the global
service lock*.  Every endpoint convoyed behind scalar multiplication.

:class:`SignerPool` fixes the placement half of that problem:

* A small dedicated :class:`~concurrent.futures.ThreadPoolExecutor`
  owns all ECDSA work.  The HTTP and CoAP faces dispatch manifest
  resolution through :meth:`dispatch` the way campaign routes already
  use ``run_in_executor``, so the loop thread never touches the curve.
* All workers sign through **one shared fast engine** — one fixed-window
  generator table, built once and reused by every thread — and one
  shared single-flight :class:`~repro.crypto.engine.SignatureCache`, so
  a wave of devices pulling the same release pays for one signature.
  Engine parity is contractual (byte-identical output), so signing
  through the fast engine never changes what devices verify.
* Submissions drain in **batches**: a wave of simultaneous token
  resolutions is popped from one queue by at most ``workers`` drainer
  tasks, amortising executor wake-ups across the wave instead of paying
  one executor round-trip per job.

Jobs run under :func:`contextvars.copy_context` copied at submit time,
so asynctrace spans recorded inside a job land under the submitting
request's span — that is what feeds ``cli swarm --profile``'s
queue-wait / sign phase split.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core.keys import SigningIdentity
from ..crypto.engine import (CryptoEngine, SignatureCache, available_engines)

__all__ = ["SignerPool", "SignerPoolStats", "shared_signer_pool"]

DEFAULT_WORKERS = 4


@dataclass
class SignerPoolStats:
    """Counters the bench embeds next to the endpoint latencies."""

    signs: int = 0
    jobs: int = 0
    batches: int = 0
    max_batch: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "signs": self.signs,
            "jobs": self.jobs,
            "batches": self.batches,
            "max_batch": self.max_batch,
        }


class SignerPool:
    """A dedicated executor for ECDSA work with batched queue drains.

    ``engine`` defaults to the process-wide "fast" engine instance so
    every pool (and every worker thread) shares the same precomputed
    P-256 base table.  ``sign`` / ``signer_for`` route through the
    shared :class:`SignatureCache`, which both memoises deterministic
    signatures and coalesces concurrent duplicates into a single
    producer (exact accounting audited by the perf_smoke suite).
    """

    def __init__(self, workers: Optional[int] = None,
                 engine: Optional[CryptoEngine] = None,
                 signature_cache: Optional[SignatureCache] = None) -> None:
        if workers is None:
            workers = min(DEFAULT_WORKERS, max(2, os.cpu_count() or 1))
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.engine = engine or available_engines()["fast"]
        # `is None`, not `or`: an empty SignatureCache is falsy
        # (len() == 0), and a private cache passed by a test must not
        # silently fall back to the process-shared one.
        self.signatures = signature_cache if signature_cache is not None \
            else _shared_signature_cache()
        self.stats = SignerPoolStats()
        self._lock = threading.Lock()
        self._queue: "deque" = deque()
        self._drainers = 0
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="upkit-signer")

    # -- signing ----------------------------------------------------------

    def sign(self, identity: SigningIdentity, message: bytes) -> bytes:
        """Sign ``message`` under ``identity`` via the shared cache.

        Deterministic signing makes ``(key scalar, digest)`` a complete
        cache key; concurrent duplicates single-flight on the cache.
        """
        engine = self.engine
        digest = engine.sha256(message)
        key = (identity.private_key.scalar, digest)

        def produce() -> bytes:
            with self._lock:
                self.stats.signs += 1
            return identity.private_key.sign_digest(digest, engine).encode()

        return self.signatures.get_or_sign(key, produce)

    def signer_for(self, identity: SigningIdentity) -> Callable[[bytes], bytes]:
        """A ``sign(message) -> bytes`` closure for ``UpdateServer``."""
        return lambda message: self.sign(identity, message)

    # -- batched dispatch -------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any,
               tracer: Any = None) -> "Future":
        """Queue ``fn(*args)`` for a pool worker; returns its future.

        The job runs under a context copied now, so tracer state (the
        current request span) follows it onto the worker thread; when an
        enabled ``tracer`` is passed, the time spent queued is recorded
        as a ``sign.queue`` span under that request.  A drainer task is
        spawned only when fewer than ``workers`` are already running —
        a burst of submissions is drained in batches rather than paying
        one executor wake-up per job.
        """
        future: "Future" = Future()
        ctx = contextvars.copy_context()
        if tracer is not None and not getattr(tracer, "enabled", False):
            tracer = None
        queued_at = tracer.now_fn() if tracer is not None \
            else time.perf_counter()
        job = (future, ctx, fn, args, tracer, queued_at)
        with self._lock:
            self._queue.append(job)
            spawn = self._drainers < self.workers
            if spawn:
                self._drainers += 1
        if spawn:
            self._executor.submit(self._drain)
        return future

    async def dispatch(self, fn: Callable[..., Any], *args: Any,
                       tracer: Any = None) -> Any:
        """Await ``fn(*args)`` on the pool from a coroutine."""
        import asyncio

        return await asyncio.wrap_future(
            self.submit(fn, *args, tracer=tracer))

    def _drain(self) -> None:
        drained = 0
        while True:
            with self._lock:
                if not self._queue:
                    self._drainers -= 1
                    self.stats.batches += 1
                    self.stats.jobs += drained
                    if drained > self.stats.max_batch:
                        self.stats.max_batch = drained
                    return
                future, ctx, fn, args, tracer, queued_at = \
                    self._queue.popleft()
            if not future.set_running_or_notify_cancel():
                continue
            if tracer is not None:
                started = tracer.now_fn()
                ctx.run(tracer.record_span, "sign.queue", queued_at, started,
                        category="serve.sign")
            try:
                result = ctx.run(fn, *args)
            except BaseException as exc:  # propagate through the future
                future.set_exception(exc)
            else:
                future.set_result(result)
            drained += 1

    # -- lifecycle --------------------------------------------------------

    def stats_snapshot(self) -> SignerPoolStats:
        with self._lock:
            return SignerPoolStats(**self.stats.to_dict())

    def close(self) -> None:
        """Shut the executor down (private pools in tests; the shared
        pool lives for the process)."""
        self._executor.shutdown(wait=True)


# Re-entrant: shared_signer_pool() constructs a SignerPool while
# holding it, and that constructor takes it again for the shared
# signature cache.
_SHARED_LOCK = threading.RLock()
_SHARED_POOL: Optional[SignerPool] = None
_SHARED_SIGNATURES: Optional[SignatureCache] = None


def _shared_signature_cache() -> SignatureCache:
    global _SHARED_SIGNATURES
    with _SHARED_LOCK:
        if _SHARED_SIGNATURES is None:
            _SHARED_SIGNATURES = SignatureCache()
        return _SHARED_SIGNATURES


def shared_signer_pool() -> SignerPool:
    """The process-wide pool: one executor no matter how many
    ``FleetService`` instances a test session creates."""
    global _SHARED_POOL
    with _SHARED_LOCK:
        if _SHARED_POOL is None:
            _SHARED_POOL = SignerPool()
        return _SHARED_POOL
