"""Request-scoped telemetry for the serve plane.

The serve faces measure *what the server did* — not what simulated
devices did — and this module is where those measurements land:

* a **JSON-lines access log** (route, status, bytes, duration,
  trace_id), kept in a bounded in-memory ring and optionally appended
  to a file (``cli serve --access-log``);
* **per-route latency histograms**, request counters by route/status,
  a bytes-served counter and an in-flight gauge, all bound into the
  owning :class:`~repro.serve.service.FleetService`'s
  ``MetricsRegistry`` so ``GET /metrics`` reports the server's own
  traffic alongside device/engine stats;
* **slow-request records**: any request over ``slow_request_ms``
  is logged together with its span tree (from the
  :class:`~repro.obs.asynctrace.AsyncTracer`), so a stall is
  attributable without re-running under a profiler;
* the **event-loop watchdog** (:class:`EventLoopWatchdog`): an asyncio
  task that sleeps a fixed interval and measures how late the loop
  woke it — the scheduling-lag signal that would have caught the PR 8
  ``run_in_executor`` stalls.  Lag samples feed a gauge, a histogram
  and the ``/healthz`` p99.

Route labels are *low-cardinality by construction*: the faces pass
``"GET /images/{token}"``, never a raw path with token hex, so metric
families stay bounded no matter how many sessions run.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from ..obs.slo import percentile

__all__ = ["ServeTelemetry", "EventLoopWatchdog",
           "REQUEST_LATENCY_MS_BUCKETS", "LOOP_LAG_MS_BUCKETS"]

#: Request-latency histogram bounds (milliseconds): sub-millisecond
#: in-memory hits through multi-second campaign builds.
REQUEST_LATENCY_MS_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                              100.0, 250.0, 500.0, 1000.0, 5000.0)

#: Event-loop scheduling-lag bounds (milliseconds).  A healthy loop
#: sits in the lowest buckets; an executor-starved loop climbs.
LOOP_LAG_MS_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0)

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _route_slug(route: str) -> str:
    slug = _SLUG_RE.sub("_", route.lower()).strip("_")
    return slug or "unknown"


class ServeTelemetry:
    """Access log + per-route metrics + slow-request records.

    One instance per server face (HTTP or CoAP front), all binding
    into the same service-owned registry — metric families are
    get-or-create, so both faces sharing a service share counters.
    """

    def __init__(self, registry: MetricsRegistry,
                 access_log_path: Optional[str] = None,
                 slow_request_ms: float = 500.0,
                 max_records: int = 256,
                 now_fn=time.perf_counter) -> None:
        self.registry = registry
        self.slow_request_ms = slow_request_ms
        self.now_fn = now_fn
        self.started = now_fn()
        #: Bounded in-memory tail of the access log (newest last).
        self.records: Deque[Dict[str, Any]] = deque(maxlen=max_records)
        self._file = open(access_log_path, "a", encoding="utf-8") \
            if access_log_path else None
        self._in_flight = registry.gauge(
            "serve.in_flight_requests", "requests currently executing")
        self._bytes = registry.counter(
            "serve.bytes_served", "response body bytes sent")
        self._slow = registry.counter(
            "serve.slow_requests",
            "requests over the slow-request threshold")
        self._stalls = registry.counter(
            "serve.loop.stalls", "event-loop ticks over the stall "
            "threshold")
        self._lag_gauge = registry.gauge(
            "serve.loop.lag_ms", "last sampled event-loop lag")
        self._lag_hist = registry.histogram(
            "serve.loop.lag_hist_ms", LOOP_LAG_MS_BUCKETS,
            "event-loop scheduling lag")
        self._lag_samples: Deque[float] = deque(maxlen=2048)

    # -- request accounting -------------------------------------------------

    def request_started(self) -> None:
        self._in_flight.inc()

    def observe_request(self, proto: str, route: str, status: int,
                        nbytes: int, duration_s: float,
                        trace_id: Optional[str] = None,
                        span_tree: Optional[List[Dict[str, Any]]]
                        = None) -> None:
        """Account one finished request and emit its access-log line."""
        self._in_flight.inc(-1.0)
        slug = _route_slug(route)
        self.registry.counter(
            "serve.requests_by_route.%s.%d" % (slug, status),
            "requests: %s -> %d" % (route, status)).inc()
        self._bytes.inc(nbytes)
        duration_ms = duration_s * 1000.0
        self.registry.histogram(
            "serve.latency_ms.%s" % slug, REQUEST_LATENCY_MS_BUCKETS,
            "request latency: %s" % route).observe(duration_ms)
        record: Dict[str, Any] = {
            "t": round(time.time(), 3),
            "proto": proto,
            "route": route,
            "status": status,
            "bytes": nbytes,
            "duration_ms": round(duration_ms, 3),
            "trace_id": trace_id,
        }
        self._emit(record)
        if duration_ms >= self.slow_request_ms:
            self._slow.inc()
            slow = dict(record, event="slow_request")
            if span_tree:
                slow["spans"] = span_tree
            self._emit(slow)

    # -- event-loop lag -----------------------------------------------------

    def observe_lag(self, lag_s: float) -> None:
        lag_ms = lag_s * 1000.0
        self._lag_gauge.set(lag_ms)
        self._lag_hist.observe(lag_ms)
        self._lag_samples.append(lag_ms)

    def record_stall(self, lag_s: float) -> None:
        self._stalls.inc()
        self._emit({"t": round(time.time(), 3), "event": "loop_stall",
                    "lag_ms": round(lag_s * 1000.0, 3)})

    def lag_p99_ms(self) -> float:
        return round(percentile(list(self._lag_samples), 99.0), 3)

    # -- liveness -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The telemetry half of the ``/healthz`` body."""
        return {
            "uptime_seconds": round(self.now_fn() - self.started, 3),
            "in_flight_requests": int(self._in_flight.value),
            "event_loop_lag_p99_ms": self.lag_p99_ms(),
            "slow_requests": int(self._slow.value),
            "loop_stalls": int(self._stalls.value),
        }

    # -- plumbing -----------------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)
        if self._file is not None:
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class EventLoopWatchdog:
    """Samples event-loop scheduling lag from inside the loop.

    Sleeps ``interval`` seconds and measures how much *later* than
    requested the loop resumed it — the canonical cooperative-
    scheduling health probe (any long synchronous call on the loop
    thread shows up here).  Lag at or over ``stall_ms`` additionally
    emits a ``loop_stall`` access-log record.  Owned by a server
    face: started in ``start()``, cancelled and awaited in ``stop()``
    so the no-leaked-tasks shutdown contract holds.
    """

    def __init__(self, telemetry: ServeTelemetry,
                 interval: float = 0.05,
                 stall_ms: float = 100.0) -> None:
        self.telemetry = telemetry
        self.interval = interval
        self.stall_ms = stall_ms
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop() \
                .create_task(self._run())

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.interval)
            lag = max(0.0, loop.time() - before - self.interval)
            self.telemetry.observe_lag(lag)
            if lag * 1000.0 >= self.stall_ms:
                self.telemetry.record_stall(lag)
