"""The service plane: network faces over the in-process update core.

:mod:`repro.serve.service` is the protocol-agnostic brain (device
registry, single-use tokens, channels, ranged chunks, WAL-backed
campaign CRUD); :mod:`repro.serve.httpd` and
:mod:`repro.serve.coapface` are its HTTP/1.1 and simulated-CoAP
codecs; :mod:`repro.serve.telemetry` is the faces' shared
request-scoped observability (access log, per-route histograms,
event-loop watchdog).  See DESIGN.md "Service plane" and
"Observability architecture".
"""

from .coapface import (
    CoapDatagramRelay,
    CoapDeviceClient,
    CoapFront,
    DEFAULT_BLOCK_SIZE,
)
from .httpd import HttpServer
from .service import (
    APP_ID,
    CHANNELS,
    CampaignSpec,
    DeviceFarm,
    FleetService,
    ServiceError,
)
from .telemetry import EventLoopWatchdog, ServeTelemetry

__all__ = [
    "APP_ID",
    "CHANNELS",
    "CampaignSpec",
    "CoapDatagramRelay",
    "CoapDeviceClient",
    "CoapFront",
    "DEFAULT_BLOCK_SIZE",
    "DeviceFarm",
    "EventLoopWatchdog",
    "FleetService",
    "HttpServer",
    "ServeTelemetry",
    "ServiceError",
]
