"""The service plane: network faces over the in-process update core.

:mod:`repro.serve.service` is the protocol-agnostic brain (device
registry, single-use tokens, channels, ranged chunks, WAL-backed
campaign CRUD); :mod:`repro.serve.httpd` and
:mod:`repro.serve.coapface` are its HTTP/1.1 and simulated-CoAP
codecs; :mod:`repro.serve.telemetry` is the faces' shared
request-scoped observability (access log, per-route histograms,
event-loop watchdog); :mod:`repro.serve.signing` is the off-loop
signer pool both faces dispatch ECDSA work through.  See DESIGN.md
"Service plane" and "Serve-plane fast path".
"""

from .coapface import (
    CoapDatagramRelay,
    CoapDeviceClient,
    CoapFront,
    DEFAULT_BLOCK_SIZE,
)
from .httpd import HttpServer
from .service import (
    APP_ID,
    CHANNELS,
    CampaignSpec,
    DeviceFarm,
    FleetService,
    ServiceError,
)
from .signing import SignerPool, SignerPoolStats, shared_signer_pool
from .telemetry import EventLoopWatchdog, ServeTelemetry

__all__ = [
    "APP_ID",
    "CHANNELS",
    "CampaignSpec",
    "CoapDatagramRelay",
    "CoapDeviceClient",
    "CoapFront",
    "DEFAULT_BLOCK_SIZE",
    "DeviceFarm",
    "EventLoopWatchdog",
    "FleetService",
    "HttpServer",
    "ServeTelemetry",
    "ServiceError",
    "SignerPool",
    "SignerPoolStats",
    "shared_signer_pool",
]
