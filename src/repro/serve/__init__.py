"""The service plane: network faces over the in-process update core.

:mod:`repro.serve.service` is the protocol-agnostic brain (device
registry, single-use tokens, channels, ranged chunks, WAL-backed
campaign CRUD); :mod:`repro.serve.httpd` and
:mod:`repro.serve.coapface` are its HTTP/1.1 and simulated-CoAP
codecs.  See DESIGN.md "Service plane".
"""

from .coapface import (
    CoapDatagramRelay,
    CoapDeviceClient,
    CoapFront,
    DEFAULT_BLOCK_SIZE,
)
from .httpd import HttpServer
from .service import (
    APP_ID,
    CHANNELS,
    CampaignSpec,
    DeviceFarm,
    FleetService,
    ServiceError,
)

__all__ = [
    "APP_ID",
    "CHANNELS",
    "CampaignSpec",
    "CoapDatagramRelay",
    "CoapDeviceClient",
    "CoapFront",
    "DEFAULT_BLOCK_SIZE",
    "DeviceFarm",
    "FleetService",
    "HttpServer",
    "ServiceError",
]
