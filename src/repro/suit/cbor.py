"""Minimal CBOR codec (RFC 8949 subset) for SUIT manifests.

The IETF SUIT standard the paper lists as future work serialises its
manifests as CBOR.  This is a deliberately small, strict subset — the
types SUIT actually uses — implemented from scratch:

* unsigned and negative integers (any precision);
* byte strings, UTF-8 text strings;
* arrays and maps (definite length only);
* tags;
* ``false`` / ``true`` / ``null``.

Encoding is *canonical* (RFC 8949 §4.2.1): shortest-form integers and
lengths, map keys sorted by their encoded bytes — signatures over CBOR
require a deterministic encoding.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["dumps", "loads", "CborError", "Tag"]

_MAJOR_UNSIGNED = 0
_MAJOR_NEGATIVE = 1
_MAJOR_BYTES = 2
_MAJOR_TEXT = 3
_MAJOR_ARRAY = 4
_MAJOR_MAP = 5
_MAJOR_TAG = 6
_MAJOR_SIMPLE = 7

_SIMPLE_FALSE = 20
_SIMPLE_TRUE = 21
_SIMPLE_NULL = 22


class CborError(ValueError):
    """Malformed CBOR input or unsupported type."""


class Tag:
    """A tagged CBOR value (major type 6)."""

    __slots__ = ("number", "value")

    def __init__(self, number: int, value: Any) -> None:
        if number < 0:
            raise CborError("tag number must be non-negative")
        self.number = number
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Tag) and other.number == self.number
                and other.value == self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Tag(%d, %r)" % (self.number, self.value)


# -- encoding -----------------------------------------------------------------


def dumps(value: Any) -> bytes:
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _encode_head(major: int, argument: int, out: bytearray) -> None:
    if argument < 24:
        out.append((major << 5) | argument)
    elif argument < 0x100:
        out.append((major << 5) | 24)
        out.append(argument)
    elif argument < 0x10000:
        out.append((major << 5) | 25)
        out.extend(argument.to_bytes(2, "big"))
    elif argument < 0x100000000:
        out.append((major << 5) | 26)
        out.extend(argument.to_bytes(4, "big"))
    elif argument < 0x10000000000000000:
        out.append((major << 5) | 27)
        out.extend(argument.to_bytes(8, "big"))
    else:
        raise CborError("integer argument exceeds 64 bits")


def _encode(value: Any, out: bytearray) -> None:
    if value is False:
        out.append((_MAJOR_SIMPLE << 5) | _SIMPLE_FALSE)
    elif value is True:
        out.append((_MAJOR_SIMPLE << 5) | _SIMPLE_TRUE)
    elif value is None:
        out.append((_MAJOR_SIMPLE << 5) | _SIMPLE_NULL)
    elif isinstance(value, int):
        if value >= 0:
            _encode_head(_MAJOR_UNSIGNED, value, out)
        else:
            _encode_head(_MAJOR_NEGATIVE, -1 - value, out)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        _encode_head(_MAJOR_BYTES, len(data), out)
        out.extend(data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        _encode_head(_MAJOR_TEXT, len(data), out)
        out.extend(data)
    elif isinstance(value, (list, tuple)):
        _encode_head(_MAJOR_ARRAY, len(value), out)
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        _encode_head(_MAJOR_MAP, len(value), out)
        for key_bytes, key, val in sorted(
            (dumps(key), key, val) for key, val in value.items()
        ):
            out.extend(key_bytes)
            _encode(val, out)
    elif isinstance(value, Tag):
        _encode_head(_MAJOR_TAG, value.number, out)
        _encode(value.value, out)
    else:
        raise CborError("cannot encode %r" % type(value).__name__)


# -- decoding -----------------------------------------------------------------


def loads(data: bytes) -> Any:
    value, offset = _decode(bytes(data), 0)
    if offset != len(data):
        raise CborError("%d trailing bytes" % (len(data) - offset))
    return value


def _decode_head(data: bytes, offset: int) -> Tuple[int, int, int]:
    if offset >= len(data):
        raise CborError("truncated item head")
    initial = data[offset]
    major = initial >> 5
    info = initial & 0x1F
    offset += 1
    if info < 24:
        return major, info, offset
    if info == 24:
        if offset + 1 > len(data):
            raise CborError("truncated 1-byte argument")
        return major, data[offset], offset + 1
    if info == 25:
        if offset + 2 > len(data):
            raise CborError("truncated 2-byte argument")
        return major, int.from_bytes(data[offset:offset + 2], "big"), \
            offset + 2
    if info == 26:
        if offset + 4 > len(data):
            raise CborError("truncated 4-byte argument")
        return major, int.from_bytes(data[offset:offset + 4], "big"), \
            offset + 4
    if info == 27:
        if offset + 8 > len(data):
            raise CborError("truncated 8-byte argument")
        return major, int.from_bytes(data[offset:offset + 8], "big"), \
            offset + 8
    raise CborError("unsupported additional info %d "
                    "(indefinite lengths are not allowed)" % info)


def _decode(data: bytes, offset: int) -> Tuple[Any, int]:
    major, argument, offset = _decode_head(data, offset)
    if major == _MAJOR_UNSIGNED:
        return argument, offset
    if major == _MAJOR_NEGATIVE:
        return -1 - argument, offset
    if major == _MAJOR_BYTES:
        end = offset + argument
        if end > len(data):
            raise CborError("truncated byte string")
        return data[offset:end], end
    if major == _MAJOR_TEXT:
        end = offset + argument
        if end > len(data):
            raise CborError("truncated text string")
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise CborError("invalid UTF-8 in text string") from exc
    if major == _MAJOR_ARRAY:
        items: List[Any] = []
        for _ in range(argument):
            item, offset = _decode(data, offset)
            items.append(item)
        return items, offset
    if major == _MAJOR_MAP:
        mapping: Dict[Any, Any] = {}
        for _ in range(argument):
            key, offset = _decode(data, offset)
            if isinstance(key, (list, dict)):
                raise CborError("unhashable map key")
            if key in mapping:
                raise CborError("duplicate map key %r" % (key,))
            value, offset = _decode(data, offset)
            mapping[key] = value
        return mapping, offset
    if major == _MAJOR_TAG:
        value, offset = _decode(data, offset)
        return Tag(argument, value), offset
    # major == _MAJOR_SIMPLE
    if argument == _SIMPLE_FALSE:
        return False, offset
    if argument == _SIMPLE_TRUE:
        return True, offset
    if argument == _SIMPLE_NULL:
        return None, offset
    raise CborError("unsupported simple value %d" % argument)
