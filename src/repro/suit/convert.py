"""UpKit ↔ SUIT manifest conversion.

Field mapping:

| UpKit                | SUIT                                       |
|----------------------|--------------------------------------------|
| version              | sequence-number                            |
| app_id               | class-id (derived UUID); vendor-id is the  |
|                      | UUID of the vendor namespace               |
| digest, size         | image-match condition (digest, size)       |
| payload_size/kind    | private payload metadata                   |
| link_offset          | extension (SUIT uses component offsets)    |
| device_id, nonce,    | **no SUIT equivalent** — carried in a      |
| old_version          | private extension map so an UpKit device   |
|                      | can still enforce freshness               |

The semantic gap matters: plain SUIT grants freshness only through the
monotonic sequence number, which cannot bind an image to a *request*.
Round-tripping through SUIT therefore preserves UpKit's token fields
only via the extension; a foreign SUIT processor would ignore them.
"""

from __future__ import annotations

from ..core import Manifest
from ..core.vendor import VendorRelease
from .manifest import SuitEnvelope, SuitManifest, uuid_from_identifier

__all__ = ["VENDOR_NAMESPACE", "upkit_to_suit", "suit_to_upkit",
           "export_release"]

VENDOR_NAMESPACE = b"upkit.reproduction.vendor-ns"

# Private extension keys.
EXT_DEVICE_ID = 1
EXT_NONCE = 2
EXT_OLD_VERSION = 3
EXT_LINK_OFFSET = 4
EXT_APP_ID = 5


def upkit_to_suit(manifest: Manifest) -> SuitManifest:
    """Translate an UpKit manifest into the SUIT model."""
    extensions = {
        EXT_LINK_OFFSET: manifest.link_offset,
        EXT_APP_ID: manifest.app_id,
    }
    if manifest.device_id or manifest.nonce or manifest.old_version:
        extensions[EXT_DEVICE_ID] = manifest.device_id
        extensions[EXT_NONCE] = manifest.nonce
        extensions[EXT_OLD_VERSION] = manifest.old_version
    return SuitManifest(
        sequence_number=manifest.version,
        vendor_id=uuid_from_identifier(VENDOR_NAMESPACE, 0),
        class_id=uuid_from_identifier(VENDOR_NAMESPACE, manifest.app_id),
        digest=manifest.digest,
        image_size=manifest.size,
        payload_size=manifest.payload_size,
        payload_kind=manifest.payload_kind,
        extensions=extensions,
    )


def suit_to_upkit(suit: SuitManifest) -> Manifest:
    """Translate back; raises when mandatory UpKit fields are absent."""
    extensions = suit.extensions
    app_id = extensions.get(EXT_APP_ID)
    if app_id is None:
        raise ValueError(
            "SUIT manifest lacks the UpKit app-id extension; class-id "
            "UUIDs are one-way derivations")
    if uuid_from_identifier(VENDOR_NAMESPACE, app_id) != suit.class_id:
        raise ValueError("class-id does not match the app-id extension")
    return Manifest(
        version=suit.sequence_number,
        size=suit.image_size,
        digest=suit.digest,
        link_offset=extensions.get(EXT_LINK_OFFSET, 0),
        app_id=app_id,
        device_id=extensions.get(EXT_DEVICE_ID, 0),
        nonce=extensions.get(EXT_NONCE, 0),
        old_version=extensions.get(EXT_OLD_VERSION, 0),
        payload_kind=suit.payload_kind,
        payload_size=suit.payload_size,
    )


def export_release(release: VendorRelease, signing_key) -> bytes:
    """A vendor release as a signed SUIT envelope (CBOR bytes)."""
    suit = upkit_to_suit(release.manifest)
    return SuitEnvelope.sign(suit, signing_key).to_cbor()
