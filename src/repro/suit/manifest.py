"""SUIT manifests: the IETF firmware-update information model.

The paper's future work (Sect. VIII) is "support of the upcoming IETF
SUIT standard, in order to allow inter-operation with a larger range
of IoT solutions".  This module implements a principled subset of
draft-ietf-suit-manifest: the CBOR envelope, a COSE_Sign1
authentication wrapper over the manifest digest, and the manifest
fields UpKit's model maps onto:

* ``sequence-number`` — monotonically increasing (UpKit's version);
* one component with ``vendor-id`` / ``class-id`` UUIDs (derived from
  UpKit's app ID), image ``digest`` (SHA-256) and ``size``;
* install/validate command sequences reduced to the conditions UpKit
  enforces (vendor match, class match, image match).

Envelope layout (CBOR map)::

    { 2: authentication-wrapper = [ COSE_Sign1 ],
      3: manifest-bstr }

    COSE_Sign1 = Tag(18, [ protected-bstr, {}, payload = SHA-256(manifest),
                           signature ])

UpKit's token fields (device ID, nonce, old version) have no SUIT
equivalent — SUIT delegates freshness to sequence numbers and secure
transport — so the converter (:mod:`repro.suit.convert`) carries them
in a private extension key and documents the semantic gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..crypto import PrivateKey, PublicKey, Signature, sha256
from .cbor import CborError, Tag, dumps, loads

__all__ = ["SuitManifest", "SuitEnvelope", "SuitError",
           "uuid_from_identifier"]

# Envelope keys (draft-ietf-suit-manifest).
KEY_AUTHENTICATION = 2
KEY_MANIFEST = 3

# Manifest keys.
KEY_MANIFEST_VERSION = 1
KEY_SEQUENCE_NUMBER = 2
KEY_COMMON = 3
KEY_PAYLOADS = 16         # private: payload metadata (size/kind)
KEY_EXTENSIONS = 0x55504B  # private: UpKit token-binding extension

# Common block keys.
KEY_COMPONENTS = 2
KEY_COMMON_SEQUENCE = 4

# Command/condition identifiers (suit-common-sequence).
CONDITION_VENDOR_ID = 1
CONDITION_CLASS_ID = 2
CONDITION_IMAGE_MATCH = 3

# COSE.
COSE_SIGN1_TAG = 18
COSE_ALG_ES256 = -7
COSE_HEADER_ALG = 1

MANIFEST_VERSION = 1


class SuitError(ValueError):
    """Malformed SUIT envelope/manifest."""


def uuid_from_identifier(namespace: bytes, identifier: int) -> bytes:
    """A deterministic 16-byte identifier (UUIDv5-like, SHA-256 based)."""
    digest = sha256(namespace + identifier.to_bytes(4, "big"))[:16]
    out = bytearray(digest)
    out[6] = (out[6] & 0x0F) | 0x50  # version 5
    out[8] = (out[8] & 0x3F) | 0x80  # RFC 4122 variant
    return bytes(out)


@dataclass(frozen=True)
class SuitManifest:
    """The subset of SUIT manifest fields UpKit maps onto."""

    sequence_number: int
    vendor_id: bytes          # 16 bytes
    class_id: bytes           # 16 bytes
    digest: bytes             # SHA-256 of the image
    image_size: int
    component_id: "tuple[str, ...]" = ("slot",)
    payload_size: int = 0     # transported payload (delta may differ)
    payload_kind: int = 0
    extensions: "dict[int, int]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sequence_number < 0:
            raise SuitError("sequence number must be non-negative")
        if len(self.vendor_id) != 16 or len(self.class_id) != 16:
            raise SuitError("vendor/class IDs must be 16 bytes")
        if len(self.digest) != 32:
            raise SuitError("digest must be SHA-256 (32 bytes)")
        if self.image_size <= 0:
            raise SuitError("image size must be positive")

    # -- CBOR structure -----------------------------------------------------

    def to_cbor(self) -> bytes:
        common_sequence = [
            CONDITION_VENDOR_ID, self.vendor_id,
            CONDITION_CLASS_ID, self.class_id,
            CONDITION_IMAGE_MATCH, [self.digest, self.image_size],
        ]
        manifest = {
            KEY_MANIFEST_VERSION: MANIFEST_VERSION,
            KEY_SEQUENCE_NUMBER: self.sequence_number,
            KEY_COMMON: {
                KEY_COMPONENTS: [list(self.component_id)],
                KEY_COMMON_SEQUENCE: dumps(common_sequence),
            },
            KEY_PAYLOADS: [self.payload_size, self.payload_kind],
        }
        if self.extensions:
            manifest[KEY_EXTENSIONS] = dict(self.extensions)
        return dumps(manifest)

    @classmethod
    def from_cbor(cls, data: bytes) -> "SuitManifest":
        try:
            manifest = loads(data)
        except CborError as exc:
            raise SuitError("manifest is not valid CBOR: %s" % exc) from exc
        if not isinstance(manifest, dict):
            raise SuitError("manifest must be a CBOR map")
        if manifest.get(KEY_MANIFEST_VERSION) != MANIFEST_VERSION:
            raise SuitError("unsupported suit-manifest-version")
        try:
            sequence = manifest[KEY_SEQUENCE_NUMBER]
            common = manifest[KEY_COMMON]
            components = common[KEY_COMPONENTS]
            sequence_bytes = common[KEY_COMMON_SEQUENCE]
        except (KeyError, TypeError) as exc:
            raise SuitError("missing mandatory manifest field") from exc
        conditions = loads(sequence_bytes)
        values = _parse_conditions(conditions)
        payloads = manifest.get(KEY_PAYLOADS, [0, 0])
        extensions = manifest.get(KEY_EXTENSIONS, {})
        if not isinstance(extensions, dict):
            raise SuitError("extensions must be a map")
        digest, size = values[CONDITION_IMAGE_MATCH]
        return cls(
            sequence_number=sequence,
            vendor_id=values[CONDITION_VENDOR_ID],
            class_id=values[CONDITION_CLASS_ID],
            digest=digest,
            image_size=size,
            component_id=tuple(components[0]),
            payload_size=payloads[0],
            payload_kind=payloads[1],
            extensions={int(k): int(v) for k, v in extensions.items()},
        )


def _parse_conditions(sequence) -> dict:
    if not isinstance(sequence, list) or len(sequence) % 2:
        raise SuitError("malformed common command sequence")
    values = {}
    for index in range(0, len(sequence), 2):
        values[sequence[index]] = sequence[index + 1]
    for required in (CONDITION_VENDOR_ID, CONDITION_CLASS_ID,
                     CONDITION_IMAGE_MATCH):
        if required not in values:
            raise SuitError("condition %d missing" % required)
    return values


@dataclass(frozen=True)
class SuitEnvelope:
    """A signed SUIT envelope: COSE_Sign1 wrapper + manifest bytes."""

    manifest_bytes: bytes
    signature: bytes          # 64-byte raw ECDSA r||s
    protected: bytes          # encoded COSE protected header

    @property
    def manifest(self) -> SuitManifest:
        return SuitManifest.from_cbor(self.manifest_bytes)

    # -- signing ------------------------------------------------------------

    @classmethod
    def sign(cls, manifest: SuitManifest,
             key: PrivateKey) -> "SuitEnvelope":
        manifest_bytes = manifest.to_cbor()
        protected = dumps({COSE_HEADER_ALG: COSE_ALG_ES256})
        signature = key.sign(
            cls._sig_structure(protected, manifest_bytes)).encode()
        return cls(manifest_bytes=manifest_bytes, signature=signature,
                   protected=protected)

    def verify(self, key: PublicKey) -> bool:
        try:
            header = loads(self.protected)
        except CborError:
            return False
        if header.get(COSE_HEADER_ALG) != COSE_ALG_ES256:
            return False
        try:
            signature = Signature.decode(self.signature)
        except Exception:
            return False
        return key.verify(
            signature,
            self._sig_structure(self.protected, self.manifest_bytes))

    @staticmethod
    def _sig_structure(protected: bytes, manifest_bytes: bytes) -> bytes:
        # COSE Sig_structure with the manifest digest as the payload,
        # as SUIT's severable-manifest profile prescribes.
        return dumps(["Signature1", protected, b"",
                      sha256(manifest_bytes)])

    # -- envelope CBOR ----------------------------------------------------------

    def to_cbor(self) -> bytes:
        cose = Tag(COSE_SIGN1_TAG,
                   [self.protected, {}, sha256(self.manifest_bytes),
                    self.signature])
        return dumps({
            KEY_AUTHENTICATION: [dumps(cose)],
            KEY_MANIFEST: self.manifest_bytes,
        })

    @classmethod
    def from_cbor(cls, data: bytes) -> "SuitEnvelope":
        try:
            envelope = loads(data)
        except CborError as exc:
            raise SuitError("envelope is not valid CBOR: %s" % exc) from exc
        if not isinstance(envelope, dict):
            raise SuitError("envelope must be a CBOR map")
        try:
            wrappers = envelope[KEY_AUTHENTICATION]
            manifest_bytes = envelope[KEY_MANIFEST]
        except KeyError as exc:
            raise SuitError("missing envelope field") from exc
        if not wrappers:
            raise SuitError("no authentication wrapper")
        cose = loads(wrappers[0])
        if not isinstance(cose, Tag) or cose.number != COSE_SIGN1_TAG:
            raise SuitError("authentication wrapper is not COSE_Sign1")
        protected, _unprotected, payload, signature = cose.value
        if payload != sha256(manifest_bytes):
            raise SuitError("COSE payload does not match manifest digest")
        return cls(manifest_bytes=manifest_bytes, signature=signature,
                   protected=protected)
