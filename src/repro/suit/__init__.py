"""IETF SUIT interoperability (the paper's stated future work)."""

from .cbor import CborError, Tag, dumps, loads
from .convert import (
    VENDOR_NAMESPACE,
    export_release,
    suit_to_upkit,
    upkit_to_suit,
)
from .manifest import (
    SuitEnvelope,
    SuitError,
    SuitManifest,
    uuid_from_identifier,
)

__all__ = [
    "CborError",
    "SuitEnvelope",
    "SuitError",
    "SuitManifest",
    "Tag",
    "VENDOR_NAMESPACE",
    "dumps",
    "export_release",
    "loads",
    "suit_to_upkit",
    "upkit_to_suit",
    "uuid_from_identifier",
]
