"""Vendor server: generation phase (steps 1–2 of Fig. 2).

The vendor receives a raw firmware binary, builds the canonical
manifest (version, size, digest, link offset, app ID — token fields
zeroed) and signs it with the vendor private key.  The result — a
*vendor release* — is uploaded to the update server, which will later
specialise and re-sign it per device request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..crypto.engine import get_engine
from .errors import ManifestFormatError
from .keys import SigningIdentity
from .manifest import Manifest, PayloadKind

__all__ = ["VendorRelease", "VendorServer"]


@dataclass(frozen=True)
class VendorRelease:
    """A signed firmware release, as handed to the update server."""

    manifest: Manifest          # canonical form (token fields zeroed)
    vendor_signature: bytes     # over manifest.canonical_bytes()
    firmware: bytes

    @property
    def version(self) -> int:
        return self.manifest.version


class VendorServer:
    """Builds and signs releases for one application/platform."""

    def __init__(self, identity: SigningIdentity, app_id: int,
                 link_offset: int) -> None:
        self.identity = identity
        self.app_id = app_id
        self.link_offset = link_offset
        self._releases: Dict[int, VendorRelease] = {}

    def release(self, firmware: bytes, version: int) -> VendorRelease:
        """Create, sign and record a release of ``firmware`` as ``version``."""
        if not firmware:
            raise ManifestFormatError("cannot release empty firmware")
        if version in self._releases:
            raise ManifestFormatError("version %d already released" % version)
        if self._releases and version <= max(self._releases):
            raise ManifestFormatError(
                "version %d is not newer than latest release %d"
                % (version, max(self._releases))
            )
        manifest = Manifest(
            version=version,
            size=len(firmware),
            digest=get_engine().sha256(firmware),
            link_offset=self.link_offset,
            app_id=self.app_id,
            payload_kind=PayloadKind.FULL,
            payload_size=len(firmware),
        )
        assert manifest.pack() == manifest.canonical_bytes(), \
            "a fresh vendor manifest must already be canonical"
        signature = self.identity.sign(manifest.canonical_bytes())
        release = VendorRelease(
            manifest=manifest,
            vendor_signature=signature,
            firmware=bytes(firmware),
        )
        self._releases[version] = release
        return release

    def get_release(self, version: int) -> VendorRelease:
        try:
            return self._releases[version]
        except KeyError:
            raise ManifestFormatError("no release %d" % version) from None

    @property
    def versions(self) -> "list[int]":
        return sorted(self._releases)
