"""The bootloader: second verification and the loading phase.

After reboot the bootloader re-establishes the validity of whatever
the agent stored — the agent's verdict may be stale (power loss mid-
propagation, flash corruption), so signatures and the firmware digest
are checked again (step 16 of Fig. 2).  Then:

* **A/B mode** (Configuration A): activate the newest *valid* bootable
  slot in place — no copying, which is where the 92% loading-time
  reduction of Fig. 8c comes from;
* **static mode** (Configuration B): if the staging slot holds a valid
  image newer than the bootable slot's, swap the two slots (keeping the
  old image for rollback), re-verify the bootable slot, and roll back
  by swapping again if that verification fails.

Updating the bootloader itself is explicitly unsupported (Sect. III-D);
:meth:`Bootloader.update_self` documents the refusal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..crypto import CryptoBackend
from ..memory import MemoryLayout, Slot
from ..memory.swap import ResumableSwap
from .agent import inspect_slot
from .errors import BootError, NoValidImage, VerificationError
from .events import EventKind, EventLog
from .image import ENVELOPE_SIZE, SignedManifest
from .keys import TrustAnchors
from .profile import DeviceProfile
from .verifier import Verifier

__all__ = ["BootMode", "BootResult", "Bootloader"]


class BootMode(enum.Enum):
    """Loading strategy: single bootable slot vs. A/B dual-boot."""

    STATIC = "static"
    AB = "ab"


@dataclass(frozen=True)
class BootResult:
    """Outcome of a boot: which slot runs, what happened on the way."""

    slot: Slot
    envelope: SignedManifest
    swapped: bool
    rolled_back: bool

    @property
    def version(self) -> int:
        return self.envelope.manifest.version


class Bootloader:
    """Verify-then-load logic over a memory layout."""

    #: Install a staged image only when strictly newer than the current
    #: one.  UpKit enforces this; mcuboot's default configuration does
    #: not (no downgrade prevention), which the baseline overrides.
    require_newer_staged = True

    def __init__(
        self,
        profile: DeviceProfile,
        layout: MemoryLayout,
        anchors: TrustAnchors,
        backend: CryptoBackend,
        events: Optional[EventLog] = None,
    ) -> None:
        self.profile = profile
        self.layout = layout
        self.verifier = Verifier(anchors, backend)
        self.mode = BootMode.AB if layout.is_ab else BootMode.STATIC
        self.events = events if events is not None else EventLog()

    # -- verification -----------------------------------------------------------

    def verify_slot(self, slot: Slot) -> Optional[SignedManifest]:
        """Full re-verification of a stored image; None when invalid."""
        envelope = inspect_slot(slot)
        if envelope is None:
            return None
        try:
            self.verifier.validate_for_bootloader(envelope, self.profile)
            self.verifier.verify_firmware(
                envelope.manifest,
                lambda offset, length: slot.read(ENVELOPE_SIZE + offset,
                                                 length),
            )
        except VerificationError:
            return None
        return envelope

    # -- boot -------------------------------------------------------------------

    def boot(self) -> BootResult:
        result = (self._boot_ab() if self.mode is BootMode.AB
                  else self._boot_static())
        self.events.emit("bootloader", EventKind.BOOT_SELECTED,
                         slot=result.slot.name, version=result.version,
                         swapped=result.swapped,
                         rolled_back=result.rolled_back)
        return result

    def _boot_ab(self) -> BootResult:
        """Jump to the newest valid bootable slot; nothing is moved.

        Candidates are tried newest-first (by the *parsed* header
        version), stopping at the first slot that fully verifies: the
        common case pays exactly one verification — this is where the
        92% loading-phase reduction of Fig. 8c comes from.
        """
        candidates = []
        for slot in self.layout.bootable_slots:
            header = inspect_slot(slot)
            if header is not None:
                candidates.append((header.manifest.version, slot))
        candidates.sort(key=lambda pair: pair[0], reverse=True)
        for _, slot in candidates:
            envelope = self.verify_slot(slot)
            if envelope is not None:
                return BootResult(slot=slot, envelope=envelope,
                                  swapped=False, rolled_back=False)
        raise NoValidImage("no bootable slot verifies")

    def _boot_static(self) -> BootResult:
        bootable = self.layout.bootable_slots[0]
        staging = self._staging_slot()

        # Power-loss recovery: an interrupted install leaves a journal in
        # the status region; complete it before looking at the images.
        self._resume_interrupted_swap(bootable, staging)

        # Parse headers first (cheap); verify cryptographically only the
        # image that will actually be booted or installed.
        current_header = inspect_slot(bootable)
        staged_header = (inspect_slot(staging)
                         if staging is not None else None)

        newer_staged = staged_header is not None and (
            current_header is None
            or not self.require_newer_staged
            or (staged_header.manifest.version
                > current_header.manifest.version)
        )
        candidate = None
        if newer_staged:
            candidate = self.verify_slot(staging)
        if candidate is None:
            # Nothing (valid) to install: boot the current image.
            current = self.verify_slot(bootable)
            if current is not None:
                return BootResult(slot=bootable, envelope=current,
                                  swapped=False, rolled_back=False)
            # Recovery: the bootable slot is bad; fall back to whatever
            # valid image is staged, even an older one.
            if staging is not None:
                candidate = self.verify_slot(staging)
            if candidate is None:
                return self._boot_from_recovery(bootable)
        current = current_header  # version info only, for the swap extent

        # Install: swap staging into the bootable slot, keep old for rollback.
        # Only the sectors actually covered by an image are swapped — this
        # is why the loading phase scales with image size, not slot size
        # ("the number of sectors to be swapped ... is smaller", Fig. 8a).
        assert staging is not None and candidate is not None
        extent = ENVELOPE_SIZE + candidate.manifest.size
        if current is not None:
            extent = max(extent, ENVELOPE_SIZE + current.manifest.size)
        page = max(bootable.flash.page_size, staging.flash.page_size)
        extent = min(bootable.size, -(-extent // page) * page)
        self.events.emit("bootloader", EventKind.SWAP_STARTED,
                         extent=extent,
                         new_version=candidate.manifest.version)
        self._swap(bootable, staging, extent)
        installed = self.verify_slot(bootable)
        if installed is not None:
            return BootResult(slot=bootable, envelope=installed,
                              swapped=True, rolled_back=False)

        # The copy went wrong — roll back to the previous image.
        self.events.emit("bootloader", EventKind.ROLLED_BACK,
                         failed_version=candidate.manifest.version)
        self._swap(bootable, staging, extent)
        restored = self.verify_slot(bootable)
        if restored is None:
            raise NoValidImage("rollback failed: no valid image remains")
        return BootResult(slot=bootable, envelope=restored,
                          swapped=True, rolled_back=True)

    def _swap(self, bootable: Slot, staging: Slot, extent: int) -> None:
        """Journaled swap when a status region exists, legacy otherwise."""
        status = self.layout.status_slot
        if status is not None:
            ResumableSwap(bootable, staging, status).swap(extent)
        else:
            self.layout.swap_slots(bootable, staging, length=extent)

    def _resume_interrupted_swap(self, bootable: Slot,
                                 staging: Optional[Slot]) -> None:
        status = self.layout.status_slot
        if status is None or staging is None:
            return
        pending = ResumableSwap.pending(status)
        if pending is not None:
            self.events.emit("bootloader", EventKind.SWAP_RESUMED,
                             pair_count=pending.pair_count,
                             steps_done=sum(pending.progress))
            ResumableSwap(bootable, staging, status).resume(pending)

    def _boot_from_recovery(self, bootable: Slot) -> BootResult:
        """Last resort: reinstall the factory image from the recovery
        slot (Configuration B with external flash, Fig. 6)."""
        recovery = self._recovery_slot()
        if recovery is None:
            raise NoValidImage("bootable slot invalid, nothing staged")
        envelope = self.verify_slot(recovery)
        if envelope is None:
            raise NoValidImage(
                "bootable, staging and recovery slots all invalid")
        extent = ENVELOPE_SIZE + envelope.manifest.size
        self.events.emit("bootloader", EventKind.RECOVERY_USED,
                         version=envelope.manifest.version)
        self.layout.copy_slot(recovery, bootable,
                              length=min(extent, bootable.size))
        installed = self.verify_slot(bootable)
        if installed is None:
            raise NoValidImage("recovery image failed to install")
        return BootResult(slot=bootable, envelope=installed,
                          swapped=True, rolled_back=True)

    def _recovery_slot(self) -> Optional[Slot]:
        for slot in self.layout.slots:
            if slot.name == "recovery":
                return slot
        return None

    def _staging_slot(self) -> Optional[Slot]:
        return self.layout.staging_slot

    # -- explicit non-goal ---------------------------------------------------------

    def update_self(self) -> None:
        """Bootloader self-update is unsupported by design.

        "Also UpKit does not support updating the bootloader, as any
        failure during this phase would be fatal to the system and
        brick the device" (Sect. III-D).  Bootloader-verifier bugs are
        mitigated by updating the *agent's* verifier instead.
        """
        raise BootError("bootloader self-update is unsupported by design")
