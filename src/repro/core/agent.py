"""The update agent: UpKit's device-side FSM (Sect. IV-B, Fig. 4).

The agent is transport-agnostic: push (BLE) and pull (CoAP) front-ends
both deliver bytes to :meth:`UpdateAgent.feed`, and the FSM reacts
according to its state.  States:

``WAITING`` → token requested → ``START_UPDATE`` (erase oldest slot) →
``RECEIVE_MANIFEST`` → ``VERIFY_MANIFEST`` (early verification: double
signature, token binding, version, compatibility) →
``RECEIVE_FIRMWARE`` (through the pipeline) → ``VERIFY_FIRMWARE``
(digest of what was actually written) → ``READY_TO_REBOOT``.
Any failure lands in ``CLEANING``: the slot is invalidated, FSM state
reset, and the error propagated so the transport can report it.

The early checks are the paper's headline: an invalid or replayed
update is rejected before the firmware is downloaded (saving radio-on
time) and an invalid firmware before the reboot (saving downtime).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..crypto import CryptoBackend, StreamCipher, hmac_sha256
from ..memory import MemoryLayout, OpenMode, Slot
from ..obs import NULL_TRACER
from .errors import (
    ManifestFormatError,
    SizeExceeded,
    StateError,
    UpdateError,
)
from .events import EventKind, EventLog
from .image import ENVELOPE_SIZE, SignedManifest
from .keys import TrustAnchors
from .manifest import Manifest
from .pipeline import Pipeline, build_pipeline
from .profile import DeviceProfile
from .token import NO_DIFF_SUPPORT, DeviceToken
from .verifier import Verifier

__all__ = [
    "AgentState",
    "FeedStatus",
    "AgentStats",
    "UpdateAgent",
    "inspect_slot",
]


class AgentState(enum.Enum):
    """The FSM states of Fig. 4."""

    WAITING = "waiting"
    START_UPDATE = "start_update"
    RECEIVE_MANIFEST = "receive_manifest"
    VERIFY_MANIFEST = "verify_manifest"
    RECEIVE_FIRMWARE = "receive_firmware"
    VERIFY_FIRMWARE = "verify_firmware"
    READY_TO_REBOOT = "ready_to_reboot"
    CLEANING = "cleaning"


class FeedStatus(enum.Enum):
    """What a ``feed`` call achieved (the transport acts on this)."""

    NEED_MORE = "need_more"
    MANIFEST_VERIFIED = "manifest_verified"
    FIRMWARE_COMPLETE = "firmware_complete"


@dataclass
class AgentStats:
    """Byte and event counters, consumed by the evaluation harness."""

    tokens_issued: int = 0
    manifest_bytes: int = 0
    payload_bytes: int = 0
    updates_completed: int = 0
    updates_rejected: int = 0
    rejected_before_download: int = 0
    rejected_after_download: int = 0
    # Interrupted-transfer observability (bumped by the transports, which
    # own the link, but surfaced here so one counter object tells the
    # whole per-device story).
    transfers_interrupted: int = 0
    transfers_resumed: int = 0
    updates_abandoned: int = 0


def inspect_slot(slot: Slot) -> Optional[SignedManifest]:
    """Parse the envelope at a slot's head; None when unparseable."""
    try:
        return SignedManifest.unpack(slot.read(0, ENVELOPE_SIZE))
    except (UpdateError, ValueError):
        return None


class _NonceSource:
    """Deterministic per-device nonce stream (devices lack good entropy;
    RFC 6979-style derivation keeps runs reproducible).  A class, not a
    closure, so agents survive the trip to a process-pool worker with
    their counter state intact."""

    def __init__(self, profile: DeviceProfile) -> None:
        self._seed = profile.device_id.to_bytes(4, "big")
        self._counter = 0

    def __call__(self) -> int:
        self._counter += 1
        raw = hmac_sha256(b"upkit-nonce" + self._seed,
                          self._counter.to_bytes(8, "big"))
        nonce = int.from_bytes(raw[:4], "big")
        return nonce or 1  # nonce 0 is reserved for factory images


def _default_nonce_source(profile: DeviceProfile) -> Callable[[], int]:
    return _NonceSource(profile)


class UpdateAgent:
    """Device-side update orchestration over a memory layout."""

    def __init__(
        self,
        profile: DeviceProfile,
        layout: MemoryLayout,
        anchors: TrustAnchors,
        backend: CryptoBackend,
        nonce_source: Optional[Callable[[], int]] = None,
        cipher: Optional[StreamCipher] = None,
        pipeline_buffer_size: int = 4096,
        events: Optional[EventLog] = None,
    ) -> None:
        self.profile = profile
        self.layout = layout
        self.verifier = Verifier(anchors, backend)
        self.backend = backend
        self.cipher = cipher
        self.pipeline_buffer_size = pipeline_buffer_size
        self.stats = AgentStats()
        self.events = events if events is not None else EventLog()
        #: Optional :class:`~repro.obs.MetricsRegistry`; the simulated
        #: device points this at its own registry so pipeline stage
        #: volumes surface as ``pipeline.*`` counters.
        self.metrics = None
        #: The device's :class:`~repro.obs.Tracer` (disabled null tracer
        #: by default); the simulated device points this at its own.
        self.tracer = NULL_TRACER
        self.state = AgentState.WAITING
        self._nonce_source = nonce_source or _default_nonce_source(profile)
        self._token: Optional[DeviceToken] = None
        self._target_slot: Optional[Slot] = None
        self._manifest_buf = bytearray()
        self._pending_manifest: Optional[Manifest] = None
        self._pipeline: Optional[Pipeline] = None
        self._slot_file = None
        self._payload_received = 0
        self._booted_slot: Optional[Slot] = None
        self._booted_version = 0

    # -- slot bookkeeping ---------------------------------------------------

    def note_boot(self, slot: Slot, envelope: SignedManifest) -> None:
        """Record the bootloader's *verified* choice of running image.

        Without this the agent can only guess the running slot from slot
        headers — and a half-written download (power loss mid-transfer)
        leaves a parseable envelope with a *newer* version in the other
        slot, making the guess wrong in both directions: the device
        reports a version it never verified (so a pull transport skips
        the re-download forever), and :meth:`target_slot` aims the next
        download at the only valid image.  The bootloader's full
        re-verification is the one trustworthy source; the simulated
        device calls this after every boot.
        """
        self._booted_slot = slot
        self._booted_version = envelope.manifest.version

    def running_slot(self) -> Optional[Slot]:
        """The slot holding the currently executing firmware."""
        if self._booted_slot is not None:
            return self._booted_slot
        best: Optional[Slot] = None
        best_version = -1
        candidates = (self.layout.bootable_slots if self.layout.is_ab
                      else [self.layout.bootable_slots[0]])
        for slot in candidates:
            envelope = inspect_slot(slot)
            if envelope and envelope.manifest.version > best_version:
                best = slot
                best_version = envelope.manifest.version
        return best

    def installed_version(self) -> int:
        if self._booted_slot is not None:
            return self._booted_version
        slot = self.running_slot()
        if slot is None:
            return 0
        envelope = inspect_slot(slot)
        return envelope.manifest.version if envelope else 0

    def target_slot(self) -> Slot:
        """Where the next image is staged: the oldest (or empty) slot."""
        if self.layout.is_ab:
            running = self.running_slot()
            for slot in self.layout.bootable_slots:
                if slot is not running:
                    return slot
            return self.layout.bootable_slots[0]
        staging = self.layout.staging_slot
        if staging is None:
            raise StateError("static layout has no staging slot")
        return staging

    # -- token issuance (Waiting → Start update → Receive manifest) ----------

    def request_token(self) -> DeviceToken:
        """Issue a device token (steps 4–5 of Fig. 2) and arm the FSM."""
        if self.state is not AgentState.WAITING:
            raise StateError(
                "token requested in state %s" % self.state.value)
        current = (self.installed_version()
                   if self.profile.supports_differential
                   else NO_DIFF_SUPPORT)
        token = DeviceToken(
            device_id=self.profile.device_id,
            nonce=self._nonce_source(),
            current_version=current,
        )
        self._token = token
        self.stats.tokens_issued += 1

        self.state = AgentState.START_UPDATE
        self._target_slot = self.target_slot()
        self._slot_file = self._target_slot.open(OpenMode.WRITE_ALL)
        self._manifest_buf.clear()
        self._payload_received = 0
        self.state = AgentState.RECEIVE_MANIFEST
        self.events.emit("agent", EventKind.TOKEN_ISSUED,
                         nonce=token.nonce,
                         current_version=token.current_version)
        return token

    # -- data path -------------------------------------------------------------

    def feed(self, data: bytes) -> FeedStatus:
        """Handle bytes from the push or pull transport."""
        try:
            return self._feed(data)
        except UpdateError as exc:
            self.events.emit("agent", EventKind.UPDATE_REJECTED,
                             reason=type(exc).__name__,
                             after_payload_bytes=self._payload_received)
            self._clean()
            raise

    def _feed(self, data: bytes) -> FeedStatus:
        if self.state is AgentState.RECEIVE_MANIFEST:
            self._manifest_buf.extend(data)
            self.stats.manifest_bytes += len(data)
            if len(self._manifest_buf) < ENVELOPE_SIZE:
                return FeedStatus.NEED_MORE
            envelope_bytes = bytes(self._manifest_buf[:ENVELOPE_SIZE])
            extra = bytes(self._manifest_buf[ENVELOPE_SIZE:])
            self._manifest_buf.clear()
            self._verify_manifest(envelope_bytes)
            if extra:
                return self._feed(extra)
            return FeedStatus.MANIFEST_VERIFIED

        if self.state is AgentState.RECEIVE_FIRMWARE:
            return self._receive_firmware(data)

        raise StateError(
            "received %d bytes in state %s" % (len(data), self.state.value))

    def _verify_manifest(self, envelope_bytes: bytes) -> None:
        """State VERIFY_MANIFEST: the agent-side early verification."""
        self.state = AgentState.VERIFY_MANIFEST
        with self.tracer.span("verify.manifest", category="verification"):
            envelope = SignedManifest.unpack(envelope_bytes)
            assert self._token is not None \
                and self._target_slot is not None
            capacity = self._target_slot.size - ENVELOPE_SIZE
            self.verifier.validate_for_agent(
                envelope,
                profile=self.profile,
                token=self._token,
                installed_version=self.installed_version(),
                slot_capacity=capacity,
            )
        manifest = envelope.manifest

        old_reader = None
        old_size = 0
        if manifest.is_delta:
            running = self.running_slot()
            if running is None:
                raise ManifestFormatError(
                    "differential update but no installed firmware")
            installed = inspect_slot(running)
            assert installed is not None
            old_size = installed.manifest.size

            def old_reader(offset: int, length: int,
                           _slot: Slot = running) -> bytes:
                return _slot.read(ENVELOPE_SIZE + offset, length)

        # Persist the envelope at the slot head, then stream the payload
        # right behind it.
        self._slot_file.seek(0)
        self._slot_file.write(envelope_bytes)
        self._pending_manifest = manifest
        cipher = None
        if self.cipher is not None:
            # Mirror the server's per-request keystream derivation.
            cipher = self.cipher.derive(self._token.pack())
        self._pipeline = build_pipeline(
            manifest,
            sink=self._slot_file.write,
            old_reader=old_reader,
            old_size=old_size,
            cipher=cipher,
            buffer_size=self.pipeline_buffer_size,
        )
        self._pipeline.tracer = self.tracer
        self.state = AgentState.RECEIVE_FIRMWARE
        self.events.emit("agent", EventKind.MANIFEST_VERIFIED,
                         version=manifest.version,
                         delta=manifest.is_delta,
                         payload_size=manifest.payload_size)

    def _receive_firmware(self, data: bytes) -> FeedStatus:
        assert self._pending_manifest is not None and self._pipeline is not None
        manifest = self._pending_manifest
        if self._payload_received + len(data) > manifest.payload_size:
            raise SizeExceeded(
                "payload exceeded declared size of %d bytes"
                % manifest.payload_size)
        self._payload_received += len(data)
        self._pipeline.feed(data)
        if self._payload_received < manifest.payload_size:
            return FeedStatus.NEED_MORE
        with self.tracer.span("pipeline.finish", category="pipeline"):
            self._pipeline.finish()
        self._flush_pipeline_metrics()
        written = self._pipeline.bytes_out
        self.stats.payload_bytes += self._payload_received
        if written != manifest.size:
            raise SizeExceeded(
                "pipeline produced %d bytes, manifest declares %d"
                % (written, manifest.size))
        self._verify_firmware()
        return FeedStatus.FIRMWARE_COMPLETE

    def _verify_firmware(self) -> None:
        """State VERIFY_FIRMWARE: digest what actually landed in flash."""
        self.state = AgentState.VERIFY_FIRMWARE
        manifest = self._pending_manifest
        slot = self._target_slot
        assert manifest is not None and slot is not None
        with self.tracer.span("verify.firmware", category="verification",
                              version=manifest.version,
                              nbytes=manifest.size):
            self.verifier.verify_firmware(
                manifest,
                lambda offset, length: slot.read(ENVELOPE_SIZE + offset,
                                                 length),
            )
        self._slot_file.close()
        self.events.emit("agent", EventKind.FIRMWARE_VERIFIED,
                         version=manifest.version, size=manifest.size)
        self.state = AgentState.READY_TO_REBOOT
        self.events.emit("agent", EventKind.READY_TO_REBOOT,
                         version=manifest.version)
        self.stats.updates_completed += 1

    def _flush_pipeline_metrics(self) -> None:
        """Roll the pipeline's per-stage byte counts into the registry.

        Called once per pipeline (at finish and at clean), not per
        chunk, so the hot feed path takes no registry locks.
        """
        if self.metrics is None or self._pipeline is None \
                or self._pipeline.metrics_flushed:
            return
        self._pipeline.metrics_flushed = True
        for name, (bytes_in, bytes_out) in \
                self._pipeline.stage_bytes.items():
            self.metrics.counter(
                "pipeline.%s.bytes_in" % name).inc(bytes_in)
            self.metrics.counter(
                "pipeline.%s.bytes_out" % name).inc(bytes_out)
        self.metrics.counter("pipeline.bytes_written").inc(
            self._pipeline.bytes_out)

    # -- cleaning / cancellation -------------------------------------------------

    def cancel(self) -> None:
        """Abort an in-flight update (e.g. transport gave up)."""
        if self.state not in (AgentState.WAITING, AgentState.READY_TO_REBOOT):
            self._clean()

    def power_cycle(self) -> None:
        """Model an abrupt reboot: every in-RAM FSM variable is lost.

        Unlike :meth:`cancel` this performs *no* cleaning — a crashed
        device never gets to invalidate its slot.  Whatever half-written
        image sits in flash is left for the bootloader's re-verification
        to reject (the stale-verdict scenario of Sect. IV the second
        signature check exists for).
        """
        if self._slot_file is not None:
            self._slot_file.close()
        self._token = None
        self._target_slot = None
        self._pending_manifest = None
        self._pipeline = None
        self._slot_file = None
        self._manifest_buf.clear()
        self._payload_received = 0
        self.state = AgentState.WAITING

    def _clean(self) -> None:
        """State CLEANING: invalidate the slot, reset all FSM variables."""
        self.state = AgentState.CLEANING
        self._flush_pipeline_metrics()
        self.stats.updates_rejected += 1
        if self._payload_received == 0:
            self.stats.rejected_before_download += 1
        else:
            self.stats.rejected_after_download += 1
        if self._target_slot is not None:
            self._target_slot.invalidate()
            self.events.emit("agent", EventKind.SLOT_CLEANED,
                             slot=self._target_slot.name)
        if self._slot_file is not None:
            self._slot_file.close()
        self._token = None
        self._target_slot = None
        self._pending_manifest = None
        self._pipeline = None
        self._slot_file = None
        self._manifest_buf.clear()
        self._payload_received = 0
        self.state = AgentState.WAITING

    # -- post-update --------------------------------------------------------------

    @property
    def staged_slot(self) -> Optional[Slot]:
        """The slot the in-flight (or just-completed) update is written to."""
        return self._target_slot

    @property
    def ready_to_reboot(self) -> bool:
        return self.state is AgentState.READY_TO_REBOOT

    def acknowledge_reboot(self) -> None:
        """Reset the FSM after the device reboots into the bootloader."""
        if self.state is not AgentState.READY_TO_REBOOT:
            raise StateError("no completed update to reboot into")
        self.state = AgentState.WAITING
        self._token = None
        self._target_slot = None
        self._pending_manifest = None
        self._pipeline = None
        self._slot_file = None
        self._payload_received = 0
