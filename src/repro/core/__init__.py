"""UpKit core: the paper's primary contribution.

Generation (vendor server) → propagation (update server, double
signature, device token) → verification (update agent *and*
bootloader, shared verifier) → loading (static or A/B slots), with the
on-the-fly pipeline for differential updates.
"""

from .agent import (
    AgentState,
    AgentStats,
    FeedStatus,
    UpdateAgent,
    inspect_slot,
)
from .bootloader import Bootloader, BootMode, BootResult
from .errors import (
    BootError,
    DigestMismatch,
    IncompatibleLinkOffset,
    ManifestFormatError,
    NoValidImage,
    PipelineError,
    ServerUnavailable,
    SignatureInvalid,
    SizeExceeded,
    StaleVersion,
    StateError,
    TokenMismatch,
    TransferAbandoned,
    UpdateError,
    VerificationError,
    WrongApplication,
    WrongDevice,
)
from .events import EventKind, EventLog, UpdateEvent
from .factory import (
    FACTORY_NONCE,
    install_factory_image,
    make_factory_image,
    provision_device,
)
from .image import ENVELOPE_SIZE, SIGNATURE_SIZE, SignedManifest, UpdateImage
from .keys import SigningIdentity, TrustAnchors, make_test_identities
from .manifest import MANIFEST_SIZE, Manifest, PayloadKind
from .pipeline import (
    BufferStage,
    DecompressionStage,
    DecryptionStage,
    PatchingStage,
    Pipeline,
    Stage,
    build_pipeline,
)
from .profile import DeviceProfile
from .rotation import (
    ROLE_SERVER,
    ROLE_VENDOR,
    RotationError,
    RotationStatement,
    TrustStore,
)
from .server import ServerStats, UpdateServer
from .token import NO_DIFF_SUPPORT, TOKEN_SIZE, DeviceToken
from .vendor import VendorRelease, VendorServer
from .verifier import Verifier

__all__ = [
    "AgentState",
    "AgentStats",
    "BootError",
    "BootMode",
    "BootResult",
    "Bootloader",
    "BufferStage",
    "DecompressionStage",
    "DecryptionStage",
    "DeviceProfile",
    "DeviceToken",
    "DigestMismatch",
    "ENVELOPE_SIZE",
    "EventKind",
    "EventLog",
    "FACTORY_NONCE",
    "FeedStatus",
    "IncompatibleLinkOffset",
    "MANIFEST_SIZE",
    "Manifest",
    "ManifestFormatError",
    "NO_DIFF_SUPPORT",
    "NoValidImage",
    "PatchingStage",
    "PayloadKind",
    "Pipeline",
    "PipelineError",
    "ROLE_SERVER",
    "ROLE_VENDOR",
    "RotationError",
    "RotationStatement",
    "ServerStats",
    "SIGNATURE_SIZE",
    "SignatureInvalid",
    "SignedManifest",
    "SigningIdentity",
    "SizeExceeded",
    "ServerUnavailable",
    "StaleVersion",
    "Stage",
    "StateError",
    "TOKEN_SIZE",
    "TokenMismatch",
    "TransferAbandoned",
    "TrustAnchors",
    "TrustStore",
    "UpdateAgent",
    "UpdateError",
    "UpdateEvent",
    "UpdateImage",
    "UpdateServer",
    "VendorRelease",
    "VendorServer",
    "VerificationError",
    "Verifier",
    "WrongApplication",
    "WrongDevice",
    "build_pipeline",
    "inspect_slot",
    "install_factory_image",
    "make_factory_image",
    "make_test_identities",
    "provision_device",
]
