"""Structured update events: observability for agent and bootloader.

A production update system needs an audit trail — which updates were
offered, why one was rejected, whether a boot rolled back.  The agent
and bootloader emit typed events into an :class:`EventLog` (bounded, so
it fits a constrained device's RAM budget); tests and operators assert
on sequences instead of scraping logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["EventKind", "UpdateEvent", "EventLog"]


class EventKind(enum.Enum):
    """Every event the agent and bootloader can emit."""

    # Agent-side.
    TOKEN_ISSUED = "token_issued"
    MANIFEST_VERIFIED = "manifest_verified"
    UPDATE_REJECTED = "update_rejected"
    FIRMWARE_VERIFIED = "firmware_verified"
    SLOT_CLEANED = "slot_cleaned"
    READY_TO_REBOOT = "ready_to_reboot"
    # Transport-side (interrupted-transfer observability): emitted into
    # the agent's log by the push/pull transports so an operator can see
    # *why* a device took long (resumed transfers) or gave up.
    TRANSFER_INTERRUPTED = "transfer_interrupted"
    TRANSFER_RESUMED = "transfer_resumed"
    UPDATE_ABANDONED = "update_abandoned"
    # Bootloader-side.
    BOOT_SELECTED = "boot_selected"
    SWAP_STARTED = "swap_started"
    SWAP_RESUMED = "swap_resumed"
    ROLLED_BACK = "rolled_back"
    RECOVERY_USED = "recovery_used"


@dataclass(frozen=True)
class UpdateEvent:
    """One event: who, what, and structured details."""

    source: str              # "agent" or "bootloader"
    kind: EventKind
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        extras = " ".join("%s=%r" % item for item in self.detail.items())
        return "[%s] %s %s" % (self.source, self.kind.value, extras)


class EventLog:
    """A bounded, append-only event buffer."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: List[UpdateEvent] = []
        self._listeners: List[Callable[[UpdateEvent], None]] = []
        self.dropped = 0

    def subscribe(self, listener: Callable[[UpdateEvent], None]) -> None:
        """Register a callback invoked synchronously on every emit.

        Listeners see events the buffer has already dropped from its
        ring — this is how the observability layer (tracer, metrics,
        black box) taps the stream without growing the RAM budget.
        """
        self._listeners.append(listener)

    def emit(self, source: str, kind: EventKind, **detail: Any) -> None:
        if len(self._events) >= self.capacity:
            # Drop the oldest: recent history matters most on-device.
            self._events.pop(0)
            self.dropped += 1
        event = UpdateEvent(source=source, kind=kind, detail=detail)
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def all(self) -> List[UpdateEvent]:
        return list(self._events)

    def of_kind(self, kind: EventKind) -> List[UpdateEvent]:
        return [event for event in self._events if event.kind is kind]

    def last(self) -> Optional[UpdateEvent]:
        return self._events[-1] if self._events else None

    def kinds(self) -> List[EventKind]:
        return [event.kind for event in self._events]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
