"""The UpKit manifest: firmware metadata with a double-signature split.

The manifest carries every field the verifier module checks
(Sect. IV-D): ID, nonce, old version, version, size, digest, link
offset and app ID.  Compared to mcuboot/mcumgr manifests, the first
three fields plus the update-server signature are UpKit's additions —
they grant freshness independently of the network configuration and
enable differential updates.

**Signing split.**  The vendor signs at generation time, before any
device token exists, so the *vendor-signed region* is the manifest in
canonical form: token-dependent fields (device_id, nonce, old_version)
zeroed and payload fields set to "full image".  The update server later
fills the token fields, selects the payload encoding (full vs.
lzss-compressed bsdiff delta), and signs the **final manifest bytes
concatenated with the vendor signature** — so neither the manifest nor
the vendor signature can be swapped independently.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from .errors import ManifestFormatError
from .token import DeviceToken

__all__ = ["Manifest", "PayloadKind", "MANIFEST_SIZE", "MAGIC"]

MAGIC = b"UKIT"
_FORMAT = struct.Struct(">4sBBHHIIIIII32s")
MANIFEST_SIZE = _FORMAT.size  # 66 bytes
_HEADER_VERSION = 1
DIGEST_SIZE = 32


class PayloadKind:
    """How the update payload is encoded on the wire."""

    FULL = 0            # raw firmware image
    DELTA_LZSS = 1      # lzss-compressed bsdiff patch
    FULL_ENCRYPTED = 2  # raw firmware through the decryption stage
    DELTA_ENCRYPTED = 3 # encrypted, lzss-compressed bsdiff patch

    ALL = (FULL, DELTA_LZSS, FULL_ENCRYPTED, DELTA_ENCRYPTED)

    @classmethod
    def is_delta(cls, kind: int) -> bool:
        return kind in (cls.DELTA_LZSS, cls.DELTA_ENCRYPTED)

    @classmethod
    def is_encrypted(cls, kind: int) -> bool:
        return kind in (cls.FULL_ENCRYPTED, cls.DELTA_ENCRYPTED)


@dataclass(frozen=True)
class Manifest:
    """Update-image metadata (see module docstring for field semantics)."""

    version: int
    size: int
    digest: bytes
    link_offset: int
    app_id: int
    device_id: int = 0
    nonce: int = 0
    old_version: int = 0
    payload_kind: int = PayloadKind.FULL
    payload_size: int = 0

    def __post_init__(self) -> None:
        if not (0 < self.version < 2 ** 16):
            raise ManifestFormatError("version must be in [1, 65535]")
        if not (0 <= self.old_version < 2 ** 16):
            raise ManifestFormatError("old_version must fit 16 bits")
        if not (0 <= self.size < 2 ** 32) or self.size == 0:
            raise ManifestFormatError("size must be a positive 32-bit value")
        if len(self.digest) != DIGEST_SIZE:
            raise ManifestFormatError("digest must be 32 bytes (SHA-256)")
        if not (0 <= self.link_offset < 2 ** 32):
            raise ManifestFormatError("link_offset must fit 32 bits")
        if not (0 <= self.app_id < 2 ** 32):
            raise ManifestFormatError("app_id must fit 32 bits")
        if not (0 <= self.device_id < 2 ** 32):
            raise ManifestFormatError("device_id must fit 32 bits")
        if not (0 <= self.nonce < 2 ** 32):
            raise ManifestFormatError("nonce must fit 32 bits")
        if self.payload_kind not in PayloadKind.ALL:
            raise ManifestFormatError(
                "unknown payload kind %d" % self.payload_kind)
        if not (0 <= self.payload_size < 2 ** 32):
            raise ManifestFormatError("payload_size must fit 32 bits")

    # -- wire format --------------------------------------------------------

    def pack(self) -> bytes:
        return _FORMAT.pack(
            MAGIC,
            _HEADER_VERSION,
            self.payload_kind,
            self.version,
            self.old_version,
            self.device_id,
            self.nonce,
            self.size,
            self.payload_size,
            self.link_offset,
            self.app_id,
            self.digest,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Manifest":
        if len(data) != MANIFEST_SIZE:
            raise ManifestFormatError(
                "manifest must be %d bytes, got %d" % (MANIFEST_SIZE, len(data))
            )
        (magic, header_version, payload_kind, version, old_version,
         device_id, nonce, size, payload_size, link_offset, app_id,
         digest) = _FORMAT.unpack(data)
        if magic != MAGIC:
            raise ManifestFormatError("bad manifest magic %r" % magic)
        if header_version != _HEADER_VERSION:
            raise ManifestFormatError(
                "unsupported manifest header version %d" % header_version)
        return cls(
            version=version,
            size=size,
            digest=digest,
            link_offset=link_offset,
            app_id=app_id,
            device_id=device_id,
            nonce=nonce,
            old_version=old_version,
            payload_kind=payload_kind,
            payload_size=payload_size,
        )

    # -- signing regions -----------------------------------------------------

    def canonical(self) -> "Manifest":
        """The vendor-signed form: token/payload fields normalised."""
        return replace(
            self,
            device_id=0,
            nonce=0,
            old_version=0,
            payload_kind=PayloadKind.FULL,
            payload_size=self.size,
        )

    def canonical_bytes(self) -> bytes:
        return self.canonical().pack()

    # -- server-side specialisation -------------------------------------------

    def bind_token(self, token: DeviceToken, payload_kind: int,
                   payload_size: int, old_version: int = 0) -> "Manifest":
        """Produce the per-request manifest the update server signs."""
        return replace(
            self,
            device_id=token.device_id,
            nonce=token.nonce,
            old_version=old_version,
            payload_kind=payload_kind,
            payload_size=payload_size,
        )

    @property
    def is_delta(self) -> bool:
        return PayloadKind.is_delta(self.payload_kind)

    @property
    def is_encrypted(self) -> bool:
        return PayloadKind.is_encrypted(self.payload_kind)
