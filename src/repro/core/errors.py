"""Typed error surface of the UpKit core.

The FSM maps any :class:`VerificationError` to its *cleaning* state, so
the hierarchy below is part of the behavioural contract: tests assert
not just that an invalid update is rejected but *why* (wrong signature
vs. stale nonce vs. version rollback ...), because each cause maps to a
distinct attack the paper discusses.
"""

from __future__ import annotations

__all__ = [
    "UpdateError",
    "VerificationError",
    "SignatureInvalid",
    "TokenMismatch",
    "WrongDevice",
    "StaleVersion",
    "WrongApplication",
    "IncompatibleLinkOffset",
    "SizeExceeded",
    "DigestMismatch",
    "ManifestFormatError",
    "StateError",
    "PipelineError",
    "ServerUnavailable",
    "TransferAbandoned",
    "BootError",
    "NoValidImage",
]


class UpdateError(Exception):
    """Base class for every UpKit failure."""


class VerificationError(UpdateError):
    """An update image failed validation (agent- or bootloader-side)."""


class SignatureInvalid(VerificationError):
    """A vendor or update-server ECDSA signature did not verify."""

    def __init__(self, which: str) -> None:
        super().__init__("%s signature invalid" % which)
        self.which = which


class TokenMismatch(VerificationError):
    """Manifest nonce does not match the device token (replay attempt)."""


class WrongDevice(VerificationError):
    """Manifest device ID differs from this device's ID."""


class StaleVersion(VerificationError):
    """Manifest version is not strictly greater than the installed one."""


class WrongApplication(VerificationError):
    """Manifest app ID does not match this device's application/platform."""


class IncompatibleLinkOffset(VerificationError):
    """Image was linked for an address this slot cannot satisfy."""


class SizeExceeded(VerificationError):
    """Firmware or payload larger than the manifest / slot allows."""


class DigestMismatch(VerificationError):
    """Computed firmware digest differs from the manifest digest."""


class ManifestFormatError(VerificationError):
    """Manifest bytes are structurally invalid."""


class StateError(UpdateError):
    """An FSM operation was attempted in the wrong state."""


class PipelineError(UpdateError):
    """A pipeline stage failed (bad patch, overflow, decoder error)."""


class ServerUnavailable(UpdateError):
    """The update server could not be reached (outage window)."""


class TransferAbandoned(UpdateError):
    """A transport gave up on an interrupted transfer after exhausting
    its retry budget (see :class:`repro.net.transports.TransportRetryPolicy`)."""


class BootError(UpdateError):
    """Bootloader-level failure."""


class NoValidImage(BootError):
    """No slot holds a bootable, verifiable image."""
