"""The configurable receive pipeline (Sect. IV-C, Fig. 5).

Data received from the network is transformed *on-the-fly* before it
reaches persistent memory, so a differential update never needs an
extra slot to stage the patch.  Stages, in order:

1. **Decryption** (optional; the paper's future-work extension) —
   CTR-mode stream decipher.
2. **Decompression** — LZSS, only for delta payloads.
3. **Patching** — streaming bspatch against the currently installed
   firmware, read back from its slot.
4. **Buffer** — accumulate to the flash sector size ("matching the
   buffer size with the flash sector size results in faster writes and
   fewer flash erasures").
5. **Writer** — pushes buffered data to the slot handle.

For full-image payloads only buffer + writer are active; the pipeline
factory wires stages from the manifest's payload kind.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..compression import LzssDecoder, LzssError
from ..crypto import StreamCipher
from ..delta import PatchFormatError, StreamingPatcher
from ..obs import NULL_TRACER
from .errors import PipelineError
from .manifest import Manifest

__all__ = [
    "Stage",
    "DecryptionStage",
    "DecompressionStage",
    "PatchingStage",
    "BufferStage",
    "Pipeline",
    "build_pipeline",
]

WriteSink = Callable[[bytes], int]
OldReader = Callable[[int, int], bytes]


class Stage:
    """A pipeline stage: transform a chunk, flush leftovers at the end."""

    name = "stage"

    def feed(self, data: bytes) -> bytes:
        raise NotImplementedError

    def finish(self) -> bytes:
        """Flush and validate end-of-stream; default is empty."""
        return b""


class DecryptionStage(Stage):
    """CTR-mode stream decryption (optional extension stage)."""

    name = "decryption"

    def __init__(self, cipher: StreamCipher) -> None:
        self._cipher = cipher

    def feed(self, data: bytes) -> bytes:
        return self._cipher.process(data)


class DecompressionStage(Stage):
    """LZSS decompression of the delta stream."""

    name = "decompression"

    def __init__(self) -> None:
        self._decoder = LzssDecoder()

    def feed(self, data: bytes) -> bytes:
        try:
            return self._decoder.feed(data)
        except LzssError as exc:
            raise PipelineError("decompression: %s" % exc) from exc

    def finish(self) -> bytes:
        try:
            self._decoder.finish()
        except LzssError as exc:
            raise PipelineError("decompression: %s" % exc) from exc
        return b""


class PatchingStage(Stage):
    """Streaming bspatch against the installed firmware."""

    name = "patching"

    def __init__(self, old_reader: OldReader, old_size: int) -> None:
        self._patcher = StreamingPatcher(old_reader, old_size)

    def feed(self, data: bytes) -> bytes:
        try:
            return self._patcher.feed(data)
        except PatchFormatError as exc:
            raise PipelineError("patching: %s" % exc) from exc

    def finish(self) -> bytes:
        try:
            self._patcher.finish()
        except PatchFormatError as exc:
            raise PipelineError("patching: %s" % exc) from exc
        return b""


class BufferStage(Stage):
    """Accumulates output to ``buffer_size`` (ideally the sector size)."""

    name = "buffer"

    def __init__(self, buffer_size: int = 4096) -> None:
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        self.buffer_size = buffer_size
        self._buf = bytearray()

    def feed(self, data: bytes) -> bytes:
        buf = self._buf
        buf.extend(data)
        size = len(buf)
        if size < self.buffer_size:
            return b""
        emit_len = size - (size % self.buffer_size)
        if emit_len == size:
            # Whole-buffer emit (the common case: sector-aligned
            # chunks): one copy, no slice staging.
            out = bytes(buf)
            buf.clear()
        else:
            with memoryview(buf) as staged:
                out = bytes(staged[:emit_len])
            del buf[:emit_len]
        return out

    def finish(self) -> bytes:
        out = bytes(self._buf)
        self._buf.clear()
        return out


class Pipeline:
    """A chain of stages ending in a write sink."""

    def __init__(self, stages: List[Stage], sink: WriteSink) -> None:
        self.stages = stages
        self._sink = sink
        self.bytes_in = 0
        self.bytes_out = 0
        self._finished = False
        #: Per-stage ``[bytes_in, bytes_out]``, surfaced as
        #: ``pipeline.<stage>.*`` metrics by the agent.
        self.stage_bytes = {stage.name: [0, 0] for stage in stages}
        #: One-shot latch so the agent flushes each pipeline's stage
        #: counts into its registry exactly once.
        self.metrics_flushed = False
        #: The owning agent's tracer (stage-level spans); the shared
        #: null tracer keeps the hot path free when tracing is off.
        self.tracer = NULL_TRACER

    @property
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def feed(self, chunk: bytes) -> int:
        """Push a network chunk through every stage; returns bytes written."""
        if self._finished:
            raise PipelineError("pipeline already finished")
        self.bytes_in += len(chunk)
        # Zero-copy staging: chunks arriving as bytes pass through
        # untouched; only mutable buffers are snapshotted.
        data = chunk if type(chunk) is bytes else bytes(chunk)
        for stage in self.stages:
            record = self.stage_bytes[stage.name]
            record[0] += len(data)
            with self.tracer.span(stage.name, category="pipeline",
                                  nbytes=len(data)):
                data = stage.feed(data)
            record[1] += len(data)
            if not data:
                return 0
        return self._write(data)

    def finish(self) -> int:
        """Flush every stage in order; returns total bytes written."""
        if self._finished:
            raise PipelineError("pipeline already finished")
        self._finished = True
        carry = b""
        for index, stage in enumerate(self.stages):
            record = self.stage_bytes[stage.name]
            if carry:
                record[0] += len(carry)
                carry = stage.feed(carry)
                record[1] += len(carry)
            flushed = stage.finish()
            record[1] += len(flushed)
            carry = (carry or b"") + flushed
        if carry:
            self._write(carry)
        return self.bytes_out

    def _write(self, data: bytes) -> int:
        with self.tracer.span("flash.write", category="pipeline",
                              nbytes=len(data)):
            written = self._sink(data)
        if written != len(data):
            raise PipelineError(
                "sink accepted %d of %d bytes" % (written, len(data)))
        self.bytes_out += len(data)
        return written


def build_pipeline(
    manifest: Manifest,
    sink: WriteSink,
    old_reader: Optional[OldReader] = None,
    old_size: int = 0,
    cipher: Optional[StreamCipher] = None,
    buffer_size: int = 4096,
) -> Pipeline:
    """Wire the stages required by ``manifest.payload_kind``."""
    stages: List[Stage] = []
    if manifest.is_encrypted:
        if cipher is None:
            raise PipelineError(
                "encrypted payload but no cipher configured")
        cipher.reset()
        stages.append(DecryptionStage(cipher))
    if manifest.is_delta:
        if old_reader is None:
            raise PipelineError(
                "differential payload but no installed firmware to patch")
        stages.append(DecompressionStage())
        stages.append(PatchingStage(old_reader, old_size))
    stages.append(BufferStage(buffer_size))
    return Pipeline(stages, sink)
