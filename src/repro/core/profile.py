"""Device identity and compatibility profile.

The verifier checks a manifest against *this device's* identity: its
unique ID, the application/platform identifier its firmware was built
for, and the address firmware must be linked to.  In Configuration A
(A/B slots) the simulated MCU bank-remaps the active slot to the link
address, so a single ``link_offset`` suffices for both slots; this is
documented as a modeling assumption in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile"]


@dataclass(frozen=True)
class DeviceProfile:
    """Everything the verifier needs to know about the device."""

    device_id: int
    app_id: int
    link_offset: int
    supports_differential: bool = True

    def __post_init__(self) -> None:
        for name in ("device_id", "app_id", "link_offset"):
            value = getattr(self, name)
            if not (0 <= value < 2 ** 32):
                raise ValueError("%s must fit 32 bits" % name)
