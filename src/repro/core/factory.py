"""Factory provisioning: installing the initial firmware image.

Devices leave the factory with a firmware already in the bootable slot.
That image must still verify (the bootloader checks every boot), so it
is double-signed like any update but bound to the reserved nonce 0 —
the agent's nonce source never issues 0, so a factory image can never
masquerade as the answer to a live update request.
"""

from __future__ import annotations

from ..memory import OpenMode, Slot
from .image import UpdateImage
from .server import UpdateServer
from .token import DeviceToken

__all__ = ["make_factory_image", "install_factory_image", "provision_device"]

FACTORY_NONCE = 0


def make_factory_image(server: UpdateServer, device_id: int) -> UpdateImage:
    """Ask the update server for a full image bound to the factory nonce."""
    token = DeviceToken(device_id=device_id, nonce=FACTORY_NONCE,
                        current_version=0)
    return server.prepare_update(token)


def install_factory_image(slot: Slot, image: UpdateImage) -> None:
    """Write envelope + firmware into ``slot`` (production-line step)."""
    handle = slot.open(OpenMode.WRITE_ALL)
    handle.write(image.envelope.pack())
    handle.write(image.payload)
    handle.close()


def provision_device(server: UpdateServer, slot: Slot,
                     device_id: int) -> UpdateImage:
    """Convenience: build and install the factory image in one call."""
    image = make_factory_image(server, device_id)
    install_factory_image(slot, image)
    return image
