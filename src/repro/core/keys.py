"""Key material and roles for UpKit's double-signature scheme.

Two independent key pairs exist (Sect. III / VII):

* the **vendor key** signs the canonical manifest at generation time —
  integrity and authenticity of the firmware itself;
* the **update-server key** signs the token-bound manifest per request —
  freshness.

Compromising either key alone cannot produce an update a device
accepts; devices carry both public keys (optionally inside an ATECC508,
see :mod:`repro.crypto.hsm`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import PrivateKey, PublicKey, generate_keypair

__all__ = ["TrustAnchors", "SigningIdentity", "make_test_identities"]


@dataclass(frozen=True)
class TrustAnchors:
    """The two public keys every device is provisioned with."""

    vendor: PublicKey
    server: PublicKey


@dataclass(frozen=True)
class SigningIdentity:
    """A private key with its role name (for audit trails and errors)."""

    role: str
    private_key: PrivateKey

    def public_key(self) -> PublicKey:
        return self.private_key.public_key()

    def sign(self, message: bytes) -> bytes:
        return self.private_key.sign(message).encode()


def make_test_identities(
    vendor_seed: bytes = b"upkit-vendor",
    server_seed: bytes = b"upkit-server",
) -> "tuple[SigningIdentity, SigningIdentity, TrustAnchors]":
    """Deterministic vendor/server identities for examples and tests."""
    vendor = SigningIdentity("vendor", generate_keypair(vendor_seed))
    server = SigningIdentity("update-server", generate_keypair(server_seed))
    anchors = TrustAnchors(vendor=vendor.public_key(),
                           server=server.public_key())
    return vendor, server, anchors
