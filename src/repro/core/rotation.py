"""Trust-anchor rotation: surviving vendor / update-server key compromise.

The paper adopts its double-signature idea from TUF ("Survivable Key
Compromise in Software Update Systems" [40]) but leaves key *rotation*
out of scope.  This module adds it, TUF-style:

* an offline **root key** is provisioned alongside the vendor and
  update-server keys;
* a **rotation statement** — role, generation counter, new public key —
  must carry two signatures: the *root* key and the *current* key of
  the rotated role.  Neither a stolen role key nor a stolen root key
  alone can rotate trust;
* generations are monotonic per role, so replaying an old statement
  (rolling back to a compromised key) is rejected.

Devices keep a :class:`TrustStore`; applying a valid statement yields
new :class:`TrustAnchors` for the verifier.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict

from ..crypto import PrivateKey, PublicKey, Signature, SignatureError
from .errors import VerificationError
from .keys import TrustAnchors

__all__ = ["RotationStatement", "TrustStore", "RotationError",
           "ROLE_VENDOR", "ROLE_SERVER"]

ROLE_VENDOR = 1
ROLE_SERVER = 2
_ROLE_NAMES = {ROLE_VENDOR: "vendor", ROLE_SERVER: "update-server"}

_BODY = struct.Struct(">4sBI65s")
MAGIC = b"UKRT"
STATEMENT_SIZE = _BODY.size + 2 * 64


class RotationError(VerificationError):
    """A rotation statement failed validation."""


@dataclass(frozen=True)
class RotationStatement:
    """A double-signed 'replace role key' statement."""

    role: int
    generation: int
    new_key: PublicKey
    root_signature: bytes
    role_signature: bytes

    def __post_init__(self) -> None:
        if self.role not in _ROLE_NAMES:
            raise RotationError("unknown role %d" % self.role)
        if not (0 < self.generation < 2 ** 32):
            raise RotationError("generation must be a positive 32-bit int")
        for name, sig in (("root", self.root_signature),
                          ("role", self.role_signature)):
            if len(sig) != 64:
                raise RotationError("%s signature must be 64 bytes" % name)

    # -- wire format -----------------------------------------------------------

    def body(self) -> bytes:
        return _BODY.pack(MAGIC, self.role, self.generation,
                          self.new_key.encode())

    def pack(self) -> bytes:
        return self.body() + self.root_signature + self.role_signature

    @classmethod
    def unpack(cls, data: bytes) -> "RotationStatement":
        if len(data) != STATEMENT_SIZE:
            raise RotationError(
                "statement must be %d bytes, got %d"
                % (STATEMENT_SIZE, len(data)))
        magic, role, generation, key_bytes = _BODY.unpack(
            data[:_BODY.size])
        if magic != MAGIC:
            raise RotationError("bad statement magic %r" % magic)
        try:
            new_key = PublicKey.decode(key_bytes)
        except Exception as exc:
            raise RotationError("invalid new key: %s" % exc) from exc
        return cls(
            role=role, generation=generation, new_key=new_key,
            root_signature=data[_BODY.size:_BODY.size + 64],
            role_signature=data[_BODY.size + 64:],
        )

    # -- creation ------------------------------------------------------------------

    @classmethod
    def create(cls, role: int, generation: int, new_key: PublicKey,
               root_key: PrivateKey,
               current_role_key: PrivateKey) -> "RotationStatement":
        body = _BODY.pack(MAGIC, role, generation, new_key.encode())
        return cls(
            role=role, generation=generation, new_key=new_key,
            root_signature=root_key.sign(body).encode(),
            role_signature=current_role_key.sign(body).encode(),
        )


class TrustStore:
    """A device's mutable trust state: root + per-role anchors."""

    def __init__(self, root: PublicKey, anchors: TrustAnchors) -> None:
        self.root = root
        self._keys: Dict[int, PublicKey] = {
            ROLE_VENDOR: anchors.vendor,
            ROLE_SERVER: anchors.server,
        }
        self._generations: Dict[int, int] = {ROLE_VENDOR: 0,
                                             ROLE_SERVER: 0}

    @property
    def anchors(self) -> TrustAnchors:
        return TrustAnchors(vendor=self._keys[ROLE_VENDOR],
                            server=self._keys[ROLE_SERVER])

    def generation(self, role: int) -> int:
        return self._generations[role]

    # -- rotation ---------------------------------------------------------------

    def apply(self, statement: RotationStatement) -> TrustAnchors:
        """Validate and apply a rotation; returns the new anchors."""
        role = statement.role
        if role not in self._keys:
            raise RotationError("unknown role %d" % role)
        if statement.generation <= self._generations[role]:
            raise RotationError(
                "generation %d is not newer than %d (replay?)"
                % (statement.generation, self._generations[role]))

        body = statement.body()
        if not self._verify(self.root, statement.root_signature, body):
            raise RotationError("root signature invalid")
        if not self._verify(self._keys[role], statement.role_signature,
                            body):
            raise RotationError(
                "current %s key signature invalid" % _ROLE_NAMES[role])

        self._keys[role] = statement.new_key
        self._generations[role] = statement.generation
        return self.anchors

    @staticmethod
    def _verify(key: PublicKey, signature_bytes: bytes,
                body: bytes) -> bool:
        try:
            signature = Signature.decode(signature_bytes)
        except SignatureError:
            return False
        return key.verify(signature, body)
