"""Update-image framing: manifest envelope + payload.

Wire layout of a complete update image::

    manifest (66 B) | vendor signature (64 B) | server signature (64 B)
    | payload (manifest.payload_size bytes)

The *envelope* (manifest + both signatures, 194 bytes) is what the
proxy forwards first (step 8 in Fig. 2); the agent verifies it before
accepting a single payload byte — the early-rejection property.  The
same envelope is stored at the head of a memory slot so the bootloader
can re-verify after reboot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import Signature, SignatureError
from .errors import ManifestFormatError
from .manifest import MANIFEST_SIZE, Manifest

__all__ = ["SignedManifest", "UpdateImage", "ENVELOPE_SIZE", "SIGNATURE_SIZE"]

SIGNATURE_SIZE = 64
ENVELOPE_SIZE = MANIFEST_SIZE + 2 * SIGNATURE_SIZE


@dataclass(frozen=True)
class SignedManifest:
    """Manifest plus the two detached signatures."""

    manifest: Manifest
    vendor_signature: bytes
    server_signature: bytes

    def __post_init__(self) -> None:
        for name, sig in (("vendor", self.vendor_signature),
                          ("server", self.server_signature)):
            if len(sig) != SIGNATURE_SIZE:
                raise ManifestFormatError(
                    "%s signature must be %d bytes" % (name, SIGNATURE_SIZE))

    def pack(self) -> bytes:
        return (self.manifest.pack() + self.vendor_signature
                + self.server_signature)

    @classmethod
    def unpack(cls, data: bytes) -> "SignedManifest":
        if len(data) != ENVELOPE_SIZE:
            raise ManifestFormatError(
                "envelope must be %d bytes, got %d" % (ENVELOPE_SIZE, len(data))
            )
        return cls(
            manifest=Manifest.unpack(data[:MANIFEST_SIZE]),
            vendor_signature=data[MANIFEST_SIZE:MANIFEST_SIZE + SIGNATURE_SIZE],
            server_signature=data[MANIFEST_SIZE + SIGNATURE_SIZE:],
        )

    # -- signature accessors (decoded, with structural validation) ---------

    def decoded_vendor_signature(self) -> Signature:
        try:
            return Signature.decode(self.vendor_signature)
        except SignatureError as exc:
            raise ManifestFormatError("vendor signature: %s" % exc) from exc

    def decoded_server_signature(self) -> Signature:
        try:
            return Signature.decode(self.server_signature)
        except SignatureError as exc:
            raise ManifestFormatError("server signature: %s" % exc) from exc

    def server_signed_region(self) -> bytes:
        """What the update server signs: manifest bytes ‖ vendor signature."""
        return self.manifest.pack() + self.vendor_signature


@dataclass(frozen=True)
class UpdateImage:
    """A full update image: signed envelope plus payload bytes."""

    envelope: SignedManifest
    payload: bytes

    def __post_init__(self) -> None:
        declared = self.envelope.manifest.payload_size
        if len(self.payload) != declared:
            raise ManifestFormatError(
                "payload is %d bytes but manifest declares %d"
                % (len(self.payload), declared)
            )

    @property
    def manifest(self) -> Manifest:
        return self.envelope.manifest

    def pack(self) -> bytes:
        return self.envelope.pack() + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "UpdateImage":
        if len(data) < ENVELOPE_SIZE:
            raise ManifestFormatError("image shorter than its envelope")
        envelope = SignedManifest.unpack(data[:ENVELOPE_SIZE])
        payload = data[ENVELOPE_SIZE:]
        if len(payload) != envelope.manifest.payload_size:
            raise ManifestFormatError(
                "image payload is %d bytes, manifest declares %d"
                % (len(payload), envelope.manifest.payload_size)
            )
        return cls(envelope=envelope, payload=payload)

    @property
    def total_size(self) -> int:
        return ENVELOPE_SIZE + len(self.payload)
