"""The verifier module, shared by update agent and bootloader.

UpKit's key architectural move (Sect. III-C / IV-D) is running the
*same* verifier twice: once in the update agent — rejecting invalid
software before it is stored or the device reboots — and once in the
bootloader, which re-establishes integrity after reboot (the agent's
verdict may be stale if power was lost mid-propagation).

The split of checks between the two callers:

* **agent** — signatures, token binding (device ID + nonce), version
  monotonicity, differential consistency (old version), app ID,
  link offset, size vs. slot capacity; then the firmware digest once
  the payload has been written.
* **bootloader** — signatures, app ID, link offset, firmware digest.
  The nonce cannot be re-checked after reboot (the token lives in the
  agent's RAM) and version ordering is the bootloader's slot-selection
  rule rather than a per-image check.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..crypto import CryptoBackend
from .errors import (
    DigestMismatch,
    IncompatibleLinkOffset,
    SignatureInvalid,
    SizeExceeded,
    StaleVersion,
    TokenMismatch,
    WrongApplication,
    WrongDevice,
)
from .image import SignedManifest
from .keys import TrustAnchors
from .manifest import Manifest
from .profile import DeviceProfile
from .token import DeviceToken

__all__ = ["Verifier"]

FirmwareReader = Callable[[int, int], bytes]
_HASH_CHUNK = 4096


class Verifier:
    """Stateless validation logic over a crypto backend and trust anchors."""

    def __init__(self, anchors: TrustAnchors, backend: CryptoBackend) -> None:
        self.anchors = anchors
        self.backend = backend

    # -- signatures -----------------------------------------------------------

    def verify_signatures(self, envelope: SignedManifest) -> None:
        """Check the double signature; raises :class:`SignatureInvalid`."""
        vendor_ok = self.backend.verify(
            self.anchors.vendor,
            envelope.decoded_vendor_signature(),
            envelope.manifest.canonical_bytes(),
        )
        if not vendor_ok:
            raise SignatureInvalid("vendor")
        server_ok = self.backend.verify(
            self.anchors.server,
            envelope.decoded_server_signature(),
            envelope.server_signed_region(),
        )
        if not server_ok:
            raise SignatureInvalid("update-server")

    # -- manifest field checks --------------------------------------------------

    def validate_for_agent(
        self,
        envelope: SignedManifest,
        profile: DeviceProfile,
        token: DeviceToken,
        installed_version: int,
        slot_capacity: int,
    ) -> None:
        """Full agent-side validation (step 9 of Fig. 2)."""
        self.verify_signatures(envelope)
        manifest = envelope.manifest

        if manifest.device_id != profile.device_id:
            raise WrongDevice(
                "manifest is for device 0x%08X, we are 0x%08X"
                % (manifest.device_id, profile.device_id)
            )
        if manifest.nonce != token.nonce:
            raise TokenMismatch(
                "manifest nonce 0x%08X does not match token nonce 0x%08X"
                % (manifest.nonce, token.nonce)
            )
        if manifest.version <= installed_version:
            raise StaleVersion(
                "manifest version %d is not newer than installed %d"
                % (manifest.version, installed_version)
            )
        if manifest.is_delta:
            if not profile.supports_differential:
                raise TokenMismatch(
                    "received a differential update but the device opted out")
            if manifest.old_version != token.current_version:
                raise TokenMismatch(
                    "delta built against version %d, device runs %d"
                    % (manifest.old_version, token.current_version)
                )
        self._check_compatibility(manifest, profile)
        if manifest.size > slot_capacity:
            raise SizeExceeded(
                "firmware of %d bytes does not fit slot of %d bytes"
                % (manifest.size, slot_capacity)
            )
        if manifest.payload_size > slot_capacity:
            raise SizeExceeded(
                "payload of %d bytes exceeds slot of %d bytes"
                % (manifest.payload_size, slot_capacity)
            )

    def validate_for_bootloader(
        self,
        envelope: SignedManifest,
        profile: DeviceProfile,
    ) -> None:
        """Bootloader-side re-validation (step 16 of Fig. 2)."""
        self.verify_signatures(envelope)
        manifest = envelope.manifest
        if manifest.device_id not in (0, profile.device_id):
            raise WrongDevice(
                "stored image bound to device 0x%08X, we are 0x%08X"
                % (manifest.device_id, profile.device_id)
            )
        self._check_compatibility(manifest, profile)

    def _check_compatibility(self, manifest: Manifest,
                             profile: DeviceProfile) -> None:
        if manifest.app_id != profile.app_id:
            raise WrongApplication(
                "manifest app 0x%08X, device runs 0x%08X"
                % (manifest.app_id, profile.app_id)
            )
        if manifest.link_offset != profile.link_offset:
            raise IncompatibleLinkOffset(
                "image linked for 0x%08X, device boots at 0x%08X"
                % (manifest.link_offset, profile.link_offset)
            )

    # -- firmware digest -----------------------------------------------------

    def verify_firmware(
        self,
        manifest: Manifest,
        read: FirmwareReader,
        length: Optional[int] = None,
    ) -> None:
        """Hash ``length`` bytes via ``read(offset, n)`` and compare digests.

        Used by the agent on the freshly written slot (step 13) and by
        the bootloader on the stored image (step 16).  Chunked reads
        keep RAM usage at one flash page, as the C implementation does.
        """
        total = manifest.size if length is None else length
        hasher = self.backend.new_hash()
        offset = 0
        while offset < total:
            chunk = read(offset, min(_HASH_CHUNK, total - offset))
            if not chunk:
                raise DigestMismatch(
                    "firmware truncated at %d of %d bytes" % (offset, total))
            hasher.update(chunk)
            self.backend.track_hashed(len(chunk))
            offset += len(chunk)
        digest = hasher.digest()
        if digest != manifest.digest:
            raise DigestMismatch(
                "firmware digest %s != manifest digest %s"
                % (digest.hex()[:16], manifest.digest.hex()[:16])
            )
