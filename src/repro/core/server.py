"""Update server: per-request specialisation and second signature.

The update server stores vendor releases, announces new versions, and —
given a device token — produces the update image for *that* device and
*that* request (Sect. III-A/B):

1. copy the token's device ID / nonce into the manifest;
2. if the token advertises a current version the server has, derive a
   bsdiff delta, compress it with LZSS and mark the payload
   ``DELTA_LZSS`` (falling back to the full image when the delta would
   not actually be smaller);
3. sign ``manifest ‖ vendor-signature`` with the update-server key.

Only the private key staying secret is assumed — no reliable time
source or transport security is required for freshness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..compression import compress as lzss_compress
from ..crypto import StreamCipher
from ..delta import diff as bsdiff_diff
from .errors import ManifestFormatError
from .image import SignedManifest, UpdateImage
from .keys import SigningIdentity
from .manifest import PayloadKind
from .token import DeviceToken
from .vendor import VendorRelease

__all__ = ["UpdateServer", "ServerStats"]


@dataclass
class ServerStats:
    """Counters for the evaluation harness."""

    requests: int = 0
    full_updates: int = 0
    delta_updates: int = 0
    delta_fallbacks: int = 0
    bytes_served: int = 0
    delta_cache_hits: int = 0


class UpdateServer:
    """Holds releases and answers device-token requests with signed images."""

    def __init__(self, identity: SigningIdentity,
                 cipher: Optional[StreamCipher] = None) -> None:
        self.identity = identity
        self.cipher = cipher
        self.stats = ServerStats()
        self._releases: Dict[int, VendorRelease] = {}
        self._delta_cache: Dict["tuple[int, int]", bytes] = {}

    # -- publishing ------------------------------------------------------------

    def publish(self, release: VendorRelease) -> None:
        """Accept a vendor release (step 2 of Fig. 2)."""
        if release.version in self._releases:
            raise ManifestFormatError(
                "version %d already published" % release.version)
        self._releases[release.version] = release

    @property
    def latest_version(self) -> int:
        """Newest published version, or 0 when nothing is published."""
        return max(self._releases) if self._releases else 0

    def announce(self) -> "dict[str, int]":
        """The advertisement pushed to proxies (step 3 of Fig. 2)."""
        return {"latest_version": self.latest_version}

    # -- per-request image generation -------------------------------------------

    def prepare_update(self, token: DeviceToken) -> UpdateImage:
        """Build the double-signed update image for one device token."""
        self.stats.requests += 1
        if not self._releases:
            raise ManifestFormatError("no published releases")
        release = self._releases[self.latest_version]

        payload, payload_kind, old_version = self._select_payload(
            release, token)
        if self.cipher is not None:
            # Per-request keystream: two images for different tokens must
            # never share CTR keystream bytes (see StreamCipher.derive).
            request_cipher = self.cipher.derive(token.pack())
            payload = request_cipher.process(payload)
            payload_kind = (PayloadKind.DELTA_ENCRYPTED
                            if PayloadKind.is_delta(payload_kind)
                            else PayloadKind.FULL_ENCRYPTED)

        manifest = release.manifest.bind_token(
            token,
            payload_kind=payload_kind,
            payload_size=len(payload),
            old_version=old_version,
        )
        envelope = SignedManifest(
            manifest=manifest,
            vendor_signature=release.vendor_signature,
            server_signature=self.identity.sign(
                manifest.pack() + release.vendor_signature),
        )
        image = UpdateImage(envelope=envelope, payload=payload)
        self.stats.bytes_served += image.total_size
        return image

    def _select_payload(
        self, release: VendorRelease, token: DeviceToken
    ) -> "tuple[bytes, int, int]":
        """Choose full vs. differential payload for this request."""
        current = token.current_version
        use_delta = (
            token.supports_differential
            and current in self._releases
            and current < release.version
        )
        if not use_delta:
            self.stats.full_updates += 1
            return release.firmware, PayloadKind.FULL, 0

        delta = self._delta_for(current, release)
        if len(delta) >= len(release.firmware):
            # A delta larger than the image defeats its purpose.
            self.stats.delta_fallbacks += 1
            self.stats.full_updates += 1
            return release.firmware, PayloadKind.FULL, 0
        self.stats.delta_updates += 1
        return delta, PayloadKind.DELTA_LZSS, current

    def _delta_for(self, old_version: int, release: VendorRelease) -> bytes:
        key = (old_version, release.version)
        cached = self._delta_cache.get(key)
        if cached is not None:
            self.stats.delta_cache_hits += 1
            return cached
        old_firmware = self._releases[old_version].firmware
        patch = bsdiff_diff(old_firmware, release.firmware)
        delta = lzss_compress(patch)
        self._delta_cache[key] = delta
        return delta
