"""Update server: per-request specialisation and second signature.

The update server stores vendor releases, announces new versions, and —
given a device token — produces the update image for *that* device and
*that* request (Sect. III-A/B):

1. copy the token's device ID / nonce into the manifest;
2. if the token advertises a current version the server has, derive a
   bsdiff delta, compress it with LZSS and mark the payload
   ``DELTA_LZSS`` (falling back to the full image when the delta would
   not actually be smaller);
3. sign ``manifest ‖ vendor-signature`` with the update-server key.

Only the private key staying secret is assumed — no reliable time
source or transport security is required for freshness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..compression import compress as lzss_compress
from ..crypto import StreamCipher
from ..delta import ArtifactCache
from ..delta import diff as bsdiff_diff
from .errors import ManifestFormatError
from .image import SignedManifest, UpdateImage
from .keys import SigningIdentity
from .manifest import PayloadKind
from .token import DeviceToken
from .vendor import VendorRelease

__all__ = ["UpdateServer", "ServerStats", "DEFAULT_DELTA_CACHE_SIZE"]


@dataclass
class ServerStats:
    """Counters for the evaluation harness.

    ``repro.obs.bind_server`` mirrors every field into ``server.*``
    gauges, so delta-cache hit/eviction behaviour is visible in the
    same registry as device-side telemetry.
    """

    requests: int = 0
    full_updates: int = 0
    delta_updates: int = 0
    delta_fallbacks: int = 0
    bytes_served: int = 0
    delta_cache_hits: int = 0
    delta_cache_evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready snapshot (embedded in bench reports)."""
        return {
            "requests": self.requests,
            "full_updates": self.full_updates,
            "delta_updates": self.delta_updates,
            "delta_fallbacks": self.delta_fallbacks,
            "bytes_served": self.bytes_served,
            "delta_cache_hits": self.delta_cache_hits,
            "delta_cache_evictions": self.delta_cache_evictions,
        }


#: Default bound on cached (old_version, new_version) deltas.  A fleet
#: usually spans a handful of trailing versions, so a small LRU keeps
#: the hit rate while capping server memory across long release chains.
DEFAULT_DELTA_CACHE_SIZE = 64


class UpdateServer:
    """Holds releases and answers device-token requests with signed images.

    Thread-safe: a parallel campaign executor issues concurrent
    ``prepare_update`` calls, so the stats counters and the delta cache
    are lock-protected.  Delta *generation* happens under the cache
    lock on purpose — when a whole wave asks for the same
    (old, new) pair at once, exactly one thread pays the bsdiff+LZSS
    cost and the rest get the cached bytes.
    """

    def __init__(self, identity: SigningIdentity,
                 cipher: Optional[StreamCipher] = None,
                 delta_cache_size: int = DEFAULT_DELTA_CACHE_SIZE,
                 artifacts: Optional[ArtifactCache] = None,
                 sign_fn=None) -> None:
        if delta_cache_size < 1:
            raise ValueError("delta_cache_size must be at least 1")
        self.identity = identity
        self.cipher = cipher
        #: Envelope-signing override: the serve plane's signer pool
        #: passes a closure that signs through the shared fast engine
        #: and the single-flight signature cache.  Byte-identical to
        #: ``identity.sign`` by the engine-parity contract; not pickled
        #: (process-pool workers fall back to ``identity.sign``).
        self._sign_fn = sign_fn
        self.delta_cache_size = delta_cache_size
        self.stats = ServerStats()
        #: Content-addressed layer under the version-pair LRU: deltas
        #: and envelope signatures keyed by firmware bytes, so reused
        #: content hits across campaigns and server instances.  Pass
        #: :func:`repro.delta.shared_cache` to share process-wide, or
        #: ``ArtifactCache(max_bytes=0)`` to disable.
        self.artifacts = artifacts if artifacts is not None \
            else ArtifactCache()
        self._releases: Dict[int, VendorRelease] = {}
        self._delta_cache: "OrderedDict[tuple[int, int], bytes]" \
            = OrderedDict()
        self._stats_lock = threading.Lock()
        self._delta_lock = threading.Lock()

    # -- publishing ------------------------------------------------------------

    def publish(self, release: VendorRelease) -> None:
        """Accept a vendor release (step 2 of Fig. 2)."""
        if release.version in self._releases:
            raise ManifestFormatError(
                "version %d already published" % release.version)
        self._releases[release.version] = release

    @property
    def latest_version(self) -> int:
        """Newest published version, or 0 when nothing is published."""
        return max(self._releases) if self._releases else 0

    def has_release(self, version: int) -> bool:
        """Whether ``version`` is published (the service layer's
        channel-resolution check, cheaper than catching the
        :class:`ManifestFormatError` from :meth:`release_content`)."""
        return version in self._releases

    def announce(self) -> "dict[str, int]":
        """The advertisement pushed to proxies (step 3 of Fig. 2)."""
        return {"latest_version": self.latest_version}

    def release_content(self, version: int) -> "tuple[bytes, bytes, bytes]":
        """Identity-independent content of a published release.

        Returns ``(image_digest, canonical_manifest, vendor_signature)``
        — the firmware's SHA-256 (the manifest's digest field), the
        canonical manifest bytes (token fields zeroed), and the vendor
        signature over them.  These are the same for *every* device a
        release is prepared for, which is what lets the fleet-scale
        campaign stamp slot-digest columns and verify the vendor
        signature once per wave instead of once per device.
        """
        release = self._releases.get(version)
        if release is None:
            raise ManifestFormatError("no published release %d" % version)
        return (release.manifest.digest,
                release.manifest.canonical_bytes(),
                release.vendor_signature)

    # -- per-request image generation -------------------------------------------

    def prepare_update(self, token: DeviceToken) -> UpdateImage:
        """Build the double-signed update image for one device token."""
        with self._stats_lock:
            self.stats.requests += 1
        if not self._releases:
            raise ManifestFormatError("no published releases")
        release = self._releases[self.latest_version]

        payload, payload_kind, old_version = self._select_payload(
            release, token)
        if self.cipher is not None:
            # Per-request keystream: two images for different tokens must
            # never share CTR keystream bytes (see StreamCipher.derive).
            request_cipher = self.cipher.derive(token.pack())
            payload = request_cipher.process(payload)
            payload_kind = (PayloadKind.DELTA_ENCRYPTED
                            if PayloadKind.is_delta(payload_kind)
                            else PayloadKind.FULL_ENCRYPTED)

        manifest = release.manifest.bind_token(
            token,
            payload_kind=payload_kind,
            payload_size=len(payload),
            old_version=old_version,
        )
        # RFC 6979 signing is deterministic, so the envelope signature
        # is itself content-addressable: a device retrying the same
        # bound manifest (interrupted transfers, flaky links) reuses
        # the signature instead of re-running scalar multiplication.
        message = manifest.pack() + release.vendor_signature
        sign = self._sign_fn or self.identity.sign
        envelope = SignedManifest(
            manifest=manifest,
            vendor_signature=release.vendor_signature,
            server_signature=self.artifacts.get_or_create(
                message, b"", b"ecdsa-envelope:" + self.identity.role.encode(),
                lambda: sign(message)),
        )
        image = UpdateImage(envelope=envelope, payload=payload)
        with self._stats_lock:
            self.stats.bytes_served += image.total_size
        return image

    def _select_payload(
        self, release: VendorRelease, token: DeviceToken
    ) -> "tuple[bytes, int, int]":
        """Choose full vs. differential payload for this request."""
        current = token.current_version
        use_delta = (
            token.supports_differential
            and current in self._releases
            and current < release.version
        )
        if not use_delta:
            with self._stats_lock:
                self.stats.full_updates += 1
            return release.firmware, PayloadKind.FULL, 0

        delta = self._delta_for(current, release)
        if len(delta) >= len(release.firmware):
            # A delta larger than the image defeats its purpose.
            with self._stats_lock:
                self.stats.delta_fallbacks += 1
                self.stats.full_updates += 1
            return release.firmware, PayloadKind.FULL, 0
        with self._stats_lock:
            self.stats.delta_updates += 1
        return delta, PayloadKind.DELTA_LZSS, current

    def _delta_for(self, old_version: int, release: VendorRelease) -> bytes:
        key = (old_version, release.version)
        with self._delta_lock:
            cached = self._delta_cache.get(key)
            if cached is not None:
                self._delta_cache.move_to_end(key)
                with self._stats_lock:
                    self.stats.delta_cache_hits += 1
                return cached
            old_firmware = self._releases[old_version].firmware
            new_firmware = release.firmware
            # The content-addressed layer below the version-pair LRU:
            # identical firmware bytes reuse the prepared delta across
            # campaigns and server instances.
            delta = self.artifacts.get_or_create(
                old_firmware, new_firmware, b"bsdiff+lzss",
                lambda: lzss_compress(
                    bsdiff_diff(old_firmware, new_firmware)))
            self._delta_cache[key] = delta
            while len(self._delta_cache) > self.delta_cache_size:
                self._delta_cache.popitem(last=False)
                with self._stats_lock:
                    self.stats.delta_cache_evictions += 1
        return delta

    # -- fleet plumbing --------------------------------------------------------

    def export_deltas_since(
        self, keys: "set[tuple[int, int]]"
    ) -> "Dict[tuple[int, int], bytes]":
        """Delta-cache entries added since ``keys`` was snapshotted."""
        with self._delta_lock:
            return {key: value
                    for key, value in self._delta_cache.items()
                    if key not in keys}

    def delta_cache_keys(self) -> "set[tuple[int, int]]":
        with self._delta_lock:
            return set(self._delta_cache)

    def adopt_deltas(
        self, entries: "Dict[tuple[int, int], bytes]"
    ) -> None:
        """Adopt deltas generated by a process-pool worker.

        Existing keys win (the bytes are identical by construction);
        the LRU bound still applies, so adopting cannot grow the cache
        past ``delta_cache_size``.
        """
        with self._delta_lock:
            for key, delta in entries.items():
                if key not in self._delta_cache:
                    self._delta_cache[key] = delta
            while len(self._delta_cache) > self.delta_cache_size:
                self._delta_cache.popitem(last=False)
                with self._stats_lock:
                    self.stats.delta_cache_evictions += 1

    def merge_stats(self, other: ServerStats) -> None:
        """Fold counters from a process-pool worker's server copy."""
        with self._stats_lock:
            mine = self.stats
            for name, value in other.to_dict().items():
                setattr(mine, name, getattr(mine, name) + value)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        del state["_delta_lock"]
        # Signer-pool closures hold an executor; workers re-sign via the
        # identity (byte-identical output, so parity is unaffected).
        state["_sign_fn"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()
        self._delta_lock = threading.Lock()
        self.__dict__.setdefault("_sign_fn", None)
