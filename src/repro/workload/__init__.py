"""Synthetic firmware workloads for the evaluation harness."""

from .generator import FirmwareGenerator

__all__ = ["FirmwareGenerator"]
