"""Synthetic firmware workload generator.

The paper's experiments use real compiled firmware (Zephyr/RIOT/Contiki
builds).  Those cannot be compiled here, so this generator produces
firmware images with the *structural properties that matter to the
update path*:

* deterministic content from a seed (reproducible experiments);
* block-structured "code": each 256-byte block derives from a block
  identity, so successive versions share unchanged blocks exactly —
  the structure bsdiff exploits;
* realistic delta modes: an *OS version change* touches a large
  fraction of blocks and shifts "addresses" by a small constant
  (recompilation effects bsdiff turns into tiny byte-wise diffs), an
  *application functionality change* rewrites a small contiguous
  region and appends a little new code (Fig. 8b's 1000-byte change);
* partial compressibility (literal pools and padding), so LZSS has
  realistic material to work with.
"""

from __future__ import annotations

from ..crypto import hmac_sha256
from ..crypto.engine import available_engines

__all__ = ["FirmwareGenerator"]

_BLOCK = 256

# Engine parity is contractual (byte-identical output), so the
# generator always derives through the hashlib-backed fast engine:
# synthesizing a 10k-swarm's firmware through the pure-Python
# reference SHA-256 costs whole seconds of setup for identical bytes.
_ENGINE = available_engines()["fast"]


class FirmwareGenerator:
    """Deterministic firmware images with controllable inter-version deltas."""

    def __init__(self, seed: bytes = b"upkit-workload") -> None:
        if not seed:
            raise ValueError("seed must be non-empty")
        self.seed = bytes(seed)

    # -- base images -----------------------------------------------------------

    def firmware(self, size: int, image_id: int = 0) -> bytes:
        """A fresh firmware image of exactly ``size`` bytes."""
        if size <= 0:
            raise ValueError("size must be positive")
        blocks = []
        produced = 0
        index = 0
        while produced < size:
            blocks.append(self._block(image_id, index))
            produced += _BLOCK
            index += 1
        return b"".join(blocks)[:size]

    def _block(self, image_id: int, index: int) -> bytes:
        """256 bytes of 'code': pseudo-random words + a literal pool."""
        material = hmac_sha256(
            self.seed,
            b"block" + image_id.to_bytes(4, "big") + index.to_bytes(4, "big"),
            engine=_ENGINE,
        )
        body = bytearray()
        while len(body) < _BLOCK - 32:
            material = hmac_sha256(self.seed, material, engine=_ENGINE)
            body.extend(material)
        # A compressible literal pool closes every block (strings,
        # zero-initialised data), mirroring real firmware sections.
        pool = (b"\x00" * 16) + (b"LOG:%s\x00" * 2) + b"\x00\x00"
        body = body[:_BLOCK - len(pool)] + pool
        return bytes(body[:_BLOCK])

    # -- evolution modes ---------------------------------------------------------

    def evolve(self, firmware: bytes, change_fraction: float,
               revision: int = 1, appended: int = 0,
               address_shift: bool = True) -> bytes:
        """A new version changing ``change_fraction`` of blocks.

        Changed blocks are either fully rewritten (new code) or, when
        ``address_shift`` is set, get a constant added to a quarter of
        their bytes — the signature of relinked call targets, which
        bsdiff encodes as near-zero diff bytes.
        """
        if not (0.0 <= change_fraction <= 1.0):
            raise ValueError("change_fraction must be in [0, 1]")
        data = bytearray(firmware)
        block_count = max(1, len(data) // _BLOCK)
        to_change = int(block_count * change_fraction)
        for rank in range(to_change):
            choice = hmac_sha256(
                self.seed,
                b"evolve" + revision.to_bytes(4, "big")
                + rank.to_bytes(4, "big"),
                engine=_ENGINE,
            )
            block = int.from_bytes(choice[:4], "big") % block_count
            start = block * _BLOCK
            end = min(start + _BLOCK, len(data))
            if address_shift and rank % 2 == 0:
                shift = 1 + choice[4] % 4
                for pos in range(start, end, 4):
                    data[pos] = (data[pos] + shift) & 0xFF
            else:
                replacement = self._block(0x7FFF0000 | revision, block)
                data[start:end] = replacement[:end - start]
        if appended:
            data.extend(self.firmware(appended,
                                      image_id=0x7FFE0000 | revision))
        return bytes(data)

    def os_version_change(self, firmware: bytes,
                          revision: int = 1) -> bytes:
        """Model a Zephyr v1.2→v1.3-style change.

        Roughly half the touched blocks are recompiled-new code, half
        only shift addresses; the resulting bsdiff+lzss delta lands
        near 30% of the image size, matching the reduction Fig. 8b
        reports for an OS version change.
        """
        return self.evolve(firmware, change_fraction=0.55,
                           revision=revision, appended=len(firmware) // 50,
                           address_shift=True)

    def app_functionality_change(self, firmware: bytes,
                                 changed_bytes: int = 1000,
                                 revision: int = 1) -> bytes:
        """Model the paper's '1000 bytes of difference' application change."""
        if changed_bytes <= 0:
            raise ValueError("changed_bytes must be positive")
        data = bytearray(firmware)
        anchor = int.from_bytes(
            hmac_sha256(self.seed, b"app" + revision.to_bytes(4, "big"),
                        engine=_ENGINE)[:4],
            "big",
        ) % max(1, len(data) - changed_bytes)
        patch = self.firmware(changed_bytes, image_id=0x7FFD0000 | revision)
        data[anchor:anchor + changed_bytes] = patch
        return bytes(data)
