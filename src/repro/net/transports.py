"""Push and pull update transports (the propagation phase).

UpKit is agnostic to how images are distributed (Sect. IV-B): the same
agent FSM sits behind a **push** front-end (a smartphone forwards the
image over BLE GATT, Fig. 2) or a **pull** front-end (the device
fetches it over CoAP through a border router).  Both transports here
drive a :class:`repro.sim.SimulatedDevice`, metering radio time onto
its clock, and return a structured outcome with the phase breakdown of
Fig. 8a.

An optional *interceptor* models an on-path adversary or a compromised
proxy: it may rewrite the envelope/payload in transit.  UpKit's claim
is that such a proxy can only cause a (detected) failure, never a
successful installation of tampered or stale software.

**Resumable transfers.**  Real deployments lose links mid-transfer
(ASSURED's "reliability under partial failure").  When the link raises
:class:`~repro.net.link.LinkDownError` and a
:class:`TransportRetryPolicy` is set, the transport backs off
(exponential + deterministic jitter, metered as virtual ``backoff``
time) and **re-requests from the last verified offset** — the agent FSM
is *not* reset, so every byte it already verified stays verified.  Only
when the retry budget is exhausted (or no policy is set) does the
transport abandon: the FSM is cleaned and the attempt reported failed.
Server unavailability windows (:class:`~repro.core.ServerUnavailable`)
retry the same way at attempt granularity.  Every interruption, resume
and abandonment is emitted into the agent's event log and counted in
``AgentStats`` — interrupted-transfer behaviour is observable.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core import (
    EventKind,
    FeedStatus,
    ServerUnavailable,
    TransferAbandoned,
    UpdateError,
    UpdateImage,
    UpdateServer,
)
from ..obs import NULL_TRACER, UPDATE_LATENCY_BUCKETS
from ..sim.device import SimulatedDevice
from .link import BLE_GATT, COAP_6LOWPAN, Link, LinkDownError, LinkProfile

__all__ = ["UpdateOutcome", "Interceptor", "TransportRetryPolicy",
           "PushTransport", "PullTransport"]

#: (envelope_bytes, payload_bytes) -> possibly rewritten pair.
Interceptor = Callable[[bytes, bytes], Tuple[bytes, bytes]]

_REQUEST_PACKETS = 2  # request/response exchange for control messages


@dataclass(frozen=True)
class TransportRetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` bounds the *total* interruptions (link-down events
    plus server-unavailable responses) one :meth:`run_update` call will
    tolerate: the Nth interruption with ``N == max_attempts`` abandons
    the update.  Backoff delays are virtual (metered onto the device
    clock under the ``backoff`` label) and jittered from a
    ``random.Random(seed)`` owned by the transport, so identical runs
    produce identical timelines.
    """

    max_attempts: int = 4
    backoff_initial: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_initial < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, failure_index: int, rng: random.Random) -> float:
        """Backoff before retry number ``failure_index`` (1-based)."""
        base = min(self.backoff_max,
                   self.backoff_initial
                   * self.backoff_factor ** (failure_index - 1))
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


@dataclass
class UpdateOutcome:
    """What one update attempt produced."""

    success: bool
    error: Optional[UpdateError]
    phases: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    energy_mj: Dict[str, float] = field(default_factory=dict)
    bytes_over_air: int = 0
    booted_version: int = 0
    rebooted: bool = False
    #: Link-down / server-outage events survived (resumed) on the way.
    interruptions: int = 0

    @property
    def total_energy_mj(self) -> float:
        return sum(self.energy_mj.values())


class _TransportBase:
    """Common drive logic for both approaches."""

    direction_payload = "rx"  # the device receives the image

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 link: Link, interceptor: Optional[Interceptor] = None,
                 reboot_on_success: bool = True,
                 retry: Optional[TransportRetryPolicy] = None,
                 host_rtt_seconds: float = 0.0) -> None:
        if host_rtt_seconds < 0:
            raise ValueError("host_rtt_seconds must be non-negative")
        self.device = device
        self.server = server
        self.link = link
        self.interceptor = interceptor
        self.reboot_on_success = reboot_on_success
        self.retry = retry
        #: Host wall-clock latency of one live-network request
        #: round-trip (token exchange, announcement poll).  The default
        #: 0.0 keeps the transport purely simulated; the bench
        #: harness's I/O profile sets it to model talking to a real
        #: update server over a real network.  The wait is a
        #: ``time.sleep`` — it never touches the device's virtual
        #: clock, so outcomes and campaign reports stay byte-identical
        #: with or without it.
        self.host_rtt_seconds = host_rtt_seconds
        self.bytes_over_air = 0
        self._failures = 0
        self._rng = random.Random(retry.seed if retry else 0)
        # Observability: trace into the device's tracer (a disabled
        # null tracer when the device predates the obs wiring) and
        # count into its metrics registry.
        self.tracer = getattr(device, "tracer", None) or NULL_TRACER
        self.metrics = getattr(device, "metrics", None)

    # -- interruption handling ---------------------------------------------------

    def _on_interruption(self, reason: str, exc: Exception) -> None:
        """Count one interruption; back off, or abandon when out of budget.

        Raises :class:`TransferAbandoned` when the retry budget is
        exhausted (or no policy is set) — otherwise returns after the
        backoff delay was metered, and the caller retries from wherever
        it stopped.
        """
        agent = self.device.agent
        self._failures += 1
        agent.stats.transfers_interrupted += 1
        if self.metrics is not None:
            self.metrics.counter("transport.interruptions").inc()
        agent.events.emit("transport", EventKind.TRANSFER_INTERRUPTED,
                          reason=reason, failures=self._failures,
                          at_byte=self.link.total_bytes)
        if self.retry is None or self._failures >= self.retry.max_attempts:
            agent.stats.updates_abandoned += 1
            if self.metrics is not None:
                self.metrics.counter("transport.abandons").inc()
            agent.events.emit("transport", EventKind.UPDATE_ABANDONED,
                              reason=reason, failures=self._failures)
            raise TransferAbandoned(
                "update abandoned after %d interruption(s): %s"
                % (self._failures, exc)) from exc
        delay = self.retry.delay(self._failures, self._rng)
        with self.tracer.span("backoff", category="transport",
                              reason=reason,
                              delay_seconds=round(delay, 6)):
            self.device.clock.advance(delay, "backoff")
        agent.stats.transfers_resumed += 1
        if self.metrics is not None:
            self.metrics.counter("transport.resumes").inc()
        agent.events.emit("transport", EventKind.TRANSFER_RESUMED,
                          reason=reason, backoff_seconds=delay,
                          resume_offset=self.link.total_bytes)

    def _transfer(self, nbytes: int):
        """One link transfer, transparently resumed across outages."""
        while True:
            try:
                return self.link.transfer(nbytes)
            except LinkDownError as exc:
                self._on_interruption("link_down", exc)

    # -- helpers -----------------------------------------------------------------

    def _control_exchange(self, payload_bytes: int) -> None:
        """A small request/response on the device link (token, announce)."""
        if self.host_rtt_seconds > 0.0:
            # Host-paced network wait (I/O profile): the GIL is
            # released while sleeping, which is exactly the overlap a
            # pooled wave executor exists to exploit.
            time.sleep(self.host_rtt_seconds)
        report = self._transfer(payload_bytes)
        extra = (_REQUEST_PACKETS - 1) * self.link.profile.packet_interval
        self.device.account_radio(report.seconds / 2 + extra, "tx")
        self.device.account_radio(report.seconds / 2, "rx")
        self.bytes_over_air += payload_bytes

    def _stream_to_device(self, data: bytes,
                          label: str = "payload") -> FeedStatus:
        """Send ``data`` chunk-by-chunk; agent errors propagate.

        A link outage mid-stream is resumed from the last verified
        offset: the failed chunk is simply re-requested after backoff —
        the agent FSM keeps its state, nothing already fed is re-sent.
        """
        status = FeedStatus.NEED_MORE
        mtu = self.link.profile.mtu
        offset = 0
        with self.tracer.span("transfer.%s" % label,
                              category="propagation", nbytes=len(data)):
            while offset < len(data):
                chunk = data[offset:offset + mtu]
                with self.tracer.span("block", category="transfer",
                                      offset=offset, nbytes=len(chunk)):
                    report = self._transfer(len(chunk))
                    self.device.account_radio(report.seconds,
                                              self.direction_payload)
                    self.bytes_over_air += len(chunk)
                    status = self.device.feed(chunk)
                offset += len(chunk)
        return status

    def _finish(self, start_clock: float, error: Optional[UpdateError],
                completed: bool) -> UpdateOutcome:
        device = self.device
        success = completed and error is None
        rebooted = False
        booted_version = device.installed_version()
        if success and self.reboot_on_success:
            result = device.reboot()
            booted_version = result.version
            rebooted = True
        phases = device.phase_breakdown()
        return UpdateOutcome(
            success=success,
            error=error,
            phases=phases,
            total_seconds=device.clock.now - start_clock,
            energy_mj=device.meter.breakdown_mj(),
            bytes_over_air=self.bytes_over_air,
            booted_version=booted_version,
            rebooted=rebooted,
        )

    def _apply_interceptor(self, image: UpdateImage) -> Tuple[bytes, bytes]:
        envelope = image.envelope.pack()
        payload = image.payload
        if self.interceptor is not None:
            envelope, payload = self.interceptor(envelope, payload)
        return envelope, payload

    def run_update(self) -> UpdateOutcome:
        """Execute the full propagation (+ verification + loading) flow."""
        start = self.device.clock.now
        self.bytes_over_air = 0
        self._failures = 0
        error: Optional[UpdateError] = None
        completed = False
        with self.tracer.span("update", category="lifecycle",
                              transport=type(self).__name__,
                              link=self.link.profile.name):
            while True:
                try:
                    completed = self._propagate()
                except ServerUnavailable as exc:
                    # A server outage invalidates the whole attempt (the
                    # token was consumed): clean the FSM, back off, and
                    # retry with a fresh token — or abandon out of
                    # budget.
                    self.device.agent.cancel()
                    try:
                        self._on_interruption("server_unavailable", exc)
                    except TransferAbandoned as abandoned:
                        error = abandoned
                        break
                    continue
                except UpdateError as exc:
                    error = exc
                    # The failure may have struck between token issuance
                    # and the manifest (e.g. a dropping gateway): reset
                    # the FSM so the next attempt can request a fresh
                    # token.
                    self.device.agent.cancel()
                break
            outcome = self._finish(start, error, completed)
        outcome.interruptions = self._failures
        if self.metrics is not None:
            self.metrics.histogram("update.latency_seconds",
                                   UPDATE_LATENCY_BUCKETS).observe(
                outcome.total_seconds)
            self.metrics.counter("net.bytes_over_air").inc(
                self.bytes_over_air)
            self.metrics.counter(
                "transport.updates_succeeded" if outcome.success
                else "transport.updates_failed").inc()
        return outcome

    def _propagate(self) -> bool:
        """Run the transfer; True only when the agent accepted everything."""
        raise NotImplementedError


class PushTransport(_TransportBase):
    """Smartphone-forwarded update over BLE GATT (Fig. 2's flow).

    The phone is a *passive* component: it fetches the image from the
    update server over the Internet (modeled as free — the phone is not
    the constrained party) and forwards bytes over BLE.
    """

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 link: Optional[Link] = None,
                 interceptor: Optional[Interceptor] = None,
                 reboot_on_success: bool = True,
                 link_profile: LinkProfile = BLE_GATT,
                 retry: Optional[TransportRetryPolicy] = None,
                 host_rtt_seconds: float = 0.0) -> None:
        super().__init__(device, server,
                         link or Link(link_profile),
                         interceptor, reboot_on_success, retry,
                         host_rtt_seconds)

    def _propagate(self) -> bool:
        # Steps 4-5: the phone requests the device token over BLE.
        with self.tracer.span("token_exchange", category="propagation"):
            token = self.device.request_token()
            self._control_exchange(len(token.pack()))

        # Step 6: the phone fetches the signed image from the server.
        with self.tracer.span("server.prepare", category="server",
                              nonce=token.nonce):
            image = self.server.prepare_update(token)
        envelope, payload = self._apply_interceptor(image)

        # Steps 8-10: forward the manifest first; early verification.
        status = self._stream_to_device(envelope, label="envelope")
        if status is not FeedStatus.MANIFEST_VERIFIED:
            # Short write (e.g. truncating attacker): the agent is still
            # waiting; cancel so the FSM cleans up.
            self.device.agent.cancel()
            return False

        # Steps 11-14: firmware transfer through the pipeline.
        status = self._stream_to_device(payload, label="payload")
        if status is not FeedStatus.FIRMWARE_COMPLETE:
            self.device.agent.cancel()
            return False
        return True


class PullTransport(_TransportBase):
    """Device-initiated update over CoAP/6LoWPAN through a border router.

    The device polls the server for announcements, generates its token
    locally and requests the image directly — no proxy exists, but the
    interceptor hook still allows modeling a compromised border router.
    """

    def __init__(self, device: SimulatedDevice, server: UpdateServer,
                 link: Optional[Link] = None,
                 interceptor: Optional[Interceptor] = None,
                 reboot_on_success: bool = True,
                 link_profile: LinkProfile = COAP_6LOWPAN,
                 retry: Optional[TransportRetryPolicy] = None,
                 host_rtt_seconds: float = 0.0) -> None:
        super().__init__(device, server,
                         link or Link(link_profile),
                         interceptor, reboot_on_success, retry,
                         host_rtt_seconds)

    def poll_announcement(self) -> int:
        """CoAP GET of the server's announcement resource."""
        announcement = self.server.announce()
        self._control_exchange(16)
        return announcement["latest_version"]

    def _propagate(self) -> bool:
        with self.tracer.span("announce", category="propagation"):
            latest = self.poll_announcement()
        if latest <= self.device.installed_version():
            return False

        with self.tracer.span("token_exchange", category="propagation"):
            token = self.device.request_token()
            # The token rides in the CoAP request to the server.
            self._control_exchange(len(token.pack()))

        with self.tracer.span("server.prepare", category="server",
                              nonce=token.nonce):
            image = self.server.prepare_update(token)
        envelope, payload = self._apply_interceptor(image)

        status = self._stream_to_device(envelope, label="envelope")
        if status is not FeedStatus.MANIFEST_VERIFIED:
            self.device.agent.cancel()
            return False
        status = self._stream_to_device(payload, label="payload")
        if status is not FeedStatus.FIRMWARE_COMPLETE:
            self.device.agent.cancel()
            return False
        return True
